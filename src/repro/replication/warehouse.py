"""Read-only warehouse extract.

Paper section 3.1: "For read-only warehousing requirements, periodic
extract from an OLTP system may suffice."  The
:class:`WarehouseExtract` copies the rolled-up state of an OLTP store
into a frozen read model on a period; queries run against the last
extract and report how stale it is.  This is the weakest — and cheapest
— consistency level in the metadata-driven policy router
(:mod:`repro.core.consistency`).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.lsdb.rollup import EntityState
from repro.lsdb.store import LSDBStore
from repro.sim.scheduler import Simulator


class WarehouseExtract:
    """Periodic full extract of an OLTP store's current state.

    Args:
        sim: The simulator.
        source: The OLTP store to extract from.
        interval: Extraction period (staleness bound: a query is at most
            ``interval`` behind the OLTP system).
        max_batch: Flow control for the incremental feed: at most this
            many OLTP events are folded per extract round (one frame of
            the feed).  A backlog larger than the frame waits for the
            next round and shows up in :attr:`lag_events` — bounded work
            per round instead of unbounded catch-up stalls.  ``None``
            folds the whole backlog at once (the legacy behaviour).
    """

    def __init__(
        self,
        sim: Simulator,
        source: LSDBStore,
        interval: float = 100.0,
        incremental: bool = True,
        max_batch: Optional[int] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if max_batch is not None and max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.sim = sim
        self.source = source
        self.interval = interval
        self.incremental = incremental
        self.max_batch = max_batch
        self.extracted_at: float = -1.0
        self.extracted_lsn: int = 0
        self.extracts_taken = 0
        self.events_applied_incrementally = 0
        self.feed_frames = 0
        self.read_cache = None
        self._snapshot: dict[tuple[str, str], EntityState] = {}
        self._g_lag = (
            sim.metrics.gauge("warehouse.lag_events")
            if sim.metrics is not None
            else None
        )
        self._schedule_next()

    def _schedule_next(self) -> None:
        self.sim.schedule(self.interval, self._extract, label="warehouse-extract")

    def _extract(self) -> None:
        if self.incremental and self.extracts_taken > 0:
            # Incremental extract: fold only the OLTP events appended
            # since the last extract over the previous snapshot — the
            # cost is proportional to the change, not the database.
            # Correct because rollup(prefix) ++ fold(suffix) ==
            # rollup(prefix + suffix) (the snapshot identity; see
            # tests/test_rollup_properties.py).
            suffix = self.source.events_since(self.extracted_lsn)
            if self.max_batch is not None and len(suffix) > self.max_batch:
                # One frame of the feed per round; the remainder stays
                # visible as lag until the next round drains it.
                suffix = suffix[: self.max_batch]
            self._snapshot = self.source.rollup.fold(suffix, initial=self._snapshot)
            self.events_applied_incrementally += len(suffix)
            if suffix:
                self.feed_frames += 1
            self.extracted_lsn = (
                suffix[-1].lsn if suffix else self.source.log.head_lsn
            )
        else:
            self._snapshot = self.source.current_state()
            self.extracted_lsn = self.source.log.head_lsn
        self.extracted_at = self.sim.now
        self.extracts_taken += 1
        if self._g_lag is not None:
            self._g_lag.set(self.lag_events)
        self._schedule_next()

    # ------------------------------------------------------------------ #
    # Read-only query surface
    # ------------------------------------------------------------------ #

    def attach_read_cache(self, cache: Any) -> None:
        """Route point reads through a watermark-validated cache (see
        :class:`repro.lsdb.readcache.ReadCache`).  The watermark is
        :attr:`extracted_lsn` — one number for the whole snapshot — so
        every cached entry is implicitly refreshed when the next
        extract lands (the watermark moves, entries revalidate)."""
        self.read_cache = cache

    def get(self, entity_type: str, entity_key: str) -> Optional[EntityState]:
        """Entity state as of the last extract (``None`` before the
        first extract or for unknown entities)."""
        return self._snapshot.get((entity_type, entity_key))

    def read(
        self,
        entity_type: str,
        entity_key: str,
        *,
        request=None,
    ):
        """The unified read protocol (see :mod:`repro.core.readpath`).

        A warehouse has exactly one consistency level — ``EXTRACT`` —
        so every answer comes from the last extract regardless of what
        was requested.  With a typed ``request`` the
        :class:`~repro.core.readpath.ReadResult` stamps ``EXTRACT`` as
        the delivered level and the extract's measured staleness: zero
        when the feed has drained (:attr:`lag_events` is zero, the
        snapshot *is* current), otherwise the time since the extract
        was taken.
        """
        if self.read_cache is not None:
            state, _ = self.read_cache.lookup(entity_type, entity_key)
        else:
            state = self.get(entity_type, entity_key)
        if request is None:
            return state
        from repro.core.consistency import ConsistencyLevel
        from repro.core.readpath import deliver

        staleness = 0.0 if self.lag_events == 0 else self.staleness
        return deliver(
            state,
            request,
            ConsistencyLevel.EXTRACT,
            staleness=staleness,
            served_by="warehouse" if self.read_cache is None else "warehouse+cache",
            metrics=self.sim.metrics,
        )

    def scan(self, entity_type: str) -> list[EntityState]:
        """All live entities of a type as of the last extract."""
        return [
            state
            for (etype, _), state in self._snapshot.items()
            if etype == entity_type and state.live
        ]

    def aggregate(self, entity_type: str, field_name: str) -> float:
        """Sum of one numeric field over live entities (the OLAP-style
        rollup a warehouse exists for)."""
        return sum(
            state.get(field_name, 0) or 0 for state in self.scan(entity_type)
        )

    @property
    def staleness(self) -> float:
        """Virtual time since the last extract (``inf`` before the first)."""
        if self.extracted_at < 0:
            return float("inf")
        return self.sim.now - self.extracted_at

    @property
    def lag_events(self) -> int:
        """OLTP events not reflected in the current extract."""
        return self.source.log.head_lsn - self.extracted_lsn
