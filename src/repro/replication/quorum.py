"""Quorum replication — strong consistency, at availability's expense.

The "replication with strong consistency" scheme from the paper's
section 2 preamble.  A write succeeds only when ``write_quorum``
replicas acknowledge; a read consults ``read_quorum`` replicas and keeps
the freshest value.  With ``W + R > N`` reads observe the latest
committed write — but any operation that cannot reach its quorum
*fails* rather than proceeding on local data, which is exactly the
availability sacrifice CAP forces and experiment E1 quantifies against
the active/active group.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.core.policy import Deadline, RetryPolicy, TimeoutPolicy
from repro.errors import QuorumUnavailable, RetryExhausted
from repro.replication.replica import ReplicaNode
from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator


@dataclass
class QuorumOutcome:
    """Result of one quorum operation."""

    request_id: str
    kind: str  # "write" | "read"
    ok: bool
    submitted_at: float
    finished_at: float
    responses: int = 0
    value: Optional[dict[str, Any]] = None
    attempts: int = 1
    error: Optional[Exception] = None  # why a failed op gave up

    @property
    def latency(self) -> float:
        """Time from submission to quorum (or timeout)."""
        return self.finished_at - self.submitted_at


@dataclass
class _PendingRequest:
    outcome: QuorumOutcome
    needed: int
    on_done: Callable[[QuorumOutcome], None]
    message: dict[str, Any] = field(default_factory=dict)
    deadline: Deadline = field(default_factory=Deadline)
    best_timestamp: float = -1.0
    timeout_handle: Any = None
    done: bool = False
    entity_type: str = ""
    entity_key: str = ""
    stale_repliers: list[str] = field(default_factory=list)
    replier_timestamps: dict[str, float] = field(default_factory=dict)


class _QuorumReplica(ReplicaNode):
    """Replica answering versioned read/write requests."""

    def handle_extra_message(self, source: str, message: Mapping[str, Any]) -> None:
        kind = message.get("type")
        if kind == "q-write":
            self.store.set_fields(
                message["entity_type"],
                message["entity_key"],
                dict(message["fields"]),
                tx_id=message.get("request_id", ""),
            )
            self.send(
                source, {"type": "q-write-ack", "request_id": message["request_id"]}
            )
        elif kind == "q-read":
            state = self.store.get(message["entity_type"], message["entity_key"])
            self.send(
                source,
                {
                    "type": "q-read-reply",
                    "request_id": message["request_id"],
                    "fields": dict(state.fields) if state else None,
                    "timestamp": state.last_timestamp if state else -1.0,
                },
            )
        elif kind == "q-repair":
            # Read repair: accept only if we are genuinely behind.  The
            # repair event carries the winning value's *original*
            # timestamp — re-stamping it with local time would make the
            # repaired replica look newer than the replicas that wrote
            # the value, and every subsequent read would "repair" them
            # in turn (ping-pong).
            state = self.store.get(message["entity_type"], message["entity_key"])
            local_timestamp = state.last_timestamp if state else -1.0
            if local_timestamp < message.get("timestamp", -1.0):
                from repro.lsdb.events import EventKind, LogEvent

                self.store.log.append(
                    LogEvent(
                        lsn=0,
                        timestamp=float(message["timestamp"]),
                        entity_type=message["entity_type"],
                        entity_key=message["entity_key"],
                        kind=EventKind.SET_FIELDS,
                        payload=dict(message["fields"]),
                        origin="read-repair",
                        origin_seq=0,
                        tx_id=message.get("request_id", ""),
                        tags=frozenset({"read-repair"}),
                    )
                )


class QuorumCoordinator(Node):
    """Client-facing coordinator for quorum reads and writes."""

    def __init__(
        self,
        node_id: str,
        group: "QuorumGroup",
    ):
        super().__init__(node_id)
        self.group = group
        self._pending: dict[str, _PendingRequest] = {}

    def handle_message(self, source: str, message: Mapping[str, Any]) -> None:
        request_id = message.get("request_id", "")
        pending = self._pending.get(request_id)
        if pending is None or pending.done:
            return
        kind = message.get("type")
        if kind == "q-write-ack":
            pending.outcome.responses += 1
        elif kind == "q-read-reply":
            pending.outcome.responses += 1
            timestamp = message.get("timestamp", -1.0)
            pending.replier_timestamps[source] = timestamp
            if message.get("fields") is not None and timestamp > pending.best_timestamp:
                pending.best_timestamp = timestamp
                pending.outcome.value = dict(message["fields"])
        if pending.outcome.responses >= pending.needed:
            if pending.outcome.kind == "read":
                self._read_repair(pending)
            self._finish(pending, ok=True)

    def _read_repair(self, pending: _PendingRequest) -> None:
        """Write the freshest value back to repliers that returned stale
        (or missing) data — the classic read-repair of Dynamo-style
        systems, keeping quorum overlap effective over time."""
        if pending.outcome.value is None or not self.group.read_repair:
            return
        for replica_id, timestamp in pending.replier_timestamps.items():
            if timestamp < pending.best_timestamp:
                pending.stale_repliers.append(replica_id)
                self.send(
                    replica_id,
                    {
                        "type": "q-repair",
                        "request_id": pending.outcome.request_id,
                        "entity_type": pending.entity_type,
                        "entity_key": pending.entity_key,
                        "fields": dict(pending.outcome.value),
                        "timestamp": pending.best_timestamp,
                    },
                )
                self.group.read_repairs_sent += 1
                if self.group._m_repairs is not None:
                    self.group._m_repairs.inc()

    def _finish(self, pending: _PendingRequest, ok: bool) -> None:
        if pending.done:
            return
        pending.done = True
        if pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        pending.outcome.ok = ok
        pending.outcome.finished_at = self.group.sim.now
        self.group.outcomes.append(pending.outcome)
        counter = self.group._m_ops.get((pending.outcome.kind, ok))
        if counter is not None:
            counter.inc()
        del self._pending[pending.outcome.request_id]
        pending.on_done(pending.outcome)

    def start(
        self,
        kind: str,
        needed: int,
        payload: dict[str, Any],
        on_done: Callable[[QuorumOutcome], None],
    ) -> str:
        group = self.group
        request_id = f"q-{next(group.request_counter)}"
        outcome = QuorumOutcome(
            request_id=request_id,
            kind=kind,
            ok=False,
            submitted_at=group.sim.now,
            finished_at=group.sim.now,
        )
        message = dict(payload)
        message["request_id"] = request_id
        message["type"] = "q-write" if kind == "write" else "q-read"
        pending = _PendingRequest(
            outcome=outcome,
            needed=needed,
            on_done=on_done,
            message=message,
            deadline=group.timeout_policy.start(group.sim.now),
            entity_type=str(payload.get("entity_type", "")),
            entity_key=str(payload.get("entity_key", "")),
        )
        self._pending[request_id] = pending
        self._attempt(pending)
        return request_id

    def _attempt(self, pending: _PendingRequest) -> None:
        """Send (or re-send) the request to every replica.  Replies keep
        the same request id, so late responses from earlier attempts
        still count toward the quorum."""
        group = self.group
        wait = group.timeout_policy.attempt_timeout(pending.deadline, group.sim.now)
        if wait is not None:
            pending.timeout_handle = group.sim.schedule(
                wait,
                lambda: self._on_attempt_timeout(pending),
                label=f"quorum-timeout:{pending.outcome.request_id}",
            )
        for replica in group.replicas:
            self.send(replica.node_id, pending.message)

    def _on_attempt_timeout(self, pending: _PendingRequest) -> None:
        if pending.done:
            return
        group = self.group
        now = group.sim.now
        attempts = pending.outcome.attempts
        if pending.deadline.remaining(now) <= 0:
            pending.outcome.error = QuorumUnavailable(
                f"quorum {pending.outcome.kind} missed its overall deadline "
                f"after {attempts} attempt(s)",
                deadline=pending.deadline.at or 0.0,
                now=now,
            )
            self._finish(pending, ok=False)
        elif not group.retry_policy.allows_retry(attempts):
            if attempts == 1:
                # Never retried: this is a plain quorum timeout, the
                # pre-policy behaviour.
                pending.outcome.error = QuorumUnavailable(
                    f"quorum {pending.outcome.kind} timed out", now=now
                )
            else:
                pending.outcome.error = RetryExhausted(
                    f"quorum {pending.outcome.kind} gave up after "
                    f"{attempts} attempts",
                    attempts=attempts,
                )
            self._finish(pending, ok=False)
        else:
            delay = group.retry_policy.delay(attempts, group._rng)
            pending.outcome.attempts += 1
            group.retries += 1
            if group._m_retries is not None:
                group._m_retries.inc()
            group.sim.schedule(
                delay,
                lambda: None if pending.done else self._attempt(pending),
                label=f"quorum-retry:{pending.outcome.request_id}",
            )


class QuorumGroup:
    """N replicas with R/W quorum operations.

    Args:
        sim: The simulator.
        network: The network.
        replica_ids: Replica names (``N = len(replica_ids)``).
        write_quorum: Acks required for a write (``W``).
        read_quorum: Replies required for a read (``R``).
        timeout: A :class:`~repro.core.policy.TimeoutPolicy` — the
            per-attempt limit is the classic "no quorum" signal, the
            overall limit bounds the operation across retries.  (The
            bare-number alias was removed after its deprecation cycle.)
        retry: A :class:`~repro.core.policy.RetryPolicy` re-issuing the
            request to all replicas after a per-attempt timeout (late
            replies from earlier attempts still count).  Default: no
            retries, the pre-policy behaviour.
    """

    #: The historical single-knob timeout.
    DEFAULT_TIMEOUT = TimeoutPolicy(per_attempt=100.0)

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        replica_ids: list[str],
        write_quorum: Optional[int] = None,
        read_quorum: Optional[int] = None,
        timeout: TimeoutPolicy | float | None = None,
        coordinator_id: str = "quorum-coordinator",
        read_repair: bool = True,
        retry: Optional[RetryPolicy] = None,
    ):
        count = len(replica_ids)
        if count < 1:
            raise ValueError("quorum group needs at least one replica")
        self.sim = sim
        self.network = network
        self.write_quorum = write_quorum or count // 2 + 1
        self.read_quorum = read_quorum or count // 2 + 1
        if self.write_quorum > count or self.read_quorum > count:
            raise ValueError("quorum larger than replica count")
        if timeout is None:
            self.timeout_policy = self.DEFAULT_TIMEOUT
        elif isinstance(timeout, TimeoutPolicy):
            self.timeout_policy = timeout
        else:
            # The PR 3 bare-number alias completed its deprecation cycle.
            raise TypeError(
                "QuorumGroup(timeout=<number>) was deprecated and has been "
                "removed; pass timeout=TimeoutPolicy(per_attempt=...)"
            )
        self.retry_policy = retry if retry is not None else RetryPolicy.none()
        self.retries = 0
        self._rng = sim.fork_rng()
        self.replicas = [
            network.register(_QuorumReplica(replica_id, sim))
            for replica_id in replica_ids
        ]
        self.coordinator = network.register(QuorumCoordinator(coordinator_id, self))
        self.outcomes: list[QuorumOutcome] = []
        self.request_counter = itertools.count(1)
        self.read_repair = read_repair
        self.read_repairs_sent = 0
        if sim.metrics is not None:
            counter = sim.metrics.counter
            self._m_ops = {
                ("write", True): counter("quorum.ops", kind="write", result="ok"),
                ("write", False): counter("quorum.ops", kind="write", result="failed"),
                ("read", True): counter("quorum.ops", kind="read", result="ok"),
                ("read", False): counter("quorum.ops", kind="read", result="failed"),
            }
            self._m_repairs = counter("quorum.read_repairs")
            self._m_retries = counter("quorum.retries")
        else:
            self._m_ops = {}
            self._m_repairs = None
            self._m_retries = None

    @property
    def timeout(self) -> float:
        """The per-attempt timeout (legacy name for introspection)."""
        per_attempt = self.timeout_policy.per_attempt
        return per_attempt if per_attempt is not None else float("inf")

    def write(
        self,
        entity_type: str,
        entity_key: str,
        fields: dict[str, Any],
        on_done: Optional[Callable[[QuorumOutcome], None]] = None,
    ) -> str:
        """Quorum write; outcome delivered via callback and
        :attr:`outcomes`."""
        return self.coordinator.start(
            "write",
            self.write_quorum,
            {
                "entity_type": entity_type,
                "entity_key": entity_key,
                "fields": dict(fields),
            },
            on_done or (lambda _outcome: None),
        )

    def read(
        self,
        entity_type: str,
        entity_key: str,
        on_done: Optional[Callable[[QuorumOutcome], None]] = None,
        *,
        request=None,
    ):
        """Quorum read; the freshest replica value wins.

        The callback form (``on_done``) starts a quorum read and
        returns the request id, as ever.  With a typed ``request``
        (:class:`~repro.core.readpath.ReadRequest`) the behaviour
        depends on the requested level:

        * ``STRONG`` starts the quorum read and returns a
          :class:`~repro.core.readpath.ReadResult` immediately; the
          result is *pending* (``delivered_level`` is ``None``) and is
          completed in place — ``value`` (the winning fields dict),
          delivered level, or a ``quorum_unavailable`` rejection — once
          the simulator delivers the quorum.  ``on_done`` still fires.
        * anything weaker is the consistency downgrade: skip the quorum
          entirely and serve one replica's local state right now, with
          measured staleness.  This is the cheap rung the front door
          degrades to when the quorum is slow or unreachable.
        """
        if request is not None:
            from repro.core.consistency import ConsistencyLevel
            from repro.core.readpath import ReadResult, deliver, replica_level
            from repro.replication.replica import staleness_behind

            if request.level is not ConsistencyLevel.STRONG:
                serving = self.replicas[0]
                state = serving.store.get(entity_type, entity_key)
                staleness = 0.0
                for peer in self.replicas:
                    if peer is not serving:
                        staleness = max(
                            staleness, staleness_behind(peer, serving)
                        )
                return deliver(
                    state,
                    request,
                    replica_level(request.level),
                    staleness=staleness,
                    served_by=serving.node_id,
                    metrics=self.sim.metrics,
                )
            result = ReadResult(
                None,
                requested_level=request.level,
                delivered_level=None,
                staleness=None,
            )

            def _complete(outcome: QuorumOutcome) -> None:
                result.value = outcome.value
                if outcome.ok:
                    result.delivered_level = ConsistencyLevel.STRONG
                    result.staleness = 0.0
                else:
                    result.rejected = True
                    result.reject_reason = "quorum_unavailable"
                if on_done is not None:
                    on_done(outcome)

            self.coordinator.start(
                "read",
                self.read_quorum,
                {"entity_type": entity_type, "entity_key": entity_key},
                _complete,
            )
            return result
        return self.coordinator.start(
            "read",
            self.read_quorum,
            {"entity_type": entity_type, "entity_key": entity_key},
            on_done or (lambda _outcome: None),
        )

    @property
    def failure_rate(self) -> float:
        """Fraction of finished operations that missed their quorum."""
        if not self.outcomes:
            return 0.0
        failed = sum(1 for outcome in self.outcomes if not outcome.ok)
        return failed / len(self.outcomes)
