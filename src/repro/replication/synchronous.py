"""Active system with synchronous commits to a backup.

The strong-durability counterpart of
:mod:`repro.replication.asynchronous`: the primary does not acknowledge
a write until the backup confirms it has the events.  Nothing is lost on
failover — and the user's response time now includes a network round
trip, and writes become *unavailable* whenever the backup is unreachable
(the CAP tradeoff, measured in experiments E1 and E2; see also paper
section 3.2: "response time for users may degrade ... when a backup
system must receive transaction records before a transaction commits").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.core.policy import RetryPolicy, TimeoutPolicy
from repro.errors import DeadlineExceeded, RetryExhausted
from repro.lsdb.events import LogEvent
from repro.merge.deltas import Delta
from repro.replication.replica import ReplicaNode
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


@dataclass
class SyncWriteResult:
    """Outcome of one synchronous write."""

    tx_id: str
    ok: bool
    submitted_at: float
    acked_at: float
    attempts: int = 1
    error: Optional[Exception] = None  # why a failed write gave up

    @property
    def latency(self) -> float:
        """User-visible response time."""
        return self.acked_at - self.submitted_at


class _SyncPrimary(ReplicaNode):
    """Primary that tracks acknowledgements from the backup."""

    def __init__(self, node_id: str, sim: Simulator):
        super().__init__(node_id, sim)
        self.pending: dict[str, Callable[[], None]] = {}

    def handle_extra_message(self, source: str, message: Mapping[str, Any]) -> None:
        if message.get("type") == "replication-ack":
            callback = self.pending.pop(message.get("tx", ""), None)
            if callback is not None:
                callback()


class _SyncBackup(ReplicaNode):
    """Backup that acknowledges every replicated batch."""

    def handle_extra_message(self, source: str, message: Mapping[str, Any]) -> None:
        if message.get("type") == "replicate":
            for event in message.get("events", ()):
                self.store.apply_remote(event)
            self.send(source, {"type": "replication-ack", "tx": message.get("tx")})


class SyncPrimaryBackup:
    """Primary/backup replication with commit-time acknowledgement.

    Args:
        sim: The simulator.
        network: The network both nodes attach to.
        timeout: A :class:`~repro.core.policy.TimeoutPolicy` — each
            replication attempt may wait ``per_attempt`` for the
            backup's ack, and the whole write is bounded by ``overall``.
        retry: A :class:`~repro.core.policy.RetryPolicy` re-shipping the
            transaction's events after an ack timeout (the backup's
            apply is idempotent, so re-shipping is safe).  Default: no
            retries, the pre-policy behaviour.

    The PR 3 legacy ``ack_timeout=<seconds>`` constructor kwarg has
    completed its deprecation cycle and was removed; pass
    ``timeout=TimeoutPolicy(per_attempt=...)``.  The read-only
    :attr:`ack_timeout` property remains for introspection.
    """

    #: The historical single-knob ack timeout.
    DEFAULT_TIMEOUT = TimeoutPolicy(per_attempt=100.0)

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        primary_id: str = "sync-primary",
        backup_id: str = "sync-backup",
        timeout: Optional[TimeoutPolicy] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.sim = sim
        self.network = network
        self.timeout_policy = timeout if timeout is not None else self.DEFAULT_TIMEOUT
        self.retry_policy = retry if retry is not None else RetryPolicy.none()
        self.retries = 0
        self._rng = sim.fork_rng()
        self._m_retries = (
            sim.metrics.counter("sync.retries") if sim.metrics is not None else None
        )
        self._m_giveup = (
            sim.metrics.counter("sync.giveup") if sim.metrics is not None else None
        )
        self.primary = _SyncPrimary(primary_id, sim)
        self.backup = _SyncBackup(backup_id, sim)
        network.register(self.primary)
        network.register(self.backup)
        self.results: list[SyncWriteResult] = []
        self._tx_counter = itertools.count(1)

    @property
    def ack_timeout(self) -> float:
        """The per-attempt ack timeout (legacy name for introspection)."""
        per_attempt = self.timeout_policy.per_attempt
        return per_attempt if per_attempt is not None else float("inf")

    def write_insert(
        self,
        entity_type: str,
        entity_key: str,
        fields: dict[str, Any],
        on_done: Optional[Callable[[SyncWriteResult], None]] = None,
    ) -> str:
        """Insert with synchronous replication.

        Returns the transaction id immediately; the commit outcome
        arrives via ``on_done`` (and :attr:`results`) once the backup
        acknowledges or the timeout fires.
        """
        event = lambda tx_id: self.primary.store.insert(
            entity_type, entity_key, fields, tx_id=tx_id
        )
        return self._write(event, on_done)

    def write_delta(
        self,
        entity_type: str,
        entity_key: str,
        delta: Delta,
        on_done: Optional[Callable[[SyncWriteResult], None]] = None,
    ) -> str:
        """Apply a delta with synchronous replication."""
        event = lambda tx_id: self.primary.store.apply_delta(
            entity_type, entity_key, delta, tx_id=tx_id
        )
        return self._write(event, on_done)

    def read(
        self,
        entity_type: str,
        entity_key: str,
        *,
        request=None,
    ):
        """The unified read protocol (see :mod:`repro.core.readpath`).

        Both nodes hold every acknowledged write, so the level only
        picks which copy answers: ``STRONG`` (and the bare legacy call)
        reads the primary, weaker levels read the backup.  With a typed
        ``request`` the answer is a
        :class:`~repro.core.readpath.ReadResult`; the backup can still
        be mid-flight on an unacknowledged write, so its staleness is
        measured rather than assumed zero.
        """
        from repro.core.consistency import ConsistencyLevel

        if request is None:
            return self.primary.store.get(entity_type, entity_key)
        from repro.core.readpath import deliver, replica_level
        from repro.replication.replica import staleness_behind

        if request.level is ConsistencyLevel.STRONG:
            return deliver(
                self.primary.store.get(entity_type, entity_key),
                request,
                ConsistencyLevel.STRONG,
                staleness=0.0,
                served_by=self.primary.node_id,
                metrics=self.sim.metrics,
            )
        return deliver(
            self.backup.store.get(entity_type, entity_key),
            request,
            replica_level(request.level),
            staleness=staleness_behind(self.primary, self.backup),
            served_by=self.backup.node_id,
            metrics=self.sim.metrics,
        )

    def _write(
        self,
        append_local: Callable[[str], LogEvent],
        on_done: Optional[Callable[[SyncWriteResult], None]],
    ) -> str:
        tx_id = f"sync-{next(self._tx_counter)}"
        submitted_at = self.sim.now
        stored = append_local(tx_id)
        state = {"done": False, "attempts": 1}
        deadline = self.timeout_policy.start(submitted_at)

        def finish(ok: bool, error: Optional[Exception] = None) -> None:
            if state["done"]:
                return
            state["done"] = True
            result = SyncWriteResult(
                tx_id=tx_id, ok=ok, submitted_at=submitted_at,
                acked_at=self.sim.now, attempts=state["attempts"], error=error,
            )
            self.results.append(result)
            if not ok and self._m_giveup is not None:
                self._m_giveup.inc()
            if on_done is not None:
                on_done(result)

        def attempt() -> None:
            if state["done"]:
                return
            wait = self.timeout_policy.attempt_timeout(deadline, self.sim.now)
            if wait is not None:
                self.sim.schedule(
                    wait, on_timeout, label=f"sync-timeout:{tx_id}"
                )
            # A transaction's events are LSN-contiguous by construction,
            # so each replicate shipment is one wire frame: loss and
            # duplication hit the whole transaction, never half of it.
            self.primary.send_batch(
                self.backup.node_id,
                [{"type": "replicate", "tx": tx_id, "events": [stored]}],
                size=1,
            )

        def on_timeout() -> None:
            if state["done"]:
                return
            now = self.sim.now
            attempts = state["attempts"]
            if deadline.remaining(now) <= 0:
                finish(False, DeadlineExceeded(
                    f"sync write {tx_id} missed its overall deadline",
                    deadline=deadline.at or 0.0, now=now,
                ))
            elif not self.retry_policy.allows_retry(attempts):
                if attempts == 1:
                    finish(False, DeadlineExceeded(
                        f"sync write {tx_id} timed out waiting for the backup",
                        now=now,
                    ))
                else:
                    finish(False, RetryExhausted(
                        f"sync write {tx_id} gave up after {attempts} attempts",
                        attempts=attempts,
                    ))
            else:
                delay = self.retry_policy.delay(attempts, self._rng)
                state["attempts"] += 1
                self.retries += 1
                if self._m_retries is not None:
                    self._m_retries.inc()
                self.sim.schedule(delay, attempt, label=f"sync-retry:{tx_id}")

        self.primary.pending[tx_id] = lambda: finish(True)
        attempt()
        return tx_id

    @property
    def failed_writes(self) -> int:
        """Writes that timed out waiting for the backup."""
        return sum(1 for result in self.results if not result.ok)

    @property
    def mean_latency(self) -> float:
        """Mean response time of successful writes."""
        latencies = [result.latency for result in self.results if result.ok]
        return sum(latencies) / len(latencies) if latencies else 0.0
