"""Active system with synchronous commits to a backup.

The strong-durability counterpart of
:mod:`repro.replication.asynchronous`: the primary does not acknowledge
a write until the backup confirms it has the events.  Nothing is lost on
failover — and the user's response time now includes a network round
trip, and writes become *unavailable* whenever the backup is unreachable
(the CAP tradeoff, measured in experiments E1 and E2; see also paper
section 3.2: "response time for users may degrade ... when a backup
system must receive transaction records before a transaction commits").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.lsdb.events import LogEvent
from repro.merge.deltas import Delta
from repro.replication.replica import ReplicaNode
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


@dataclass
class SyncWriteResult:
    """Outcome of one synchronous write."""

    tx_id: str
    ok: bool
    submitted_at: float
    acked_at: float

    @property
    def latency(self) -> float:
        """User-visible response time."""
        return self.acked_at - self.submitted_at


class _SyncPrimary(ReplicaNode):
    """Primary that tracks acknowledgements from the backup."""

    def __init__(self, node_id: str, sim: Simulator):
        super().__init__(node_id, sim)
        self.pending: dict[str, Callable[[], None]] = {}

    def handle_extra_message(self, source: str, message: Mapping[str, Any]) -> None:
        if message.get("type") == "replication-ack":
            callback = self.pending.pop(message.get("tx", ""), None)
            if callback is not None:
                callback()


class _SyncBackup(ReplicaNode):
    """Backup that acknowledges every replicated batch."""

    def handle_extra_message(self, source: str, message: Mapping[str, Any]) -> None:
        if message.get("type") == "replicate":
            for event in message.get("events", ()):
                self.store.apply_remote(event)
            self.send(source, {"type": "replication-ack", "tx": message.get("tx")})


class SyncPrimaryBackup:
    """Primary/backup replication with commit-time acknowledgement.

    Args:
        sim: The simulator.
        network: The network both nodes attach to.
        ack_timeout: Virtual time after which an unacknowledged write is
            reported as failed (the unavailability window under
            partition or backup crash).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        ack_timeout: float = 100.0,
        primary_id: str = "sync-primary",
        backup_id: str = "sync-backup",
    ):
        self.sim = sim
        self.network = network
        self.ack_timeout = ack_timeout
        self.primary = _SyncPrimary(primary_id, sim)
        self.backup = _SyncBackup(backup_id, sim)
        network.register(self.primary)
        network.register(self.backup)
        self.results: list[SyncWriteResult] = []
        self._tx_counter = itertools.count(1)

    def write_insert(
        self,
        entity_type: str,
        entity_key: str,
        fields: dict[str, Any],
        on_done: Optional[Callable[[SyncWriteResult], None]] = None,
    ) -> str:
        """Insert with synchronous replication.

        Returns the transaction id immediately; the commit outcome
        arrives via ``on_done`` (and :attr:`results`) once the backup
        acknowledges or the timeout fires.
        """
        event = lambda tx_id: self.primary.store.insert(
            entity_type, entity_key, fields, tx_id=tx_id
        )
        return self._write(event, on_done)

    def write_delta(
        self,
        entity_type: str,
        entity_key: str,
        delta: Delta,
        on_done: Optional[Callable[[SyncWriteResult], None]] = None,
    ) -> str:
        """Apply a delta with synchronous replication."""
        event = lambda tx_id: self.primary.store.apply_delta(
            entity_type, entity_key, delta, tx_id=tx_id
        )
        return self._write(event, on_done)

    def read(self, entity_type: str, entity_key: str, *, consistency: Any = None):
        """The unified read protocol (see :mod:`repro.core.readpath`).

        Both nodes hold every acknowledged write, so the level only
        picks which copy answers: ``STRONG`` (and the default) reads the
        primary, weaker levels read the backup.
        """
        from repro.core.consistency import ConsistencyLevel

        if consistency is None or consistency is ConsistencyLevel.STRONG:
            return self.primary.store.get(entity_type, entity_key)
        return self.backup.store.get(entity_type, entity_key)

    def _write(
        self,
        append_local: Callable[[str], LogEvent],
        on_done: Optional[Callable[[SyncWriteResult], None]],
    ) -> str:
        tx_id = f"sync-{next(self._tx_counter)}"
        submitted_at = self.sim.now
        stored = append_local(tx_id)
        finished = {"done": False}

        def finish(ok: bool) -> None:
            if finished["done"]:
                return
            finished["done"] = True
            result = SyncWriteResult(
                tx_id=tx_id, ok=ok, submitted_at=submitted_at, acked_at=self.sim.now
            )
            self.results.append(result)
            if on_done is not None:
                on_done(result)

        self.primary.pending[tx_id] = lambda: finish(True)
        self.sim.schedule(
            self.ack_timeout,
            lambda: finish(False),
            label=f"sync-timeout:{tx_id}",
        )
        self.primary.send(
            self.backup.node_id,
            {"type": "replicate", "tx": tx_id, "events": [stored]},
        )
        return tx_id

    @property
    def failed_writes(self) -> int:
        """Writes that timed out waiting for the backup."""
        return sum(1 for result in self.results if not result.ok)

    @property
    def mean_latency(self) -> float:
        """Mean response time of successful writes."""
        latencies = [result.latency for result in self.results if result.ok]
        return sum(latencies) / len(latencies) if latencies else 0.0
