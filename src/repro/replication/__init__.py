"""Replication schemes across the consistency/availability spectrum.

The paper's section 2 preamble names the design space this package
implements: "active systems with asynchronous commits to backups, active
systems with synchronous commits to backups, active/active replication
with subjective/eventual consistency, and replication with strong
consistency" — plus the master/slave mixed-consistency approach, the
read-only warehouse extract from section 3.1, and the geo-distributed
partially replicated shard groups of :mod:`repro.replication.geo`.
"""

from repro.replication.active_active import ActiveActiveGroup
from repro.replication.anti_entropy import AntiEntropy
from repro.replication.asynchronous import AsyncPrimaryBackup, FailoverReport
from repro.replication.geo import GeoReplicaGroup, GeoShardReplica, WanGateway
from repro.replication.master_slave import MasterSlaveGroup
from repro.replication.quorum import QuorumGroup, QuorumOutcome
from repro.replication.replica import ReplicaNode, converged
from repro.replication.synchronous import SyncPrimaryBackup, SyncWriteResult
from repro.replication.warehouse import WarehouseExtract

__all__ = [
    "ActiveActiveGroup",
    "AntiEntropy",
    "AsyncPrimaryBackup",
    "FailoverReport",
    "GeoReplicaGroup",
    "GeoShardReplica",
    "MasterSlaveGroup",
    "WanGateway",
    "QuorumGroup",
    "QuorumOutcome",
    "ReplicaNode",
    "converged",
    "SyncPrimaryBackup",
    "SyncWriteResult",
    "WarehouseExtract",
]
