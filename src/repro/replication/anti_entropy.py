"""Anti-entropy: periodic gossip repair of replica divergence.

Eager propagation loses messages to partitions, crashes and lossy
links; anti-entropy is the repair loop that makes convergence
*eventual* rather than merely hopeful.  Each round, every replica sends
its version vector to ``fanout`` peers (chosen deterministically from
the simulator's random stream); a peer that has seen more replies with
exactly the missing events (the :class:`~repro.replication.replica.
ReplicaNode` ``vv`` protocol).

Experiment E12 sweeps ``interval`` and ``fanout`` and measures the time
from last write to convergence.
"""

from __future__ import annotations

from typing import Sequence

from repro.replication.replica import ReplicaNode
from repro.sim.scheduler import Simulator


class AntiEntropy:
    """A gossip scheduler over a set of replicas.

    Args:
        sim: The simulator.
        replicas: The replicas to keep in sync.
        interval: Virtual time between gossip rounds.
        fanout: Peers each replica probes per round.

    The schedule starts immediately on construction and runs for the
    lifetime of the simulation (call :meth:`stop` to halt it).
    """

    def __init__(
        self,
        sim: Simulator,
        replicas: Sequence[ReplicaNode],
        interval: float = 25.0,
        fanout: int = 1,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if fanout < 1:
            raise ValueError(f"fanout must be at least 1, got {fanout}")
        self.sim = sim
        self.replicas = list(replicas)
        self.interval = interval
        self.fanout = min(fanout, max(1, len(self.replicas) - 1))
        self.rounds = 0
        self._rng = sim.fork_rng()
        self._stopped = False
        self._m_rounds = (
            sim.metrics.counter("antientropy.rounds")
            if sim.metrics is not None
            else None
        )
        self._schedule_next()

    def _schedule_next(self) -> None:
        self.sim.schedule(self.interval, self._round, label="anti-entropy")

    def _round(self) -> None:
        if self._stopped:
            return
        self.rounds += 1
        if self._m_rounds is not None:
            self._m_rounds.inc()
        for replica in self.replicas:
            if replica.crashed:
                continue
            peers = [peer for peer in self.replicas if peer is not replica]
            if not peers:
                continue
            targets = self._rng.sample(peers, min(self.fanout, len(peers)))
            for target in targets:
                # Bidirectional exchange: I tell you what I have (you can
                # send me my gaps), and I probe you for yours.
                replica.probe(target.node_id)
                target.probe(replica.node_id)
        self._schedule_next()

    def stop(self) -> None:
        """Halt future gossip rounds."""
        self._stopped = True
