"""The replica node: an LSDB store behind a network endpoint.

Every replication scheme in this package composes the same building
block: a :class:`ReplicaNode` owning a local
:class:`~repro.lsdb.store.LSDBStore` whose events carry the replica's
identity.  The node speaks a two-message protocol:

* ``{"type": "events", "events": [...]}`` — apply remote events
  (idempotently, in per-origin order; duplicates from at-least-once
  shipping are rejected by the store).
* ``{"type": "vv", "vector": {...}, "reply_to": id}`` — anti-entropy
  probe: compare the sender's version vector with ours and ship back
  whatever the sender is missing.

Subjective consistency (paper section 1) falls out of the structure:
every read and write a client performs against one node sees only that
node's log.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from repro.lsdb.columnar import ColumnFrame, EventSlice
from repro.lsdb.events import LogEvent
from repro.lsdb.store import LSDBStore
from repro.merge.clock import VersionVector
from repro.replication.batching import BatchPolicy, FrameShipper
from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator


class ReplicaNode(Node):
    """A network-attached replica.

    Args:
        node_id: Network id, also the store's origin id.
        sim: Simulator providing the store's clock.
        snapshot_interval: Forwarded to the store.
        batching: Frame policy for outgoing event shipments; defaults
            to the degenerate one-event-per-frame policy.
    """

    def __init__(
        self,
        node_id: str,
        sim: Simulator,
        snapshot_interval: int = 0,
        batching: Optional[BatchPolicy] = None,
    ):
        super().__init__(node_id)
        self.sim = sim
        # The store inherits the simulator's observability handles, so a
        # traced simulator yields traced replicas with no extra wiring.
        self.store = LSDBStore(
            name=node_id,
            origin=node_id,
            clock=lambda: sim.now,
            snapshot_interval=snapshot_interval,
            tracer=sim.tracer,
            metrics=sim.metrics,
        )
        self.events_received = 0
        self.anti_entropy_rounds = 0
        self.batching = BatchPolicy()
        self.shipper: Optional[FrameShipper] = None
        self.configure_batching(batching)
        self._m_received = (
            sim.metrics.counter("replica.events_received", node=node_id)
            if sim.metrics is not None
            else None
        )

    def configure_batching(self, batching: Optional[BatchPolicy]) -> None:
        """Install a frame policy (schemes call this after construction).

        A coalescing policy (``flush_interval > 0``) also arms a
        :class:`FrameShipper` that eager propagation routes through.
        """
        self.batching = batching if batching is not None else BatchPolicy()
        self.shipper = (
            FrameShipper(self, self.batching) if self.batching.coalesces else None
        )

    # ------------------------------------------------------------------ #
    # Message protocol
    # ------------------------------------------------------------------ #

    def handle_message(self, source: str, message: Mapping[str, Any]) -> None:
        kind = message.get("type")
        if kind == "events":
            # ``ctx`` maps "origin:seq" to the per-event ship span opened
            # by the sender; arriving here is what closes that span, and
            # the apply span chains onto it (the causal hop).
            ctx = message.get("ctx")
            tracer = self.store.tracer
            frame = message.get("frame")
            if frame is not None:
                # Columnar frame: decode straight into the local arena —
                # one dictionary lookup per distinct string in the frame
                # tables, not one per event.
                applied = self.store.apply_remote_frame(frame)
                if applied:
                    self.events_received += applied
                    if self._m_received is not None:
                        self._m_received.inc(applied)
                return
            events = message.get("events", ())
            if ctx is None and tracer is None and len(events) > 1:
                # Untraced multi-event frame: the store's batch apply
                # validates whole contiguous runs at once instead of
                # paying the per-event apply prologue.
                applied = self.store.apply_remote_batch(events)
                if applied:
                    self.events_received += applied
                    if self._m_received is not None:
                        self._m_received.inc(applied)
                return
            for event in events:
                ship_id = None
                if ctx is not None:
                    ship_id = ctx.get(f"{event.origin}:{event.origin_seq}")
                if ship_id is not None and tracer is not None:
                    ship_span = tracer.get(ship_id)
                    if ship_span is not None:
                        tracer.end_span(ship_span, status="delivered")
                if self.store.apply_remote(event, parent_span=ship_id):
                    self.events_received += 1
                    if self._m_received is not None:
                        self._m_received.inc()
        elif kind == "vv":
            self._answer_probe(source, message)
        elif kind == "bootstrap":
            self._serve_bootstrap(source)
        elif kind == "checkpoint":
            self.store.install_checkpoint(message["checkpoint"])
            # Immediately probe the donor so the post-checkpoint delta
            # starts flowing — bootstrap is checkpoint + events_since,
            # not checkpoint alone.
            self.probe(source)
        else:
            self.handle_extra_message(source, message)

    def handle_extra_message(self, source: str, message: Mapping[str, Any]) -> None:
        """Hook for scheme-specific messages (overridden by subclasses)."""

    def _answer_probe(self, source: str, message: Mapping[str, Any]) -> None:
        remote_vector = VersionVector(message.get("vector", {}))
        # Per-origin repair feeds all come from our own arena, so the
        # gaps concatenate into one slice (no materialization).  The
        # combined slice chunks into exactly the frame boundaries the
        # old concatenated event list produced.
        rows: list[int] = []
        for origin, have in remote_vector.missing_from(self.store.version_vector).items():
            # ``have`` is (their_count, my_count): ship the gap.
            their_count, _my_count = have
            rows.extend(self.store.events_from_origin(origin, their_count).rows)
        self.anti_entropy_rounds += 1
        if rows:
            # ship_events (not raw send) so anti-entropy repairs carry
            # per-event ship spans like first-time shipping does.
            self.ship_events(source, EventSlice(self.store.log.arena, rows))

    # ------------------------------------------------------------------ #
    # Propagation helpers
    # ------------------------------------------------------------------ #

    def ship_events(
        self, destination: str, events: "list[LogEvent] | EventSlice"
    ) -> bool:
        """Ship a run of events to one peer as wire frames (best-effort).

        An untraced :class:`EventSlice` run ships multi-event chunks as
        zero-copy :class:`ColumnFrame` messages (one dictionary lookup
        per distinct string per frame); everything else — traced runs,
        plain lists, single-event chunks — keeps the per-event message
        shape.  The run is cut into LSN-contiguous frames by this node's
        :class:`~repro.replication.batching.BatchPolicy` — one network
        frame (one latency draw, one loss coin) per chunk, with the
        unbatched default degenerating to one event per frame.  Returns
        ``True`` only when every frame was accepted; callers treat a
        ``False`` as "re-ship the whole run later", which idempotent
        apply makes safe.

        With tracing on, each traced event gets a ``replicate.ship``
        span parented on its append span; the span ids ride along in
        the frame's ``ctx`` and are closed by the receiver.  A frame
        that never arrives leaves its ship spans open — the timeline's
        way of showing a lost replication hop.
        """
        if not events:
            return True
        tracer = self.store.tracer
        shipped_all = True
        if tracer is None and isinstance(events, EventSlice):
            # Columnar fast path: cut the slice into the same contiguous
            # runs ``chunk`` would produce, but ship multi-event runs as
            # :class:`ColumnFrame` codecs built straight from the arena
            # columns.  Single-event runs keep the legacy message shape
            # so the degenerate unbatched wire model is unchanged.
            for chunk in self.batching.chunk_rows(events):
                size = len(chunk)
                if size == 1:
                    message = {"type": "events", "events": [chunk[0]]}
                else:
                    message = {"type": "events", "frame": ColumnFrame.from_slice(chunk)}
                if not self.send_batch(destination, [message], size=size):
                    shipped_all = False
            return shipped_all
        for chunk in self.batching.chunk(events):
            message: dict[str, Any] = {"type": "events", "events": chunk}
            if tracer is not None:
                ctx: dict[str, str] = {}
                for event in chunk:
                    if event.span_id:
                        span = tracer.start_span(
                            "replicate.ship",
                            parent=event.span_id,
                            node=self.node_id,
                            dst=destination,
                        )
                        ctx[f"{event.origin}:{event.origin_seq}"] = span.span_id
                if ctx:
                    message["ctx"] = ctx
            if not self.send_batch(destination, [message], size=len(chunk)):
                shipped_all = False
        return shipped_all

    def offer_events(self, destination: str, events: list[LogEvent]) -> None:
        """Eager-shipping entry point: coalesce when a flush timer is
        configured, ship immediately otherwise."""
        if self.shipper is not None:
            self.shipper.offer(destination, events)
        else:
            self.ship_events(destination, events)

    def probe(self, destination: str) -> bool:
        """Send our version vector to a peer, inviting it to fill our
        gaps (one half of a gossip exchange)."""
        return self.send(
            destination,
            {"type": "vv", "vector": self.store.version_vector.to_dict()},
        )

    # ------------------------------------------------------------------ #
    # New-replica bootstrap (checkpoint + delta, O(delta) not O(log))
    # ------------------------------------------------------------------ #

    def request_bootstrap(self, donor_id: str) -> bool:
        """Ask ``donor_id`` for its latest rollup checkpoint.

        The donor replies with a ``checkpoint`` message; installing it
        seeds this (empty) replica's state map and per-origin watermarks
        so replication only ships events *since* the checkpoint instead
        of the donor's entire history.
        """
        return self.send(donor_id, {"type": "bootstrap"})

    def _serve_bootstrap(self, destination: str) -> None:
        manager = self.store.checkpoints
        checkpoint = manager.latest() if manager is not None else None
        if checkpoint is None:
            # No checkpoint on file — capture an ad-hoc one; the donor
            # pays one O(entities) copy instead of shipping O(log) events.
            from repro.lsdb.checkpoint import Checkpoint

            checkpoint = Checkpoint.capture(self.store)
        self.send_batch(
            destination,
            [{"type": "checkpoint", "checkpoint": checkpoint}],
            size=checkpoint.entity_count,
        )

    # ------------------------------------------------------------------ #
    # Convergence checks (used by tests and experiments)
    # ------------------------------------------------------------------ #

    def observable_state(self) -> dict[tuple[str, str], dict[str, Any]]:
        """Field values of all live entities — the application view used
        to decide whether replicas have converged."""
        return {
            ref: dict(state.fields)
            for ref, state in self.store.current_state().items()
        }


def staleness_behind(authority: ReplicaNode, follower: ReplicaNode) -> float:
    """How long ``follower`` has been behind ``authority``, in sim time.

    ``0.0`` when the follower has applied every event the authority
    originated; otherwise the age of the *oldest* authority event the
    follower has not applied yet — "this copy is missing writes from
    ``t`` seconds ago", which is the staleness number a degraded read
    gets stamped with (the measurement-first posture of the consistency
    simulation literature: measure the distribution, don't assert it).
    """
    applied = follower.store.version_vector.get(authority.node_id)
    backlog = authority.store.events_from_origin(authority.node_id, applied)
    if not backlog:
        return 0.0
    return max(0.0, authority.sim.now - backlog[0].timestamp)


def converged(replicas: list[ReplicaNode]) -> bool:
    """Whether all replicas expose identical observable state.

    This is the paper's eventual-consistency test: "convergence to
    equivalent states at all replicas if there were no further
    transactions" (section 1).
    """
    if len(replicas) < 2:
        return True
    reference = replicas[0].observable_state()
    return all(replica.observable_state() == reference for replica in replicas[1:])
