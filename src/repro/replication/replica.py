"""The replica node: an LSDB store behind a network endpoint.

Every replication scheme in this package composes the same building
block: a :class:`ReplicaNode` owning a local
:class:`~repro.lsdb.store.LSDBStore` whose events carry the replica's
identity.  The node speaks a two-message protocol:

* ``{"type": "events", "events": [...]}`` — apply remote events
  (idempotently, in per-origin order; duplicates from at-least-once
  shipping are rejected by the store).
* ``{"type": "vv", "vector": {...}, "reply_to": id}`` — anti-entropy
  probe: compare the sender's version vector with ours and ship back
  whatever the sender is missing.

Subjective consistency (paper section 1) falls out of the structure:
every read and write a client performs against one node sees only that
node's log.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from repro.lsdb.events import LogEvent
from repro.lsdb.store import LSDBStore
from repro.merge.clock import VersionVector
from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator


class ReplicaNode(Node):
    """A network-attached replica.

    Args:
        node_id: Network id, also the store's origin id.
        sim: Simulator providing the store's clock.
        snapshot_interval: Forwarded to the store.
    """

    def __init__(
        self,
        node_id: str,
        sim: Simulator,
        snapshot_interval: int = 0,
    ):
        super().__init__(node_id)
        self.sim = sim
        # The store inherits the simulator's observability handles, so a
        # traced simulator yields traced replicas with no extra wiring.
        self.store = LSDBStore(
            name=node_id,
            origin=node_id,
            clock=lambda: sim.now,
            snapshot_interval=snapshot_interval,
            tracer=sim.tracer,
            metrics=sim.metrics,
        )
        self.events_received = 0
        self.anti_entropy_rounds = 0
        self._m_received = (
            sim.metrics.counter("replica.events_received", node=node_id)
            if sim.metrics is not None
            else None
        )

    # ------------------------------------------------------------------ #
    # Message protocol
    # ------------------------------------------------------------------ #

    def handle_message(self, source: str, message: Mapping[str, Any]) -> None:
        kind = message.get("type")
        if kind == "events":
            # ``ctx`` maps "origin:seq" to the per-event ship span opened
            # by the sender; arriving here is what closes that span, and
            # the apply span chains onto it (the causal hop).
            ctx = message.get("ctx")
            tracer = self.store.tracer
            for event in message.get("events", ()):
                ship_id = None
                if ctx is not None:
                    ship_id = ctx.get(f"{event.origin}:{event.origin_seq}")
                if ship_id is not None and tracer is not None:
                    ship_span = tracer.get(ship_id)
                    if ship_span is not None:
                        tracer.end_span(ship_span, status="delivered")
                if self.store.apply_remote(event, parent_span=ship_id):
                    self.events_received += 1
                    if self._m_received is not None:
                        self._m_received.inc()
        elif kind == "vv":
            self._answer_probe(source, message)
        else:
            self.handle_extra_message(source, message)

    def handle_extra_message(self, source: str, message: Mapping[str, Any]) -> None:
        """Hook for scheme-specific messages (overridden by subclasses)."""

    def _answer_probe(self, source: str, message: Mapping[str, Any]) -> None:
        remote_vector = VersionVector(message.get("vector", {}))
        missing: list[LogEvent] = []
        for origin, have in remote_vector.missing_from(self.store.version_vector).items():
            # ``have`` is (their_count, my_count): ship the gap.
            their_count, _my_count = have
            missing.extend(self.store.events_from_origin(origin, their_count))
        self.anti_entropy_rounds += 1
        if missing:
            # ship_events (not raw send) so anti-entropy repairs carry
            # per-event ship spans like first-time shipping does.
            self.ship_events(source, missing)

    # ------------------------------------------------------------------ #
    # Propagation helpers
    # ------------------------------------------------------------------ #

    def ship_events(self, destination: str, events: list[LogEvent]) -> bool:
        """Send a batch of events to one peer (best-effort).

        With tracing on, each traced event gets a ``replicate.ship``
        span parented on its append span; the span ids ride along in
        the message's ``ctx`` and are closed by the receiver.  A batch
        that never arrives leaves its ship spans open — the timeline's
        way of showing a lost replication hop.
        """
        if not events:
            return True
        message: dict[str, Any] = {"type": "events", "events": events}
        tracer = self.store.tracer
        if tracer is not None:
            ctx: dict[str, str] = {}
            for event in events:
                if event.span_id:
                    span = tracer.start_span(
                        "replicate.ship",
                        parent=event.span_id,
                        node=self.node_id,
                        dst=destination,
                    )
                    ctx[f"{event.origin}:{event.origin_seq}"] = span.span_id
            if ctx:
                message["ctx"] = ctx
        return self.send(destination, message)

    def probe(self, destination: str) -> bool:
        """Send our version vector to a peer, inviting it to fill our
        gaps (one half of a gossip exchange)."""
        return self.send(
            destination,
            {"type": "vv", "vector": self.store.version_vector.to_dict()},
        )

    # ------------------------------------------------------------------ #
    # Convergence checks (used by tests and experiments)
    # ------------------------------------------------------------------ #

    def observable_state(self) -> dict[tuple[str, str], dict[str, Any]]:
        """Field values of all live entities — the application view used
        to decide whether replicas have converged."""
        return {
            ref: dict(state.fields)
            for ref, state in self.store.current_state().items()
        }


def converged(replicas: list[ReplicaNode]) -> bool:
    """Whether all replicas expose identical observable state.

    This is the paper's eventual-consistency test: "convergence to
    equivalent states at all replicas if there were no further
    transactions" (section 1).
    """
    if len(replicas) < 2:
        return True
    reference = replicas[0].observable_state()
    return all(replica.observable_state() == reference for replica in replicas[1:])
