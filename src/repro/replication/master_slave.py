"""Master/slave replication — mixed consistency from one event feed.

Paper section 3.1: "a master-slave approach where the master copy
handles all updates unapologetically but slaves may have to apologize
and compensate might address needs for variegated consistency
requirements."

The master is the single writer (updates routed elsewhere raise
:class:`~repro.errors.NotMaster`); slaves receive the log asynchronously
and serve reads that are *stale by a measurable lag*.  Decisions taken
against slave data (e.g. accepting an order based on stale stock) are
subjective and may need apologies — experiment E10 wires the bookstore
to slave reads and counts them.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import NotMaster
from repro.lsdb.rollup import EntityState
from repro.merge.deltas import Delta
from repro.replication.asynchronous import resolve_batching
from repro.replication.batching import BatchPolicy
from repro.replication.replica import ReplicaNode
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


class MasterSlaveGroup:
    """One writable master, many read-only slaves.

    Args:
        sim: The simulator.
        network: The network.
        master_id: Node id of the master.
        slave_ids: Node ids of the slaves.
        ship_interval: Period of the master's log-shipping loop (the
            knob that sets slave staleness).  Deprecated without
            ``batching`` (keeps the unbatched wire behaviour).
        batching: Frame policy for the per-slave shippers.

    Example:
        >>> from repro.replication.batching import BatchPolicy
        >>> sim = Simulator(); net = Network(sim, latency=2.0)
        >>> group = MasterSlaveGroup(sim, net, "master", ["slave-1"],
        ...                          ship_interval=10.0,
        ...                          batching=BatchPolicy(max_batch=64))
        >>> _ = group.write_insert("stock", "book", {"copies": 5})
        >>> group.read("slave-1", "stock", "book") is None   # not shipped yet
        True
        >>> _ = sim.run(until=30.0)
        >>> group.read("slave-1", "stock", "book").fields["copies"]
        5
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        master_id: str = "master",
        slave_ids: Optional[list[str]] = None,
        ship_interval: Optional[float] = None,
        *,
        batching: Optional[BatchPolicy] = None,
    ):
        self.sim = sim
        self.network = network
        self.ship_interval, self.batching = resolve_batching(
            ship_interval, batching, "MasterSlaveGroup"
        )
        self.master = network.register(
            ReplicaNode(master_id, sim, batching=self.batching)
        )
        self.slaves: dict[str, ReplicaNode] = {}
        for slave_id in slave_ids or ["slave"]:
            self.slaves[slave_id] = network.register(
                ReplicaNode(slave_id, sim, batching=self.batching)
            )
        self._shipped: dict[str, int] = {slave_id: 0 for slave_id in self.slaves}
        self.rejected_writes = 0
        self._h_staleness = (
            sim.metrics.histogram("read.staleness_events", scheme="master_slave")
            if sim.metrics is not None
            else None
        )
        self._schedule_shipping()

    # ------------------------------------------------------------------ #
    # Writes: master only
    # ------------------------------------------------------------------ #

    def write_insert(
        self, entity_type: str, entity_key: str, fields: dict[str, Any], tx_id: str = ""
    ) -> float:
        """Insert at the master; ack immediate (local commit)."""
        self.master.store.insert(entity_type, entity_key, fields, tx_id=tx_id)
        return self.sim.now

    def write_delta(
        self, entity_type: str, entity_key: str, delta: Delta, tx_id: str = ""
    ) -> float:
        """Delta at the master; ack immediate."""
        self.master.store.apply_delta(entity_type, entity_key, delta, tx_id=tx_id)
        return self.sim.now

    def write_at(self, node_id: str, *_args, **_kwargs) -> None:
        """Reject updates addressed to a slave (single-writer discipline).

        Raises:
            NotMaster: Always, unless ``node_id`` is the master.
        """
        if node_id != self.master.node_id:
            self.rejected_writes += 1
            raise NotMaster(f"{node_id!r} does not accept updates")
        raise ValueError("use write_insert/write_delta for master writes")

    # ------------------------------------------------------------------ #
    # Reads: anywhere, with staleness at slaves
    # ------------------------------------------------------------------ #

    def read(self, *args: str, request=None):
        """Read an entity — typed, canonical, or legacy form.

        Typed (the unified protocol, :mod:`repro.core.readpath`)::

            group.read(entity_type, entity_key, request=ReadRequest(...))

        routes by the requested level — ``STRONG`` to the master,
        anything weaker to the first slave — and returns a
        :class:`~repro.core.readpath.ReadResult` stamped with the
        delivered level and the slave's measured staleness (age of the
        oldest master event the slave has not applied).

        Canonical ``read(entity_type, entity_key)`` serves the master
        and returns the raw state; the legacy three-positional form
        ``read(node_id, entity_type, entity_key)`` addresses an
        explicit node.

        Slave reads record their staleness (master events not yet
        applied at the serving slave) into the ``read.staleness_events``
        histogram when metrics are attached.
        """
        if len(args) == 3:
            node_id, entity_type, entity_key = args
        elif len(args) == 2:
            entity_type, entity_key = args
            from repro.core.consistency import ConsistencyLevel

            level = request.level if request is not None else None
            if level is None or level is ConsistencyLevel.STRONG:
                node_id = self.master.node_id
            else:
                node_id = next(iter(self.slaves))
        else:
            raise TypeError(
                "read() takes (entity_type, entity_key) or "
                f"(node_id, entity_type, entity_key); got {len(args)} args"
            )
        if node_id == self.master.node_id:
            state = self.master.store.get(entity_type, entity_key)
            if request is None:
                return state
            from repro.core.consistency import ConsistencyLevel
            from repro.core.readpath import deliver

            return deliver(
                state,
                request,
                ConsistencyLevel.STRONG,
                staleness=0.0,
                served_by=node_id,
                metrics=self.sim.metrics,
            )
        if self._h_staleness is not None:
            self._h_staleness.record(self.slave_lag_events(node_id))
        follower = self.slaves[node_id]
        if request is None:
            return follower.store.get(entity_type, entity_key)
        from repro.core.readpath import deliver, replica_level
        from repro.replication.replica import staleness_behind

        staleness = staleness_behind(self.master, follower)
        cache = follower.store.read_cache
        if cache is not None:
            # The scheme's replication lag already eats part of the
            # caller's staleness budget; the cache may only add what's
            # left.  Total measured staleness is the oldest write the
            # answer misses: scheme lag or cache age, whichever is
            # worse.
            if request.max_staleness is None:
                budget = None
            else:
                budget = max(0.0, request.max_staleness - staleness)
            state, cache_age = cache.lookup(
                entity_type, entity_key, budget=budget
            )
            staleness = max(staleness, cache_age)
        else:
            state = follower.store.get(entity_type, entity_key)
        return deliver(
            state,
            request,
            replica_level(request.level),
            staleness=staleness,
            served_by=node_id,
            metrics=self.sim.metrics,
        )

    def slave_lag_events(self, slave_id: str) -> int:
        """Master events not yet applied at ``slave_id``."""
        applied = self.slaves[slave_id].store.version_vector.get(
            self.master.node_id
        )
        return self.master.store.count_from_origin(self.master.node_id, applied)

    # ------------------------------------------------------------------ #
    # Shipping loop
    # ------------------------------------------------------------------ #

    def _schedule_shipping(self) -> None:
        self.sim.schedule(self.ship_interval, self._ship_round, label="ms-ship")

    def _ship_round(self) -> None:
        for slave_id in self.slaves:
            backlog = self.master.store.events_since(self._shipped[slave_id])
            if backlog and not self.master.crashed:
                if self.master.ship_events(slave_id, backlog):
                    self._shipped[slave_id] = backlog[-1].lsn
            # Idempotent apply means re-probing is always safe; lets a
            # slave that missed a batch (partition) catch up.
            if not self.master.crashed:
                self.slaves[slave_id].probe(self.master.node_id)
        self._schedule_shipping()
