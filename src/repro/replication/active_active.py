"""Active/active replication with subjective/eventual consistency.

The scheme the paper's principles are *for*: every replica accepts
writes against its local state (subjective consistency), acknowledges
immediately, propagates events eagerly to its peers, and relies on
anti-entropy to repair whatever eager propagation missed (partitions,
crashes, lost messages).  Convergence — eventual consistency — follows
from the LSDB's idempotent, per-origin-ordered apply plus the convergent
rollup semantics.

Because acknowledgement never waits on a remote party, the group stays
**available under partition** (each side keeps serving its clients);
the cost is divergence while partitioned, surfacing as business-level
conflicts to resolve and possibly apologise for (principles 2.9/2.10).
Experiments E1 and E12 run on this class.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.merge.deltas import Delta
from repro.replication.anti_entropy import AntiEntropy
from repro.replication.batching import BatchPolicy
from repro.replication.replica import ReplicaNode, converged
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


class ActiveActiveGroup:
    """A set of peer replicas, all writable.

    Args:
        sim: The simulator.
        network: The network the replicas attach to.
        replica_ids: Names of the replicas to create.
        eager: Whether each local write is immediately broadcast to
            peers (in addition to anti-entropy repair).
        anti_entropy_interval: Gossip period; ``0`` disables gossip
            (then only eager propagation runs — lost messages are never
            repaired, which E12 uses as a degenerate case).
        gossip_fanout: Peers contacted per gossip round per replica.
        batching: Frame policy for propagation.  With a
            ``flush_interval`` each replica coalesces eager per-write
            shipments into frames (bounded extra latency, far fewer
            wire messages); without one each write still ships
            immediately as a degenerate one-event frame.

    Example:
        >>> sim = Simulator(); net = Network(sim, latency=2.0)
        >>> group = ActiveActiveGroup(sim, net, ["r1", "r2", "r3"])
        >>> _ = group.write_delta("r1", "stock", "widget",
        ...                       Delta.add("on_hand", 5))
        >>> _ = sim.run(until=50.0)
        >>> group.is_converged()
        True
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        replica_ids: list[str],
        eager: bool = True,
        anti_entropy_interval: float = 25.0,
        gossip_fanout: int = 1,
        *,
        batching: Optional[BatchPolicy] = None,
    ):
        if len(replica_ids) < 2:
            raise ValueError("an active/active group needs at least two replicas")
        self.sim = sim
        self.network = network
        self.eager = eager
        self.batching = batching if batching is not None else BatchPolicy()
        self.replicas: dict[str, ReplicaNode] = {}
        for replica_id in replica_ids:
            self.replicas[replica_id] = network.register(
                ReplicaNode(replica_id, sim, batching=self.batching)
            )
        self.anti_entropy: Optional[AntiEntropy] = None
        if anti_entropy_interval > 0:
            self.anti_entropy = AntiEntropy(
                sim,
                list(self.replicas.values()),
                interval=anti_entropy_interval,
                fanout=gossip_fanout,
            )
        self.writes_accepted = 0

    # ------------------------------------------------------------------ #
    # Client API: subjective writes, immediate acknowledgement
    # ------------------------------------------------------------------ #

    def write_insert(
        self,
        replica_id: str,
        entity_type: str,
        entity_key: str,
        fields: dict[str, Any],
        tx_id: str = "",
    ) -> float:
        """Insert at one replica; ack is immediate (subjective commit).

        Returns the ack time.  Never unavailable: a partitioned or
        lagging replica still accepts the write against its local view.
        """
        replica = self.replicas[replica_id]
        event = replica.store.insert(entity_type, entity_key, fields, tx_id=tx_id)
        self._propagate(replica, [event])
        self.writes_accepted += 1
        return self.sim.now

    def write_delta(
        self,
        replica_id: str,
        entity_type: str,
        entity_key: str,
        delta: Delta,
        tx_id: str = "",
    ) -> float:
        """Apply a commutative delta at one replica (ack immediate)."""
        replica = self.replicas[replica_id]
        event = replica.store.apply_delta(entity_type, entity_key, delta, tx_id=tx_id)
        self._propagate(replica, [event])
        self.writes_accepted += 1
        return self.sim.now

    def write_set_fields(
        self,
        replica_id: str,
        entity_type: str,
        entity_key: str,
        fields: dict[str, Any],
        tx_id: str = "",
    ) -> float:
        """Overwrite fields at one replica (LWW across replicas)."""
        replica = self.replicas[replica_id]
        event = replica.store.set_fields(entity_type, entity_key, fields, tx_id=tx_id)
        self._propagate(replica, [event])
        self.writes_accepted += 1
        return self.sim.now

    def read(self, *args: str, request=None):
        """Subjective read — typed, canonical, or legacy form.

        Typed (unified protocol): ``read(entity_type, entity_key,
        request=ReadRequest(...))`` serves from the first replica and
        returns a :class:`~repro.core.readpath.ReadResult` delivered at
        ``EVENTUAL`` at best — there is no strong copy in an
        active/active group, so a ``STRONG`` request is honestly
        stamped as degraded.  The staleness stamp is the simulator's
        omniscient view: the age of the oldest peer event the serving
        replica has not applied yet.  Canonical two-arg and legacy
        three-positional ``read(replica_id, entity_type, entity_key)``
        forms return the raw state.
        """
        if len(args) == 3:
            replica_id, entity_type, entity_key = args
        elif len(args) == 2:
            entity_type, entity_key = args
            replica_id = next(iter(self.replicas))
        else:
            raise TypeError(
                "read() takes (entity_type, entity_key) or "
                f"(replica_id, entity_type, entity_key); got {len(args)} args"
            )
        state = self.replicas[replica_id].store.get(entity_type, entity_key)
        if request is None:
            return state
        from repro.core.consistency import ConsistencyLevel
        from repro.core.readpath import LEVEL_STRENGTH, deliver
        from repro.replication.replica import staleness_behind

        serving = self.replicas[replica_id]
        staleness = 0.0
        for peer in self.replicas.values():
            if peer is not serving:
                staleness = max(staleness, staleness_behind(peer, serving))
        delivered = request.level
        if LEVEL_STRENGTH[delivered] < LEVEL_STRENGTH[ConsistencyLevel.EVENTUAL]:
            delivered = ConsistencyLevel.EVENTUAL
        return deliver(
            state,
            request,
            delivered,
            staleness=staleness,
            served_by=replica_id,
            metrics=self.sim.metrics,
        )

    # ------------------------------------------------------------------ #
    # Propagation & convergence
    # ------------------------------------------------------------------ #

    def _propagate(self, source: ReplicaNode, events: list) -> None:
        if not self.eager:
            return
        # offer_events routes through the source's FrameShipper when the
        # batching policy coalesces, shipping immediately otherwise.
        for replica_id, replica in self.replicas.items():
            if replica is not source:
                source.offer_events(replica_id, events)

    def is_converged(self) -> bool:
        """Whether all replicas expose identical observable state."""
        return converged(list(self.replicas.values()))

    def divergence(self) -> int:
        """A coarse divergence measure: the number of (entity, replica)
        pairs whose observable fields differ from replica 0's view."""
        nodes = list(self.replicas.values())
        reference = nodes[0].observable_state()
        differing = 0
        for replica in nodes[1:]:
            state = replica.observable_state()
            refs = set(reference) | set(state)
            differing += sum(
                1 for ref in refs if reference.get(ref) != state.get(ref)
            )
        return differing

    def replica_list(self) -> list[ReplicaNode]:
        """The replicas, in creation order."""
        return list(self.replicas.values())
