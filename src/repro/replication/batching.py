"""Frame batching for the replication data plane.

Every scheme in this package ultimately moves runs of log events between
:class:`~repro.replication.replica.ReplicaNode` peers.  Unbatched, each
event is one wire message — one latency draw, one loss coin, one
scheduler entry.  This module provides the two pieces that turn those
runs into :class:`~repro.sim.network.Frame` shipments:

* :class:`BatchPolicy` — how to cut an event run into LSN-contiguous
  frames (``max_batch``) and whether an eager shipper may hold events
  back briefly to coalesce them (``flush_interval``).
* :class:`FrameShipper` — per-destination coalescing buffers used by
  eager propagation (active/active), flushing on size or on a timer.

The default policy (``max_batch=None``) is the degenerate one-event
frame: wire behaviour, fault injection and chaos semantics are exactly
the per-message model the rest of the suite was built on, which is what
keeps the batched and unbatched paths comparable in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.lsdb.columnar import EventSlice
from repro.lsdb.events import LogEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.replication.replica import ReplicaNode


@dataclass(frozen=True)
class BatchPolicy:
    """How a shipper cuts event runs into wire frames.

    Attributes:
        max_batch: Maximum events per frame.  ``None`` means unbatched:
            every event ships as its own (degenerate) frame, the
            historical one-message-per-event behaviour.
        flush_interval: Virtual time an eager shipper may buffer events
            waiting for more, trading a bounded extra latency for fuller
            frames.  ``0.0`` disables coalescing (ship immediately).

    Frames are **contiguous runs**: a frame never papers over a gap.
    Two adjacent events belong in the same frame only when the second
    directly succeeds the first — by store LSN (log-tail shipping) or by
    per-origin sequence (anti-entropy repair feeds).  The receiver can
    therefore treat a frame like the uninterrupted log run it is, and a
    dropped frame loses one contiguous window that the version-vector
    probes detect and re-ship wholesale.
    """

    max_batch: Optional[int] = None
    flush_interval: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.flush_interval < 0:
            raise ValueError(
                f"flush_interval must be >= 0, got {self.flush_interval}"
            )

    @property
    def coalesces(self) -> bool:
        """Whether eager shippers should buffer behind a flush timer."""
        return self.flush_interval > 0

    def chunk(self, events: Iterable[LogEvent]) -> Iterator[list[LogEvent]]:
        """Split ``events`` into frame-sized contiguous runs.

        Yields non-empty lists of at most :attr:`max_batch` events where
        each event directly succeeds its predecessor (same-store LSN + 1,
        or same origin with origin_seq + 1).
        """
        limit = 1 if self.max_batch is None else self.max_batch
        chunk: list[LogEvent] = []
        previous: Optional[LogEvent] = None
        for event in events:
            if chunk and (len(chunk) >= limit or not _succeeds(previous, event)):
                yield chunk
                chunk = []
            chunk.append(event)
            previous = event
        if chunk:
            yield chunk

    def chunk_rows(self, view: EventSlice) -> Iterator[EventSlice]:
        """Columnar twin of :meth:`chunk`: split an :class:`EventSlice`
        into frame-sized contiguous runs *without materializing events*.

        Succession is decided straight from the arena's LSN / origin-id
        / origin-seq columns with exactly the :func:`_succeeds` logic,
        so a slice chunks into the same frame boundaries the event list
        would — the property the chaos determinism signature pins.
        """
        arena = view.arena
        rows = view.rows
        count = len(rows)
        if not count:
            return
        limit = 1 if self.max_batch is None else self.max_batch
        lsns = arena.lsns
        origin_ids = arena.origin_ids
        origin_seqs = arena.origin_seqs
        start = 0
        previous = rows[0]
        for position in range(1, count):
            row = rows[position]
            if position - start >= limit or not (
                (lsns[previous] > 0 and lsns[row] == lsns[previous] + 1)
                or (
                    origin_ids[row] == origin_ids[previous]
                    and origin_seqs[row] == origin_seqs[previous] + 1
                )
            ):
                yield EventSlice(arena, rows[start:position])
                start = position
            previous = row
        yield EventSlice(arena, rows[start:count])


def _succeeds(previous: LogEvent, event: LogEvent) -> bool:
    """Whether ``event`` directly follows ``previous`` in some feed."""
    if previous.lsn > 0 and event.lsn == previous.lsn + 1:
        return True
    return (
        event.origin == previous.origin
        and event.origin_seq == previous.origin_seq + 1
    )


class FrameShipper:
    """Per-destination coalescing buffers for an eager shipper.

    Eager propagation (active/active) ships at write time, so without
    help every write is a one-event frame no matter what ``max_batch``
    says.  The shipper buffers offered events per destination and
    flushes either when a buffer reaches ``max_batch`` events or when
    the ``flush_interval`` timer (armed at the first buffered event)
    fires — whichever comes first.  Losses are not retried here: the
    schemes' anti-entropy probes already repair any dropped frame, and
    apply is idempotent.

    Args:
        node: The owning replica; supplies the simulator (for flush
            timers) and :meth:`~repro.replication.replica.ReplicaNode.ship_events`.
        policy: The batching policy; must have :attr:`BatchPolicy.coalesces`.
    """

    def __init__(self, node: "ReplicaNode", policy: BatchPolicy):
        self.node = node
        self.policy = policy
        self._buffers: dict[str, list[LogEvent]] = {}
        self._armed: set[str] = set()

    def offer(self, destination: str, events: list[LogEvent]) -> None:
        """Buffer events for ``destination``; flush on size or timer."""
        buffer = self._buffers.setdefault(destination, [])
        buffer.extend(events)
        limit = self.policy.max_batch
        if limit is not None and len(buffer) >= limit:
            self.flush(destination)
            return
        if destination not in self._armed:
            self._armed.add(destination)
            self.node.sim.schedule(
                self.policy.flush_interval,
                lambda: self._timed_flush(destination),
                label=f"frame-flush {self.node.node_id}->{destination}",
            )

    def _timed_flush(self, destination: str) -> None:
        self._armed.discard(destination)
        self.flush(destination)

    def flush(self, destination: str) -> bool:
        """Ship everything buffered for one destination right now."""
        buffer = self._buffers.get(destination)
        if not buffer:
            return True
        self._buffers[destination] = []
        return self.node.ship_events(destination, buffer)

    def flush_all(self) -> None:
        """Ship every non-empty buffer (used at quiesce/shutdown)."""
        for destination in list(self._buffers):
            self.flush(destination)

    def pending(self, destination: Optional[str] = None) -> int:
        """Buffered-but-unshipped event count (one or all destinations)."""
        if destination is not None:
            return len(self._buffers.get(destination, ()))
        return sum(len(buffer) for buffer in self._buffers.values())
