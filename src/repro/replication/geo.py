"""Geo-distributed partial replication: shard groups behind site gateways.

Full replication ships every write to every datacenter.  The paper's
geo sections (2.7-2.10) never assume that: replicas that cannot all see
every write promptly are the *premise*, and WAN egress is the dominant
cost.  This module makes replication genuinely partial — a site only
receives :class:`~repro.lsdb.columnar.ColumnFrame` shipments for the
shards its :class:`~repro.partition.placement.PlacementPolicy` places on
it — while keeping the LSDB's per-origin contiguity invariant intact.

The structural trick is the unit of replication.  Filtering one big
replica's event stream per shard would tear holes in per-origin
sequences (``apply_remote`` requires each origin's feed to be
contiguous, so a receiver that skips "not my shard" events would wedge
its reorder buffer forever).  Instead each **(site, shard)** pair gets
its own :class:`GeoShardReplica` — node id ``"{site}/s{shard}"`` — so
every origin stream belongs to exactly one shard group and partial
replication is just "this group has members on 2 of 3 sites".

Shard replicas are not network endpoints.  Each site has one
:class:`WanGateway`, the only node the :class:`~repro.sim.network.Network`
(and the site topology, and chaos) sees.  Replicas hand outgoing
messages to their gateway, which buffers envelopes per destination site
and flushes them at the end of the instant as **one frame per WAN link**
— one latency/loss draw covers every shard group that shipped in that
round, extending the PR 5 frame amortization across the WAN.  Crashing
a gateway takes the whole site down, which is exactly the failure unit
the geo chaos soak exercises.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.core.consistency import ConsistencyLevel
from repro.core.readpath import (
    LEVEL_STRENGTH,
    ConsistencyUnavailable,
    deliver,
    replica_level,
)
from repro.errors import ReplicationError
from repro.merge.deltas import Delta
from repro.partition.placement import PlacementPolicy
from repro.replication.batching import BatchPolicy
from repro.replication.replica import ReplicaNode, converged, staleness_behind
from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator
from repro.sim.topology import SiteTopology

__all__ = ["WanGateway", "GeoShardReplica", "GeoReplicaGroup", "site_of_replica"]


def site_of_replica(replica_id: str) -> str:
    """The site component of a ``"{site}/s{shard}"`` replica id."""
    return replica_id.split("/", 1)[0]


class WanGateway(Node):
    """One site's network endpoint: the WAN aggregation point.

    All of a site's shard replicas route through its gateway.  Same-site
    deliveries short-circuit (no wire hop — the LAN inside a site is not
    modelled beyond the network's base latency, which gateway-to-gateway
    frames already pay).  Cross-site messages are buffered per
    destination site and flushed at the end of the current instant as a
    single :meth:`~repro.sim.network.Node.send_batch` per link, so every
    shard group shipping in the same round shares one latency draw and
    one loss coin per WAN link.

    Envelopes are ``{"to": replica_id, "frm": replica_id, "msg": ...}``;
    the receiving gateway unwraps each and hands it to the addressed
    local replica.
    """

    def __init__(self, node_id: str, site: str, sim: Simulator):
        super().__init__(node_id)
        self.site = site
        self.sim = sim
        self.locals: dict[str, "GeoShardReplica"] = {}
        self._buffers: dict[str, list[dict[str, Any]]] = {}
        self._sizes: dict[str, int] = {}
        self._armed = False

    def route(
        self, src_id: str, dst_id: str, message: Any, *, size: int = 1
    ) -> bool:
        """Accept one replica-to-replica message for delivery."""
        if self.crashed:
            return False
        dst_site = site_of_replica(dst_id)
        if dst_site == self.site:
            target = self.locals.get(dst_id)
            if target is None or target.crashed:
                return False
            target.handle_message(src_id, message)
            return True
        envelope = {"to": dst_id, "frm": src_id, "msg": message}
        self._buffers.setdefault(dst_site, []).append(envelope)
        self._sizes[dst_site] = self._sizes.get(dst_site, 0) + size
        if not self._armed:
            self._armed = True
            # End-of-instant flush: everything routed at the same virtual
            # time coalesces into one frame per WAN link.
            self.sim.schedule(0.0, self.flush, label=f"wan-flush {self.node_id}")
        return True

    def flush(self) -> None:
        """Ship every buffered envelope, one frame per destination site."""
        self._armed = False
        if not self._buffers:
            return
        buffers, self._buffers = self._buffers, {}
        sizes, self._sizes = self._sizes, {}
        for dst_site in sorted(buffers):
            self.send_batch(
                f"gw.{dst_site}", buffers[dst_site], size=sizes[dst_site]
            )

    def handle_message(self, source: str, message: Mapping[str, Any]) -> None:
        target = self.locals.get(message["to"])
        if target is None or target.crashed:
            return
        target.handle_message(message["frm"], message["msg"])


class GeoShardReplica(ReplicaNode):
    """One shard's copy at one site.

    A normal :class:`~repro.replication.replica.ReplicaNode` — same
    store, same two-message protocol, same frame shipping — except it is
    not registered on the network: ``send``/``send_batch`` hand frames
    to the site's :class:`WanGateway` instead, after refusing any
    destination whose site does not host this shard (the placement
    guard that keeps replication partial even against buggy callers).
    """

    def __init__(
        self,
        site: str,
        shard: int,
        gateway: WanGateway,
        placement: PlacementPolicy,
        sim: Simulator,
        *,
        batching: Optional[BatchPolicy] = None,
    ):
        super().__init__(f"{site}/s{shard}", sim, batching=batching)
        self.site = site
        self.shard = shard
        self.gateway = gateway
        self.placement = placement

    def _admit(self, destination: str) -> bool:
        return not self.crashed and self.placement.hosts(
            site_of_replica(destination), self.shard
        )

    def send(self, destination: str, message: Any) -> bool:
        if not self._admit(destination):
            return False
        return self.gateway.route(self.node_id, destination, message)

    def send_batch(
        self, destination: str, messages: list, *, size: Optional[int] = None
    ) -> bool:
        if not self._admit(destination):
            return False
        count = size if size is not None else len(messages)
        shipped_all = True
        for message in messages:
            if not self.gateway.route(
                self.node_id, destination, message, size=count
            ):
                shipped_all = False
            count = 0  # the frame's logical size is booked once
        return shipped_all


class GeoReplicaGroup:
    """Partially replicated shard groups across datacenters.

    The geo twin of the flat replication schemes: ``placement`` decides
    which sites copy which shards, one :class:`WanGateway` per site is
    the network/chaos-visible failure unit, and one
    :class:`GeoShardReplica` per (hosting site, shard) carries the data.
    Writes route to the shard's first *live* preference site and ack
    immediately (subjective commit); a periodic ship loop propagates
    per-origin backlogs inside each group, and anti-entropy probes
    repair whatever shipping lost.

    Args:
        sim: The simulator.
        network: The network the gateways attach to.
        topology: Site topology; every placement site must be a
            topology site.  Gateways are assigned to their sites here,
            which is what puts WAN latency/loss on inter-site frames.
        placement: The shard-to-site :class:`PlacementPolicy`.
        ship_interval: Period of the per-group log shipping loop.
        anti_entropy_interval: Gossip period inside each shard group;
            ``0`` disables repair probes.
        batching: Frame policy for event shipments.

    Example:
        >>> from repro.sim.scheduler import Simulator
        >>> from repro.sim.network import Network
        >>> from repro.sim.topology import SiteTopology, WanLink
        >>> from repro.partition.placement import PlacementPolicy
        >>> sim = Simulator(); net = Network(sim, latency=1.0)
        >>> topo = SiteTopology(["dc1", "dc2", "dc3"],
        ...                     default_link=WanLink(latency=30.0))
        >>> net.attach_topology(topo)
        >>> group = GeoReplicaGroup(sim, net, topo,
        ...     PlacementPolicy(["dc1", "dc2", "dc3"], replicas=2, shards=4))
        >>> _ = group.write_insert("stock", "widget", {"on_hand": 5})
        >>> _ = sim.run(until=200.0)
        >>> group.is_converged()
        True
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        topology: SiteTopology,
        placement: PlacementPolicy,
        *,
        ship_interval: float = 10.0,
        anti_entropy_interval: float = 25.0,
        batching: Optional[BatchPolicy] = None,
    ):
        if ship_interval <= 0:
            raise ValueError(f"ship_interval must be positive, got {ship_interval}")
        missing = [s for s in placement.sites if s not in topology.sites]
        if missing:
            raise ValueError(
                f"placement sites {missing} are not in the topology "
                f"{list(topology.sites)}"
            )
        self.sim = sim
        self.network = network
        self.topology = topology
        self.placement = placement
        self.ship_interval = ship_interval
        self.anti_entropy_interval = anti_entropy_interval
        self.batching = batching if batching is not None else BatchPolicy()
        self.gateways: dict[str, WanGateway] = {}
        for site in placement.sites:
            gateway = WanGateway(f"gw.{site}", site, sim)
            network.register(gateway)
            topology.assign(gateway.node_id, site)
            self.gateways[site] = gateway
        self.replicas: dict[str, GeoShardReplica] = {}
        self.groups: dict[int, list[GeoShardReplica]] = {}
        for shard in range(placement.shards):
            members: list[GeoShardReplica] = []
            for site in placement.sites_for_shard(shard):
                replica = GeoShardReplica(
                    site,
                    shard,
                    self.gateways[site],
                    placement,
                    sim,
                    batching=self.batching,
                )
                self.gateways[site].locals[replica.node_id] = replica
                self.replicas[replica.node_id] = replica
                members.append(replica)
            self.groups[shard] = members
        # Per (source, destination) origin-sequence watermark: what the
        # ship loop believes the destination already holds.  A False
        # ship return leaves the watermark alone, so the whole run is
        # re-shipped next round (idempotent apply makes that safe).
        self._shipped: dict[tuple[str, str], int] = {}
        self.writes_accepted = 0
        self._h_staleness = (
            sim.metrics.histogram("read.staleness_events", scheme="geo")
            if sim.metrics is not None
            else None
        )
        sim.schedule(self.ship_interval, self._ship_round, label="geo-ship")
        if anti_entropy_interval > 0:
            sim.schedule(
                anti_entropy_interval, self._anti_entropy_round, label="geo-gossip"
            )

    # ------------------------------------------------------------------ #
    # Writes: routed to the shard's first live site, acked immediately
    # ------------------------------------------------------------------ #

    def coordinator(self, entity_type: str, entity_key: str) -> GeoShardReplica:
        """The replica that accepts writes for an entity right now: the
        first site on the shard's preference list whose gateway is up.

        Raises:
            ReplicationError: When every hosting site is down.
        """
        shard = self.placement.shard_of(entity_type, entity_key)
        for site in self.placement.sites_for_shard(shard):
            if not self.gateways[site].crashed:
                return self.replicas[f"{site}/s{shard}"]
        raise ReplicationError(
            f"no live site hosts shard {shard} "
            f"(preference {self.placement.sites_for_shard(shard)})"
        )

    def write_insert(
        self, entity_type: str, entity_key: str, fields: dict[str, Any], tx_id: str = ""
    ) -> float:
        """Insert at the shard's coordinator; ack immediate."""
        replica = self.coordinator(entity_type, entity_key)
        replica.store.insert(entity_type, entity_key, fields, tx_id=tx_id)
        self.writes_accepted += 1
        return self.sim.now

    def write_delta(
        self, entity_type: str, entity_key: str, delta: Delta, tx_id: str = ""
    ) -> float:
        """Apply a commutative delta at the coordinator; ack immediate."""
        replica = self.coordinator(entity_type, entity_key)
        replica.store.apply_delta(entity_type, entity_key, delta, tx_id=tx_id)
        self.writes_accepted += 1
        return self.sim.now

    def write_set_fields(
        self, entity_type: str, entity_key: str, fields: dict[str, Any], tx_id: str = ""
    ) -> float:
        """Overwrite fields at the coordinator (LWW across the group)."""
        replica = self.coordinator(entity_type, entity_key)
        replica.store.set_fields(entity_type, entity_key, fields, tx_id=tx_id)
        self.writes_accepted += 1
        return self.sim.now

    # ------------------------------------------------------------------ #
    # Reads: site-local preference, honest delivered-level stamping
    # ------------------------------------------------------------------ #

    def read(
        self,
        entity_type: str,
        entity_key: str,
        *,
        request=None,
        site: Optional[str] = None,
    ):
        """Read an entity from its shard group.

        ``site`` names where the reader sits: among the live hosting
        replicas the site-local one is preferred, then the nearest by
        WAN latency — a cross-DC hop only happens when the local site
        does not host (or has lost) the shard.  ``STRONG`` requests are
        served by the shard's home replica and stamped ``STRONG`` only
        when it has genuinely seen every group write (measured staleness
        zero); anything else is stamped with the replica floor and the
        measured cross-site staleness, which is what the front door's
        bounded rung gates on.

        Without ``request`` the legacy raw-state form serves from the
        first live hosting replica (site preference still applies).

        Raises:
            ConsistencyUnavailable: No live site hosts the shard, or
                ``STRONG`` was required (``allow_degraded=False``) and
                the home site cannot serve it.
        """
        shard = self.placement.shard_of(entity_type, entity_key)
        members = self.groups[shard]
        live = [m for m in members if not self.gateways[m.site].crashed]
        if not live:
            raise ConsistencyUnavailable(
                f"no live site hosts shard {shard} for "
                f"{entity_type}/{entity_key}"
            )
        level = request.level if request is not None else ConsistencyLevel.STRONG
        home = members[0]
        strong_wanted = (
            LEVEL_STRENGTH[level] <= LEVEL_STRENGTH[ConsistencyLevel.STRONG]
        )
        if strong_wanted and home in live:
            serving = home
        else:
            if (
                strong_wanted
                and request is not None
                and not request.allow_degraded
            ):
                raise ConsistencyUnavailable(
                    f"shard {shard} home site {home.site!r} is down and the "
                    "request forbids degradation"
                )
            serving = self._nearest(live, site)
        staleness = 0.0
        for peer in members:
            if peer is not serving:
                staleness = max(staleness, staleness_behind(peer, serving))
        state = serving.store.get(entity_type, entity_key)
        if request is None:
            return state
        if serving is home and staleness == 0.0:
            delivered = level
        else:
            delivered = replica_level(level)
        if self._h_staleness is not None and serving is not home:
            self._h_staleness.record(
                sum(
                    peer.store.count_from_origin(
                        peer.node_id,
                        serving.store.version_vector.get(peer.node_id),
                    )
                    for peer in members
                    if peer is not serving
                )
            )
        return deliver(
            state,
            request,
            delivered,
            staleness=staleness,
            served_by=serving.node_id,
            site=serving.site,
            metrics=self.sim.metrics,
        )

    def _nearest(
        self, live: list[GeoShardReplica], site: Optional[str]
    ) -> GeoShardReplica:
        """Site-local member if there is one, else the live member with
        the lowest WAN latency from ``site`` (preference order breaks
        ties); plain preference order when the reader is siteless."""
        if site is None:
            return live[0]
        best = live[0]
        best_cost = self.topology.latency_between(site, best.site)
        for member in live[1:]:
            cost = self.topology.latency_between(site, member.site)
            if cost < best_cost:
                best, best_cost = member, cost
        return best

    # ------------------------------------------------------------------ #
    # Propagation: per-group shipping + anti-entropy via the gateways
    # ------------------------------------------------------------------ #

    def _ship_round(self) -> None:
        for shard in self.groups:
            members = self.groups[shard]
            for source in members:
                if self.gateways[source.site].crashed:
                    continue
                for destination in members:
                    if destination is source:
                        continue
                    key = (source.node_id, destination.node_id)
                    sent = self._shipped.get(key, 0)
                    backlog = source.store.events_from_origin(
                        source.node_id, sent
                    )
                    if backlog and source.ship_events(
                        destination.node_id, backlog
                    ):
                        self._shipped[key] = backlog[-1].origin_seq
        self.sim.schedule(self.ship_interval, self._ship_round, label="geo-ship")

    def _anti_entropy_round(self) -> None:
        for shard in self.groups:
            members = self.groups[shard]
            for replica in members:
                if self.gateways[replica.site].crashed:
                    continue
                for peer in members:
                    if peer is not replica:
                        replica.probe(peer.node_id)
        self.sim.schedule(
            self.anti_entropy_interval,
            self._anti_entropy_round,
            label="geo-gossip",
        )

    # ------------------------------------------------------------------ #
    # Convergence and lag (tests, soaks, benchmarks)
    # ------------------------------------------------------------------ #

    def replica_list(self) -> list[GeoShardReplica]:
        """All shard replicas, group by group in preference order."""
        return [m for shard in sorted(self.groups) for m in self.groups[shard]]

    def is_converged(self) -> bool:
        """Whether every shard group's members agree (per-group
        convergence is all partial replication can promise — sites do
        not hold shards they were never placed)."""
        return all(converged(members) for members in self.groups.values())

    @property
    def replication_lag_events(self) -> int:
        """Total events some group member has not applied yet, summed
        over all (origin, follower) pairs — the group-wide backlog."""
        lag = 0
        for members in self.groups.values():
            for origin in members:
                for follower in members:
                    if follower is origin:
                        continue
                    applied = follower.store.version_vector.get(origin.node_id)
                    lag += origin.store.count_from_origin(
                        origin.node_id, applied
                    )
        return lag

    def site_replicas(self, site: str) -> list[GeoShardReplica]:
        """The shard replicas hosted at one site, ascending by shard."""
        return [
            self.replicas[f"{site}/s{shard}"]
            for shard in self.placement.shards_of(site)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GeoReplicaGroup({len(self.placement.sites)} sites, "
            f"{self.placement.shards} shards x{self.placement.replicas})"
        )
