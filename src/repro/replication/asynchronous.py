"""Active system with asynchronous commits to a backup.

One of the four replication schemes the paper's section 2 preamble
names.  The primary acknowledges a write as soon as its *local* commit
completes; a shipper forwards the log tail to the backup on an interval.
Users get the fastest possible response time, and the price is a
potential **lost tail** on failover: committed-and-acknowledged
transactions the backup never received (the apology case of
principle 2.9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.lsdb.events import LogEvent
from repro.merge.deltas import Delta
from repro.replication.batching import BatchPolicy
from repro.replication.replica import ReplicaNode
from repro.sim.network import Network
from repro.sim.scheduler import Simulator

#: Shipping cadence used when the caller does not pick one.
DEFAULT_SHIP_INTERVAL = 10.0


def resolve_batching(
    ship_interval: Optional[float],
    batching: Optional[BatchPolicy],
    scheme: str,
) -> tuple[float, BatchPolicy]:
    """Shared constructor shim for the interval-shipping schemes.

    The signature is ``batching=BatchPolicy(...)`` plus an optional
    explicit ``ship_interval``.  The legacy ``ship_interval``-only form
    — deprecated since PR 5 — has completed its cycle and is now an
    error: a shipping cadence without a frame policy raises
    :class:`TypeError` (pass ``batching=BatchPolicy()`` explicitly for
    the unbatched one-event-per-frame wire behaviour).
    """
    if batching is None:
        if ship_interval is not None:
            raise TypeError(
                f"{scheme}(ship_interval=...) without batching= was "
                "deprecated in PR 5 and has been removed; pass "
                "batching=BatchPolicy() for the unbatched "
                "one-event-per-frame wire behaviour, or "
                "BatchPolicy(max_batch=...) to choose a frame size"
            )
        batching = BatchPolicy()
    return (
        DEFAULT_SHIP_INTERVAL if ship_interval is None else ship_interval,
        batching,
    )


@dataclass
class FailoverReport:
    """What a failover cost."""

    at: float
    lost_events: int
    lost_tx_ids: list[str]


class AsyncPrimaryBackup:
    """Primary/backup replication with asynchronous log shipping.

    Args:
        sim: The simulator.
        network: The network both nodes attach to.
        ship_interval: Virtual time between shipping rounds.  Passing
            it *without* ``batching`` is a :class:`TypeError` — a
            cadence needs a frame policy (``BatchPolicy()`` keeps the
            unbatched one-event-per-frame wire behaviour).
        primary_id: Node id of the primary.
        backup_id: Node id of the backup.
        batching: Frame policy for the shipper — a backlog of N events
            ships as ``ceil(N / max_batch)`` wire frames instead of N
            messages.

    Example:
        >>> from repro.replication.batching import BatchPolicy
        >>> sim = Simulator(); net = Network(sim, latency=5.0)
        >>> pair = AsyncPrimaryBackup(
        ...     sim, net, ship_interval=10.0, batching=BatchPolicy(max_batch=64))
        >>> _ = pair.primary.store.insert("order", "o1", {"total": 9})
        >>> _ = sim.run(until=20.0)
        >>> pair.backup.store.get("order", "o1").fields["total"]
        9
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        ship_interval: Optional[float] = None,
        primary_id: str = "primary",
        backup_id: str = "backup",
        *,
        batching: Optional[BatchPolicy] = None,
    ):
        self.sim = sim
        self.network = network
        self.ship_interval, self.batching = resolve_batching(
            ship_interval, batching, "AsyncPrimaryBackup"
        )
        self.primary = ReplicaNode(primary_id, sim, batching=self.batching)
        self.backup = ReplicaNode(backup_id, sim, batching=self.batching)
        network.register(self.primary)
        network.register(self.backup)
        self._shipped_lsn = 0
        self._active = True
        self.failovers: list[FailoverReport] = []
        self._g_lag = (
            sim.metrics.gauge(
                "replication.lag_events", scheme="async", backup=backup_id
            )
            if sim.metrics is not None
            else None
        )
        self._schedule_shipping()

    # ------------------------------------------------------------------ #
    # Client API: writes ack immediately after the local commit
    # ------------------------------------------------------------------ #

    def write_insert(
        self, entity_type: str, entity_key: str, fields: dict[str, Any], tx_id: str = ""
    ) -> float:
        """Insert at the primary; returns the (immediate) ack time."""
        self.primary.store.insert(entity_type, entity_key, fields, tx_id=tx_id)
        return self.sim.now

    def write_delta(
        self, entity_type: str, entity_key: str, delta: Delta, tx_id: str = ""
    ) -> float:
        """Apply a delta at the primary; returns the (immediate) ack time."""
        self.primary.store.apply_delta(entity_type, entity_key, delta, tx_id=tx_id)
        return self.sim.now

    def read(
        self,
        entity_type: str,
        entity_key: str,
        *,
        request=None,
    ):
        """The unified read protocol (see :mod:`repro.core.readpath`).

        A ``STRONG`` request (and the bare legacy call) reads the
        primary, which has every acknowledged write; weaker levels read
        the backup, which lags by up to one shipping interval.  With a
        typed ``request`` the answer is a
        :class:`~repro.core.readpath.ReadResult` whose staleness is the
        age of the oldest primary event the backup has not applied.
        """
        from repro.core.consistency import ConsistencyLevel

        if request is None:
            return self.primary.store.get(entity_type, entity_key)
        from repro.core.readpath import deliver, replica_level
        from repro.replication.replica import staleness_behind

        if request.level is ConsistencyLevel.STRONG:
            return deliver(
                self.primary.store.get(entity_type, entity_key),
                request,
                ConsistencyLevel.STRONG,
                staleness=0.0,
                served_by=self.primary.node_id,
                metrics=self.sim.metrics,
            )
        return deliver(
            self.backup.store.get(entity_type, entity_key),
            request,
            replica_level(request.level),
            staleness=staleness_behind(self.primary, self.backup),
            served_by=self.backup.node_id,
            metrics=self.sim.metrics,
        )

    # ------------------------------------------------------------------ #
    # Shipping loop
    # ------------------------------------------------------------------ #

    def _schedule_shipping(self) -> None:
        self.sim.schedule(self.ship_interval, self._ship_round, label="async-ship")

    def _ship_round(self) -> None:
        if not self._active:
            return
        backlog = self.primary.store.events_since(self._shipped_lsn)
        if backlog and not self.primary.crashed:
            if self.primary.ship_events(self.backup.node_id, backlog):
                # Optimistically advance; a lost batch is repaired by the
                # next round because apply is idempotent — we re-ship the
                # suffix whenever the backup's vector lags.
                self._shipped_lsn = backlog[-1].lsn
        self._reship_if_lagging()
        if self._g_lag is not None:
            self._g_lag.set(self.replication_lag_events)
        self._schedule_shipping()

    def _reship_if_lagging(self) -> None:
        """Probe the backup so it can pull anything a dropped batch left
        behind (anti-entropy over the same event feed)."""
        if not self.primary.crashed:
            self.backup.probe(self.primary.node_id)

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #

    def lost_tail(self) -> list[LogEvent]:
        """Primary events the backup has not applied (what a failover
        right now would lose)."""
        applied = self.backup.store.version_vector.get(self.primary.node_id)
        return self.primary.store.events_from_origin(self.primary.node_id, applied)

    def failover(self) -> FailoverReport:
        """Promote the backup; report the acknowledged-but-lost tail.

        The lost transactions are exactly the ones that will need
        apologies (principle 2.9): the user was told "committed", and
        the surviving replica has no record of it.
        """
        lost = self.lost_tail()
        report = FailoverReport(
            at=self.sim.now,
            lost_events=len(lost),
            lost_tx_ids=sorted({event.tx_id for event in lost if event.tx_id}),
        )
        self.failovers.append(report)
        self.primary.crash()
        self._active = False
        return report

    @property
    def replication_lag_events(self) -> int:
        """Events at the primary not yet applied at the backup.

        Counted via the indexed per-origin feed — no event list is
        materialised, so lag probes are cheap enough to run per tick.
        """
        applied = self.backup.store.version_vector.get(self.primary.node_id)
        return self.primary.store.count_from_origin(self.primary.node_id, applied)
