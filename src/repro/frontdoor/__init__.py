"""The overload front door: admission, backpressure, breakers, and the
degrade ladder (paper sections 2.3/2.9 — serve fast and apologize,
never block, reject last).

Public surface::

    from repro.frontdoor import (
        AdmissionController, TenantQuota, TokenBucket,
        BackpressureMonitor, BackpressureSignal,
        BreakerBoard, BreakerState, CircuitBreaker,
        DegradeLadder, Rung,
        FrontDoor,
    )

Most users get a wired door from
``Cluster.build().with_front_door(...)``; the pieces are public for
hand-assembled ladders (the benchmark builds its own capacity model).
"""

from repro.frontdoor.admission import AdmissionController, TenantQuota, TokenBucket
from repro.frontdoor.backpressure import BackpressureMonitor, BackpressureSignal
from repro.frontdoor.breaker import BreakerBoard, BreakerState, CircuitBreaker
from repro.frontdoor.door import FrontDoor
from repro.frontdoor.ladder import DegradeLadder, Rung

__all__ = [
    "AdmissionController",
    "BackpressureMonitor",
    "BackpressureSignal",
    "BreakerBoard",
    "BreakerState",
    "CircuitBreaker",
    "DegradeLadder",
    "FrontDoor",
    "Rung",
    "TenantQuota",
    "TokenBucket",
]
