"""Circuit breakers around the cluster's physical units.

A breaker guards one physical unit (the master, a slave, the quorum
coordinator).  It composes two views of health:

* the *simulator's failure view* — a ``health`` probe reading live
  state the fault injectors maintain (``node.crashed``, partition
  reachability).  An unhealthy probe fails fast without burning an
  attempt;
* *observed outcomes* — ``record_failure`` / ``record_success`` from
  the front door's serve attempts, tripping the breaker after
  ``failure_threshold`` consecutive failures.

Reset timing reuses :mod:`repro.core.policy`: the open interval is a
:class:`~repro.core.policy.RetryPolicy` delay (growing per consecutive
open, exponential by default) materialised as a
:class:`~repro.core.policy.Deadline`; when it passes, the breaker goes
half-open and one probe request decides closed-vs-open again.  All
timing is virtual, so seeded runs trip and reset identically.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.core.policy import Deadline, RetryPolicy


class BreakerState(enum.Enum):
    """The classic three-state breaker lifecycle."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """One breaker, guarding one physical unit.

    Args:
        name: The guarded unit (metric label).
        clock: Virtual-time source.
        failure_threshold: Consecutive failures that open the breaker.
        reset: Backoff schedule for the open interval — attempt *n* of
            re-closing waits ``reset.delay(n)``.  Default: exponential
            from 20 time units.
        health: Optional probe returning ``True`` while the unit is
            healthy; a ``False`` reading makes :meth:`allow` fail fast
            (the simulator's failure view, e.g. ``lambda: not
            node.crashed``).
        metrics: Optional registry; state changes count into
            ``frontdoor.breaker`` labelled by unit and transition.
    """

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        failure_threshold: int = 3,
        reset: Optional[RetryPolicy] = None,
        health: Optional[Callable[[], bool]] = None,
        metrics=None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset = (
            reset
            if reset is not None
            else RetryPolicy(
                max_attempts=1_000_000, base_delay=20.0, backoff="exponential",
                max_delay=500.0,
            )
        )
        self.health = health
        self.metrics = metrics
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opens = 0
        self._reopen_streak = 0
        self._retry_at = Deadline()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def healthy(self) -> bool:
        """The simulator's live view of the unit (``True`` if no probe)."""
        return self.health() if self.health is not None else True

    def allow(self) -> bool:
        """Whether the front door may attempt this unit right now.

        ``False`` while the unit's health probe reads unhealthy or the
        breaker is open with time left on its reset deadline.  An open
        breaker whose deadline has passed flips to half-open and allows
        exactly the probe attempt.
        """
        if not self.healthy():
            return False
        if self.state is BreakerState.OPEN:
            if self._retry_at.expired(self.clock()):
                self._transition(BreakerState.HALF_OPEN)
                return True
            return False
        return True

    # ------------------------------------------------------------------ #
    # Outcomes
    # ------------------------------------------------------------------ #

    def record_success(self) -> None:
        """A served read: close the breaker and clear the streaks."""
        self.failures = 0
        self._reopen_streak = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """A failed attempt: trip after the threshold (immediately when
        half-open — the probe request failed)."""
        self.failures += 1
        if self.state is BreakerState.HALF_OPEN or (
            self.state is BreakerState.CLOSED
            and self.failures >= self.failure_threshold
        ):
            self._open()

    def _open(self) -> None:
        self._reopen_streak += 1
        self.opens += 1
        delay = self.reset.delay(self._reopen_streak)
        self._retry_at = Deadline(at=self.clock() + delay)
        self._transition(BreakerState.OPEN)

    def _transition(self, state: BreakerState) -> None:
        self.state = state
        if self.metrics is not None:
            self.metrics.counter(
                "frontdoor.breaker", unit=self.name, to=state.value
            ).inc()


class BreakerBoard:
    """The front door's breakers, one per physical unit."""

    def __init__(self, clock: Callable[[], float], metrics=None, **defaults):
        self.clock = clock
        self.metrics = metrics
        self.defaults = defaults
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(
        self, name: str, health: Optional[Callable[[], bool]] = None
    ) -> CircuitBreaker:
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                name,
                self.clock,
                health=health,
                metrics=self.metrics,
                **self.defaults,
            )
            self._breakers[name] = breaker
        return breaker

    def states(self) -> dict[str, str]:
        """Unit name to breaker state (for reports and tests)."""
        return {
            name: breaker.state.value
            for name, breaker in sorted(self._breakers.items())
        }
