"""Backpressure signals: live overload indicators the system already has.

The simulator and the replication schemes expose the three signals the
ROADMAP names, and this module merely reads them:

* **event-loop queue depth** — ``sim.pending``, the O(1) live-event
  count of the scheduler's heap;
* **replication lag** — per-scheme backlog gauges
  (``AsyncPrimaryBackup.replication_lag_events``,
  ``MasterSlaveGroup.slave_lag_events``, ``WarehouseExtract.lag_events``);
* **rebalance in progress** — the cluster's
  :class:`~repro.partition.rebalance.Rebalancer` mid-run.

A :class:`BackpressureMonitor` holds named :class:`BackpressureSignal`
probes; the front door consults :meth:`BackpressureMonitor.tripped`
before serving the strong rung and degrades when any signal is over its
limit.  Probes are pure reads of simulator state, so the monitor adds
no events and cannot perturb determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass
class BackpressureSignal:
    """One named overload probe with its trip limit."""

    name: str
    probe: Callable[[], float]
    limit: float

    def reading(self) -> float:
        return float(self.probe())

    def tripped(self) -> bool:
        return self.reading() > self.limit


class BackpressureMonitor:
    """A set of overload signals consulted per read.

    Args:
        metrics: Optional registry; every trip counts into
            ``frontdoor.backpressure`` labelled by signal name.
    """

    def __init__(self, metrics=None):
        self.signals: list[BackpressureSignal] = []
        self.metrics = metrics

    def add(
        self, name: str, probe: Callable[[], float], limit: float
    ) -> "BackpressureMonitor":
        """Register a signal; returns self for chaining."""
        self.signals.append(BackpressureSignal(name, probe, limit))
        return self

    def tripped(self) -> list[str]:
        """Names of every signal currently over its limit."""
        over: list[str] = []
        for signal in self.signals:
            if signal.tripped():
                over.append(signal.name)
                if self.metrics is not None:
                    self.metrics.counter(
                        "frontdoor.backpressure", signal=signal.name
                    ).inc()
        return over

    def readings(self) -> dict[str, float]:
        """Current value of every signal (for reports and tests)."""
        return {signal.name: signal.reading() for signal in self.signals}
