"""The front door: admission, backpressure, breakers, and the ladder.

One object in front of the cluster's read surfaces that embodies the
paper's overload posture: **admit what fits, degrade what doesn't,
reject only when even the weakest rung refuses** — and stamp every
response with the truth (delivered level, measured staleness, apology
token when the answer is weaker than asked).

The flow of :meth:`FrontDoor.read`:

1. expired deadline → reject (``deadline``) — serving a dead request
   is work the requester will never see;
2. admission — charge the tenant's token bucket the cheapest eligible
   rung's cost; a throttled tenant is rejected (``quota``) before any
   replica is touched;
3. walk the :class:`~repro.frontdoor.ladder.DegradeLadder` from the
   requested level down: skip rungs whose breaker is open or whose
   capacity bucket is dry; when backpressure has tripped, skip the
   strong rung outright (shedding by downgrade, the headline valve);
4. the first rung that serves wins; a degraded serve records an
   apology token on the result (and in the ledger, when one is wired);
5. nothing served → reject (``saturated``).

Everything is counted in ``frontdoor.*`` metrics and optionally traced
as ``frontdoor.read`` spans.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.consistency import ConsistencyLevel
from repro.core.readpath import ReadRequest, ReadResult
from repro.frontdoor.admission import AdmissionController, TenantQuota, TokenBucket
from repro.frontdoor.backpressure import BackpressureMonitor
from repro.frontdoor.breaker import BreakerBoard
from repro.frontdoor.ladder import DegradeLadder, Rung


class FrontDoor:
    """Admission-controlled, degrading read path over a ladder.

    Args:
        sim: The simulator (clock + metrics + tracer source).
        ladder: The :class:`DegradeLadder` to serve from.
        admission: Per-tenant admission control; default admits all.
        backpressure: Overload monitor; default has no signals.
        apologies: Optional
            :class:`~repro.core.compensation.ApologyLedger`; every
            degraded serve records an apology ("served you stale data,
            here is how stale") and the token rides on the result.
    """

    def __init__(
        self,
        sim,
        ladder: DegradeLadder,
        admission: Optional[AdmissionController] = None,
        backpressure: Optional[BackpressureMonitor] = None,
        apologies=None,
    ):
        self.sim = sim
        self.ladder = ladder
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(lambda: sim.now, metrics=sim.metrics)
        )
        self.backpressure = (
            backpressure
            if backpressure is not None
            else BackpressureMonitor(metrics=sim.metrics)
        )
        self.apologies = apologies
        self.metrics = sim.metrics
        self.tracer = sim.tracer
        self.reads = 0
        self.rejects = 0
        self.degraded_serves = 0

    # ------------------------------------------------------------------ #
    # The read path
    # ------------------------------------------------------------------ #

    def read(
        self,
        entity_type: str,
        entity_key: str,
        *,
        request: Optional[ReadRequest] = None,
    ) -> ReadResult:
        """Serve one read through the valve chain; always returns a
        :class:`ReadResult` (rejections come back with
        ``rejected=True`` and a reason, never as exceptions)."""
        if request is None:
            request = ReadRequest()
        self.reads += 1
        span = (
            self.tracer.start_span(
                "frontdoor.read",
                entity=f"{entity_type}/{entity_key}",
                level=request.level.value,
                tenant=request.tenant or "default",
            )
            if self.tracer is not None
            else None
        )
        result = self._serve(entity_type, entity_key, request)
        if span is not None:
            status = "rejected" if result.rejected else (
                "degraded" if result.degraded else "served"
            )
            self.tracer.end_span(span, status=status)
        return result

    def _serve(
        self, entity_type: str, entity_key: str, request: ReadRequest
    ) -> ReadResult:
        now = self.sim.now
        if request.deadline is not None and request.deadline.expired(now):
            return self._reject(request, "deadline")

        candidates = self.ladder.candidates(request)
        if not candidates:
            return self._reject(request, "no_rung")

        # Admission charges the *cheapest* eligible rung: a tenant out
        # of strong-read budget can still afford the degraded rungs, so
        # quota pressure pushes traffic down the ladder before it ever
        # rejects.
        cost = min(rung.cost for rung in candidates)
        if not self.admission.try_admit(request.tenant, cost):
            return self._reject(request, "quota")

        overloaded = self.backpressure.tripped()
        for rung in candidates:
            if (
                overloaded
                and rung.level is ConsistencyLevel.STRONG
                and len(candidates) > 1
            ):
                # Backpressure sheds the strong rung (when a weaker one
                # exists to shed onto); the breakers and capacity
                # buckets below handle the rest.
                self._count("frontdoor.shed", reason=overloaded[0])
                continue
            if rung.breaker is not None and not rung.breaker.allow():
                continue
            result = rung.serve(entity_type, entity_key, request)
            if result is None:
                continue
            self._count("frontdoor.served", level=rung.level.value)
            if self.metrics is not None and result.staleness is not None:
                self.metrics.histogram(
                    "frontdoor.staleness", level=rung.level.value
                ).record(result.staleness)
            if result.degraded:
                self.degraded_serves += 1
                self._count(
                    "frontdoor.degraded",
                    requested=request.level.value,
                    delivered=rung.level.value,
                )
                result.apology = self._apologize(
                    entity_type, entity_key, request, result
                )
            return result
        return self._reject(request, "saturated")

    # ------------------------------------------------------------------ #
    # Outcomes
    # ------------------------------------------------------------------ #

    def _reject(self, request: ReadRequest, reason: str) -> ReadResult:
        self.rejects += 1
        self._count("frontdoor.rejected", reason=reason)
        result = ReadResult(
            None,
            requested_level=request.level,
            delivered_level=None,
            staleness=None,
            rejected=True,
            reject_reason=reason,
        )
        result.apology = self._apologize_reject(request, reason)
        return result

    def _apologize(
        self,
        entity_type: str,
        entity_key: str,
        request: ReadRequest,
        result: ReadResult,
    ) -> Any:
        """The apology-token hook: a degraded serve owes the caller an
        explanation (paper section 3.2 — apologies must be
        comprehensible)."""
        delivered = (
            result.delivered_level.value if result.delivered_level else "none"
        )
        if self.apologies is not None:
            return self.apologies.record(
                to_party=request.tenant or "default",
                reason="degraded_read",
                at=self.sim.now,
                related_op=f"read {entity_type}/{entity_key}",
                compensation=(
                    f"served {delivered} (staleness {result.staleness}) "
                    f"instead of {request.level.value}"
                ),
            )
        return {
            "reason": "degraded_read",
            "requested": request.level.value,
            "delivered": delivered,
            "staleness": result.staleness,
        }

    def _apologize_reject(self, request: ReadRequest, reason: str) -> Any:
        if self.apologies is not None:
            return self.apologies.record(
                to_party=request.tenant or "default",
                reason=f"rejected_{reason}",
                at=self.sim.now,
                compensation="retry later",
            )
        return {"reason": f"rejected_{reason}"}

    def _count(self, name: str, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc()

    # ------------------------------------------------------------------ #
    # Construction over a cluster
    # ------------------------------------------------------------------ #

    @classmethod
    def for_cluster(
        cls,
        cluster,
        *,
        quotas: Optional[dict[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        bounded_staleness: Optional[float] = None,
        queue_depth_limit: Optional[float] = None,
        lag_limit_events: Optional[float] = None,
        strong_capacity: Optional[float] = None,
        bounded_capacity: Optional[float] = None,
        breaker_threshold: int = 3,
        breaker_reset=None,
        apologies=None,
        site: Optional[str] = None,
    ) -> "FrontDoor":
        """Wire a door over whatever the cluster was built with.

        Rungs are assembled from the cluster's surfaces:

        * **STRONG** — the replication scheme's strong read (master /
          primary / quorum), breaker on the primary node's live crash
          state, optional capacity bucket (``strong_capacity`` reads
          per unit time);
        * **BOUNDED_STALENESS** — the scheme's replica read, present
          when the scheme has a second copy; refuses above
          ``bounded_staleness`` (default: twice the scheme's shipping
          interval when it has one, else 100 time units);
        * **EVENTUAL** — the cheapest copy that never says no: the
          warehouse extract when one was built, else the primary
          store's latest rollup checkpoint, else the store itself.

        On a geo-replicated cluster the door is additionally *sited*:
        ``site`` names the datacenter this door fronts, and every rung
        prefers a site-local replica before crossing the WAN — the
        strong rung refuses (walking the ladder) rather than lie when
        a true strong read is unreachable, the bounded rung serves the
        nearest hosting replica with its measured cross-DC staleness
        against the declared bound.

        Backpressure signals are registered for ``queue_depth_limit``
        (over ``sim.pending``), ``lag_limit_events`` (over the scheme's
        replication-lag view) and — when the cluster has a rebalancer —
        rebalance-in-progress.
        """
        sim = cluster.sim
        scheme = cluster.replication
        store = cluster.store
        if scheme is None and store is None:
            raise ValueError("front door needs a readable surface")
        clock = lambda: sim.now
        board = BreakerBoard(
            clock,
            metrics=sim.metrics,
            failure_threshold=breaker_threshold,
            reset=breaker_reset,
        )
        if _is_geo(scheme):
            rungs = _geo_rungs(
                scheme,
                site,
                clock=clock,
                board=board,
                bounded_staleness=bounded_staleness,
                strong_capacity=strong_capacity,
                bounded_capacity=bounded_capacity,
            )
        else:
            rungs = _flat_rungs(
                cluster,
                scheme,
                store,
                clock=clock,
                board=board,
                bounded_staleness=bounded_staleness,
                strong_capacity=strong_capacity,
                bounded_capacity=bounded_capacity,
            )

        monitor = BackpressureMonitor(metrics=sim.metrics)
        if queue_depth_limit is not None:
            monitor.add(
                "queue_depth", lambda: float(sim.pending), queue_depth_limit
            )
        if lag_limit_events is not None:
            lag_probe = _lag_probe_for(scheme)
            if lag_probe is not None:
                monitor.add("replication_lag", lag_probe, lag_limit_events)
        rebalancer = getattr(cluster, "rebalancer", None)
        if rebalancer is not None:
            monitor.add(
                "rebalance",
                lambda: 1.0 if _rebalance_in_progress(cluster) else 0.0,
                0.5,
            )

        admission = AdmissionController(
            clock,
            default_quota=default_quota,
            quotas=quotas,
            metrics=sim.metrics,
        )
        if apologies is None:
            apologies = getattr(
                getattr(cluster, "compensation", None), "apologies", None
            )
        return cls(
            sim,
            DegradeLadder(rungs),
            admission=admission,
            backpressure=monitor,
            apologies=apologies,
        )


# ---------------------------------------------------------------------- #
# Rung assembly
# ---------------------------------------------------------------------- #


def _is_geo(scheme) -> bool:
    """Whether the scheme is a geo-replicated group (site placement plus
    per-site WAN gateways)."""
    return (
        getattr(scheme, "placement", None) is not None
        and hasattr(scheme, "gateways")
    )


def _flat_rungs(
    cluster,
    scheme,
    store,
    *,
    clock,
    board,
    bounded_staleness,
    strong_capacity,
    bounded_capacity,
) -> list:
    """The single-datacenter ladder: master/primary/quorum strong rung,
    backup/slave bounded rung, warehouse/checkpoint/store eventual rung."""
    rungs: list[Rung] = []

    primary_node = (
        getattr(scheme, "primary", None)
        or getattr(scheme, "master", None)
        or getattr(scheme, "coordinator", None)
    )
    strong_surface = scheme if scheme is not None else store

    def strong_reader(entity_type, entity_key, request):
        result = strong_surface.read(
            entity_type,
            entity_key,
            request=ReadRequest(
                level=ConsistencyLevel.STRONG,
                max_staleness=request.max_staleness,
                tenant=request.tenant,
            ),
        )
        return ReadResult(
            result.unwrap() if isinstance(result, ReadResult) else result,
            requested_level=request.level,
            delivered_level=ConsistencyLevel.STRONG,
            staleness=result.staleness if isinstance(result, ReadResult) else 0.0,
            served_by=result.served_by if isinstance(result, ReadResult) else "",
        )

    strong_health = None
    if primary_node is not None:
        strong_health = lambda: not getattr(primary_node, "crashed", False)
    rungs.append(
        Rung(
            level=ConsistencyLevel.STRONG,
            reader=strong_reader,
            cost=4.0,
            capacity=(
                TokenBucket(strong_capacity, strong_capacity, clock)
                if strong_capacity is not None
                else None
            ),
            breaker=board.get("strong", health=strong_health),
        )
    )

    replica_surface = scheme if _has_replica_copy(scheme) else None
    if replica_surface is not None:
        if bounded_staleness is None:
            ship = getattr(scheme, "ship_interval", None)
            bounded_staleness = 2.0 * ship if ship else 100.0

        def bounded_reader(entity_type, entity_key, request):
            result = replica_surface.read(
                entity_type,
                entity_key,
                request=ReadRequest(
                    level=ConsistencyLevel.BOUNDED_STALENESS,
                    max_staleness=request.max_staleness,
                    tenant=request.tenant,
                ),
            )
            return ReadResult(
                result.unwrap(),
                requested_level=request.level,
                delivered_level=ConsistencyLevel.BOUNDED_STALENESS,
                staleness=result.staleness,
                degraded=request.level is ConsistencyLevel.STRONG,
                served_by=result.served_by,
            )

        backup_node = _replica_node_of(scheme)
        bounded_health = None
        if backup_node is not None:
            bounded_health = (
                lambda: not getattr(backup_node, "crashed", False)
            )
        rungs.append(
            Rung(
                level=ConsistencyLevel.BOUNDED_STALENESS,
                reader=bounded_reader,
                cost=2.0,
                capacity=(
                    TokenBucket(bounded_capacity, bounded_capacity, clock)
                    if bounded_capacity is not None
                    else None
                ),
                breaker=board.get("bounded", health=bounded_health),
                declared_bound=bounded_staleness,
            )
        )

    eventual_reader = _eventual_reader_for(cluster)
    rungs.append(
        Rung(
            level=ConsistencyLevel.EVENTUAL,
            reader=eventual_reader,
            cost=1.0,
        )
    )
    return rungs


def _geo_rungs(
    scheme,
    site,
    *,
    clock,
    board,
    bounded_staleness,
    strong_capacity,
    bounded_capacity,
) -> list:
    """The sited ladder over a geo group.

    Every rung delegates to the group's placement-aware read with the
    door's home ``site``, so site-local replicas answer before any WAN
    hop.  The strong rung forbids degradation — when the shard's home
    replica is down or lagging, the group raises and the rung refuses,
    which is exactly how the walk reaches the bounded rung instead of
    serving a strong lie.  The scheme's own honest stamp (delivered
    level, measured cross-DC staleness, serving site) is re-anchored to
    the outer request so degradation accounting stays truthful.
    """
    from repro.core.readpath import is_weaker

    def sited_reader(level, allow_degraded):
        def reader(entity_type, entity_key, request):
            result = scheme.read(
                entity_type,
                entity_key,
                request=ReadRequest(
                    level=level,
                    max_staleness=request.max_staleness,
                    tenant=request.tenant,
                    allow_degraded=allow_degraded,
                ),
                site=site,
            )
            delivered = result.delivered_level
            return ReadResult(
                result.unwrap(),
                requested_level=request.level,
                delivered_level=delivered,
                staleness=result.staleness,
                degraded=is_weaker(delivered, request.level),
                served_by=result.served_by,
                site=result.site,
            )

        return reader

    def any_gateway_up():
        return any(not gw.crashed for gw in scheme.gateways.values())

    if bounded_staleness is None:
        bounded_staleness = 2.0 * scheme.ship_interval

    return [
        Rung(
            level=ConsistencyLevel.STRONG,
            reader=sited_reader(ConsistencyLevel.STRONG, False),
            cost=4.0,
            capacity=(
                TokenBucket(strong_capacity, strong_capacity, clock)
                if strong_capacity is not None
                else None
            ),
            breaker=board.get("strong", health=any_gateway_up),
        ),
        Rung(
            level=ConsistencyLevel.BOUNDED_STALENESS,
            reader=sited_reader(ConsistencyLevel.BOUNDED_STALENESS, True),
            cost=2.0,
            capacity=(
                TokenBucket(bounded_capacity, bounded_capacity, clock)
                if bounded_capacity is not None
                else None
            ),
            breaker=board.get("bounded", health=any_gateway_up),
            declared_bound=bounded_staleness,
        ),
        Rung(
            level=ConsistencyLevel.EVENTUAL,
            reader=sited_reader(ConsistencyLevel.EVENTUAL, True),
            cost=1.0,
        ),
    ]


# ---------------------------------------------------------------------- #
# Cluster introspection helpers
# ---------------------------------------------------------------------- #


def _has_replica_copy(scheme) -> bool:
    """Whether the scheme has a weaker second copy worth a rung."""
    if scheme is None:
        return False
    return any(
        getattr(scheme, attr, None) is not None
        for attr in ("backup", "slaves", "replicas")
    )


def _replica_node_of(scheme):
    backup = getattr(scheme, "backup", None)
    if backup is not None:
        return backup
    slaves = getattr(scheme, "slaves", None)
    if slaves:
        return next(iter(slaves.values()))
    return None


def _lag_probe_for(scheme):
    if scheme is None:
        return None
    if hasattr(scheme, "replication_lag_events"):
        return lambda: float(scheme.replication_lag_events)
    slaves = getattr(scheme, "slaves", None)
    if slaves:
        return lambda: float(
            max(scheme.slave_lag_events(slave_id) for slave_id in scheme.slaves)
        )
    return None


def _rebalance_in_progress(cluster) -> bool:
    runs = getattr(cluster.rebalancer, "runs", None)
    if not runs:
        return False
    return any(not getattr(run, "done", True) for run in runs)


def _eventual_reader_for(cluster):
    """The bottom rung: the cheapest copy that always answers.

    Preference order: the warehouse extract (already a read model),
    else the primary store's latest rollup checkpoint (a frozen
    snapshot — zero marginal load on the serving path), else the store
    itself.
    """
    sim = cluster.sim
    warehouse = getattr(cluster, "warehouse", None)
    store = cluster.store

    def reader(entity_type, entity_key, request):
        snapshot_request = ReadRequest(
            level=ConsistencyLevel.EVENTUAL, tenant=request.tenant
        )
        if warehouse is not None and warehouse.extracted_at >= 0:
            result = warehouse.read(
                entity_type, entity_key, request=snapshot_request
            )
            return ReadResult(
                result.unwrap(),
                requested_level=request.level,
                delivered_level=ConsistencyLevel.EVENTUAL,
                staleness=result.staleness,
                degraded=request.level is not ConsistencyLevel.EVENTUAL
                and request.level is not ConsistencyLevel.EXTRACT,
                served_by="warehouse",
            )
        checkpoint = None
        manager = getattr(store, "checkpoints", None)
        if manager is not None:
            checkpoint = manager.latest()
        if checkpoint is not None:
            state = checkpoint.states.get((entity_type, entity_key))
            return ReadResult(
                state,
                requested_level=request.level,
                delivered_level=ConsistencyLevel.EVENTUAL,
                staleness=max(0.0, sim.now - checkpoint.taken_at),
                degraded=request.level is not ConsistencyLevel.EVENTUAL,
                served_by="checkpoint",
            )
        result = store.read(entity_type, entity_key, request=snapshot_request)
        return ReadResult(
            result.unwrap(),
            requested_level=request.level,
            delivered_level=ConsistencyLevel.EVENTUAL,
            staleness=result.staleness,
            degraded=request.level is not ConsistencyLevel.EVENTUAL,
            served_by=result.served_by,
        )

    return reader
