"""Per-tenant admission control: token buckets and quotas.

The front door's first valve (paper section 2.9's "serve fast" only
works if one tenant cannot monopolise the capacity everyone shares).
Each tenant gets a :class:`TokenBucket` refilled on *virtual* time —
the simulator's clock, never the wall clock — so seeded runs admit and
throttle byte-identically.

Admission is level-aware: a degraded read is cheaper than a strong one
(it lands on a replica or a snapshot, not the master), so the
:class:`AdmissionController` charges per-level costs.  Under overload a
tenant whose strong-read budget is gone can still afford the degraded
rungs — admission itself pushes traffic down the
:class:`~repro.frontdoor.ladder.DegradeLadder` before anything is
rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission budget.

    Args:
        rate: Tokens refilled per unit of virtual time
            (``float("inf")`` = unmetered).
        burst: Bucket capacity — the largest same-instant burst the
            tenant may spend.
    """

    rate: float = float("inf")
    burst: float = float("inf")


class TokenBucket:
    """A deterministic token bucket on the simulator clock.

    Tokens refill lazily at :attr:`rate` per unit of virtual time, up
    to :attr:`burst`.  All arithmetic is pure float math over ``clock()``
    readings, so two seeded runs make identical admit/deny decisions.
    """

    def __init__(self, rate: float, burst: float, clock: Callable[[], float]):
        if rate < 0 or burst < 0:
            raise ValueError("rate and burst must be non-negative")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.tokens = burst
        self._last = clock()

    def _refill(self) -> None:
        now = self.clock()
        if now > self._last:
            if self.rate == float("inf"):
                self.tokens = self.burst
            else:
                self.tokens = min(
                    self.burst, self.tokens + (now - self._last) * self.rate
                )
            self._last = now

    def try_take(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; ``False`` means throttled."""
        self._refill()
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False

    @property
    def available(self) -> float:
        """Tokens currently spendable (after a lazy refill)."""
        self._refill()
        return self.tokens


class AdmissionController:
    """Per-tenant rate limiting with per-level read costs.

    Args:
        clock: Virtual-time source (``lambda: sim.now``).
        default_quota: Quota for tenants with no explicit entry; the
            default is unmetered, so a door with no quotas configured
            admits everything.
        quotas: Explicit per-tenant quotas.
        metrics: Optional registry; admits/throttles count into
            ``frontdoor.admitted`` / ``frontdoor.throttled`` labelled
            by tenant.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[dict[str, TenantQuota]] = None,
        metrics=None,
    ):
        self.clock = clock
        self.default_quota = (
            default_quota if default_quota is not None else TenantQuota()
        )
        self.quotas = dict(quotas or {})
        self.metrics = metrics
        self._buckets: dict[str, TokenBucket] = {}

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Install (or replace) one tenant's quota."""
        self.quotas[tenant] = quota
        self._buckets.pop(tenant, None)

    def bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self.quotas.get(tenant, self.default_quota)
            bucket = TokenBucket(quota.rate, quota.burst, self.clock)
            self._buckets[tenant] = bucket
        return bucket

    def try_admit(self, tenant: str, cost: float = 1.0) -> bool:
        """Charge ``cost`` tokens against ``tenant``'s bucket."""
        admitted = self.bucket_for(tenant).try_take(cost)
        if self.metrics is not None:
            name = "frontdoor.admitted" if admitted else "frontdoor.throttled"
            self.metrics.counter(name, tenant=tenant or "default").inc()
        return admitted
