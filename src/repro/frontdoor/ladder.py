"""The degrade ladder: consistency downgrade as the shedding valve.

The paper's answer to overload is not a queue and not a rejection — it
is a weaker read served *now* with an honest stamp (sections 2.3/2.9:
"serve fast and apologize" beats blocking; Meiklejohn's *Certain
Tendency* argues single-system-image semantics are the wrong default
for exactly this case).  The ladder encodes that as an ordered list of
:class:`Rung` s, strongest first::

    STRONG            master / quorum read        staleness 0
    BOUNDED_STALENESS slave / backup read         staleness <= declared bound
    EVENTUAL          checkpoint snapshot read    staleness measured, unbounded

Each rung owns a reader closure, an optional service-capacity
:class:`~repro.frontdoor.admission.TokenBucket` (the rung's throughput
model), an optional circuit breaker, and — for the bounded rung — a
*declared* staleness bound the rung refuses to exceed: a slave that has
fallen further behind than its declaration passes the read down the
ladder rather than serve a lie.  The front door walks rungs from the
requested level toward the bottom and rejects only when every rung
refuses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.consistency import ConsistencyLevel
from repro.core.readpath import LEVEL_STRENGTH, ReadRequest, ReadResult
from repro.frontdoor.admission import TokenBucket
from repro.frontdoor.breaker import CircuitBreaker


@dataclass
class Rung:
    """One step of the ladder.

    Args:
        level: The consistency level this rung delivers.
        reader: ``(entity_type, entity_key, request) -> ReadResult``
            closure serving at this level.
        cost: Admission tokens a read on this rung charges the tenant
            (strong reads cost more than snapshot reads).
        capacity: Optional service-capacity bucket — the rung's
            throughput model; an empty bucket means "this rung is
            saturated, try a weaker one".
        breaker: Optional circuit breaker around the rung's physical
            unit.
        declared_bound: For the bounded rung: the staleness this rung
            promises.  A measured staleness above it makes the rung
            refuse (:meth:`serve` returns ``None``) instead of serving
            beyond its declaration.
    """

    level: ConsistencyLevel
    reader: Callable[[str, str, ReadRequest], ReadResult]
    cost: float = 1.0
    capacity: Optional[TokenBucket] = None
    breaker: Optional[CircuitBreaker] = None
    declared_bound: Optional[float] = None
    #: Serves refused because the measured staleness broke the declared
    #: bound (visible to tests and reports).
    bound_refusals: int = field(default=0, compare=False)

    def available(self) -> bool:
        """Breaker and capacity both willing (does not spend tokens)."""
        if self.breaker is not None and not self.breaker.allow():
            return False
        if self.capacity is not None and self.capacity.available < 1.0:
            return False
        return True

    def serve(
        self, entity_type: str, entity_key: str, request: ReadRequest
    ) -> Optional[ReadResult]:
        """Attempt the read at this rung.

        Returns ``None`` when the rung refuses (capacity empty, reader
        raised, or the measured staleness exceeds the declared bound);
        the caller then falls through to the next rung.
        """
        if self.capacity is not None and not self.capacity.try_take(1.0):
            return None
        try:
            result = self.reader(entity_type, entity_key, request)
        except Exception:
            if self.breaker is not None:
                self.breaker.record_failure()
            return None
        if (
            self.declared_bound is not None
            and result.staleness is not None
            and result.staleness > self.declared_bound
        ):
            # Serving would exceed what this rung declares; refuse and
            # let a rung with no bound (or a wider one) answer.
            self.bound_refusals += 1
            return None
        if self.breaker is not None:
            self.breaker.record_success()
        return result


class DegradeLadder:
    """Ordered rungs, strongest first."""

    def __init__(self, rungs: list[Rung]):
        if not rungs:
            raise ValueError("a ladder needs at least one rung")
        order = [LEVEL_STRENGTH[rung.level] for rung in rungs]
        if order != sorted(order):
            raise ValueError("rungs must be ordered strongest to weakest")
        self.rungs = list(rungs)

    def candidates(self, request: ReadRequest) -> list[Rung]:
        """Rungs eligible for ``request``: the requested level's rung
        first, then — when degradation is allowed — every weaker rung.
        Rungs *stronger* than the request are never used: a caller who
        asked for an eventual read must not be billed a master read.
        """
        wanted = LEVEL_STRENGTH[request.level]
        eligible = [
            rung for rung in self.rungs if LEVEL_STRENGTH[rung.level] >= wanted
        ]
        if not request.allow_degraded:
            return [
                rung for rung in eligible if LEVEL_STRENGTH[rung.level] == wanted
            ]
        if not eligible:
            # A request weaker than the weakest rung (e.g. EXTRACT on a
            # ladder that bottoms out at EVENTUAL) gets the bottom rung:
            # serving slightly stronger than asked is never a downgrade.
            return [self.rungs[-1]]
        return eligible

    def rung_for(self, level: ConsistencyLevel) -> Optional[Rung]:
        for rung in self.rungs:
            if rung.level is level:
                return rung
        return None

    def describe(self) -> list[dict[str, Any]]:
        """One dict per rung, for reports."""
        return [
            {
                "level": rung.level.value,
                "cost": rung.cost,
                "declared_bound": rung.declared_bound,
                "breaker": rung.breaker.state.value if rung.breaker else None,
            }
            for rung in self.rungs
        ]
