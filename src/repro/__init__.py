"""repro — a reproduction of *Principles for Inconsistency* (CIDR 2009).

Finkelstein, Brendle and Jacobs argued that inconsistency, managed in
principled ways, is often the right engineering choice for scalable
business systems.  This library builds the system their paper envisions:

* a **log-structured database** whose current state is a rollup
  aggregation of an insert-only event log (:mod:`repro.lsdb`);
* **convergent merge types and commutative deltas** so concurrent work
  composes (:mod:`repro.merge`);
* **solipsistic transactions** with deferred secondary updates under
  logical locks — the SAP transaction model (:mod:`repro.core.transaction`);
* a **SOUPS process engine** — one transaction, one entity per step,
  steps connected by reliable events (:mod:`repro.core.process`,
  :mod:`repro.queues`);
* **constraints as managed exceptions**, **tentative operations and
  apologies**, and a **single end-to-end conflict mechanism**
  (:mod:`repro.core`);
* the full **replication spectrum** — async/sync backup, active/active
  with anti-entropy, quorum, master/slave, warehouse extract
  (:mod:`repro.replication`);
* everything running on a deterministic **discrete-event simulator**
  (:mod:`repro.sim`).

Quickstart::

    from repro import Simulator, LSDBStore, TransactionManager, Delta

    sim = Simulator()
    store = LSDBStore(origin="r1", clock=lambda: sim.now)
    txm = TransactionManager(store, sim=sim)
    tx = txm.begin()
    tx.insert("account", "a1", {"owner": "ada", "balance": 0})
    tx.apply_delta("account", "a1", Delta.add("balance", 100))
    receipt = tx.commit()

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
experiment suite (DESIGN.md maps each experiment to the paper claim it
reproduces).
"""

from repro.chaos import ChaosEngine, ChaosProfile, SoakConfig, run_soak
from repro.core import (
    Apology,
    ApologyLedger,
    CCMode,
    CandidateWrite,
    CommitReceipt,
    CompensationManager,
    ConflictResolver,
    ConsistencyLevel,
    ConsistencyPolicy,
    ConsistencyUnavailable,
    ConstraintManager,
    ConstraintMode,
    Deadline,
    EntityCatalog,
    EntityType,
    FieldSpec,
    JoinContext,
    NonNegativeConstraint,
    PRINCIPLES,
    PolicyRouter,
    PredicateConstraint,
    Principle,
    ProcessEngine,
    ProcessStep,
    ReadRequest,
    ReadResult,
    ReferentialConstraint,
    RetryBudget,
    RetryPolicy,
    SchemeBinding,
    StepContext,
    Strategy,
    TentativeOperation,
    TimeoutPolicy,
    Transaction,
    TransactionManager,
    UpdateMode,
    Violation,
    get_principle,
)
from repro.errors import DeadlineExceeded, RetryExhausted
from repro.frontdoor import DegradeLadder, FrontDoor, TenantQuota
from repro.lsdb import EventKind, LSDBStore, LogEvent
from repro.merge import (
    Delta,
    GCounter,
    LWWRegister,
    MVRegister,
    ORSet,
    PNCounter,
    VectorClock,
    VersionVector,
)
from repro.cluster import Cluster, ClusterBuilder
from repro.obs import MetricsRegistry, MetricsReport, Tracer
from repro.partition import (
    ConsistentHashRing,
    RebalancePlanner,
    Rebalancer,
    SerializationUnit,
)
from repro.queues import IdempotentReceiver, Message, ReliableQueue
from repro.sim import FailureInjector, Network, Node, Simulator

__version__ = "1.0.0"

__all__ = [
    "Apology",
    "ApologyLedger",
    "CCMode",
    "CandidateWrite",
    "CommitReceipt",
    "CompensationManager",
    "ConflictResolver",
    "ConsistencyLevel",
    "ConsistencyPolicy",
    "ConsistencyUnavailable",
    "ConstraintManager",
    "ConstraintMode",
    "EntityCatalog",
    "EntityType",
    "FieldSpec",
    "JoinContext",
    "NonNegativeConstraint",
    "PRINCIPLES",
    "PolicyRouter",
    "PredicateConstraint",
    "Principle",
    "ProcessEngine",
    "ProcessStep",
    "ReadRequest",
    "ReadResult",
    "ReferentialConstraint",
    "SchemeBinding",
    "StepContext",
    "Strategy",
    "TentativeOperation",
    "Transaction",
    "TransactionManager",
    "UpdateMode",
    "Violation",
    "get_principle",
    "EventKind",
    "LSDBStore",
    "LogEvent",
    "Delta",
    "GCounter",
    "LWWRegister",
    "MVRegister",
    "ORSet",
    "PNCounter",
    "VectorClock",
    "VersionVector",
    "Cluster",
    "ClusterBuilder",
    "ConsistentHashRing",
    "RebalancePlanner",
    "Rebalancer",
    "SerializationUnit",
    "MetricsRegistry",
    "MetricsReport",
    "Tracer",
    "IdempotentReceiver",
    "Message",
    "ReliableQueue",
    "FailureInjector",
    "Network",
    "Node",
    "Simulator",
    "ChaosEngine",
    "ChaosProfile",
    "SoakConfig",
    "run_soak",
    "Deadline",
    "RetryBudget",
    "RetryPolicy",
    "TimeoutPolicy",
    "DeadlineExceeded",
    "RetryExhausted",
    "DegradeLadder",
    "FrontDoor",
    "TenantQuota",
    "__version__",
]
