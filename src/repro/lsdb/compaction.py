"""Summarization and archival — bounding insert-only growth.

Principle 2.7 closes with the operational caveat: "unlimited data growth
may be an issue, so the DMS should provide data summarization and
archival functionality, while still addressing regulatory requirements
and eventual consistency."

The :class:`Compactor` implements exactly that: it replaces a log prefix
with one ``SUMMARY`` event per entity (the rollup of that entity's
events in the prefix) and moves the raw events to an :class:`Archive`.
Nothing is destroyed — audit queries can consult the archive — but the
*live* log the rollup reads stays bounded.  Events tagged ``regulatory``
are always archived in full (never silently summarised away), honouring
the retention requirement.  Experiment E8 sweeps compaction policies and
reports live-log size versus summarisation horizon.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.log import AppendOnlyLog
from repro.lsdb.rollup import Rollup


class Archive:
    """Cold storage for compacted-away raw events.

    Keeps events in memory as dictionaries; :meth:`dump_jsonl` writes
    them out as JSON lines for offline audit tooling.
    """

    def __init__(self):
        self._records: list[dict[str, Any]] = []
        #: (entity_type, entity_key) -> record positions, so the audit
        #: view is O(entity history), not O(archive).
        self._by_ref: dict[tuple[str, str], list[int]] = {}

    def store(self, events: list[LogEvent]) -> None:
        """Append raw events to the archive."""
        records = self._records
        by_ref = self._by_ref
        for event in events:
            by_ref.setdefault(event.entity_ref, []).append(len(records))
            records.append(event.to_dict())

    def __len__(self) -> int:
        return len(self._records)

    def events_for(self, entity_type: str, entity_key: str) -> list[LogEvent]:
        """The archived history of one entity (regulatory audit view)."""
        records = self._records
        return [
            LogEvent.from_dict(records[position])
            for position in self._by_ref.get((entity_type, entity_key), ())
        ]

    def regulatory_events(self) -> list[LogEvent]:
        """All archived events carrying the ``regulatory`` tag."""
        return [
            LogEvent.from_dict(record)
            for record in self._records
            if "regulatory" in record.get("tags", ())
        ]

    def dump_jsonl(self, path: str) -> int:
        """Write the archive as JSON lines; returns the record count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record) + "\n")
        return len(self._records)


@dataclass
class CompactionReport:
    """What one compaction pass did."""

    compacted_up_to_lsn: int = 0
    events_removed: int = 0
    summaries_written: int = 0
    events_archived: int = 0

    @property
    def shrinkage(self) -> int:
        """Net reduction in live-log length."""
        return self.events_removed - self.summaries_written


class Compactor:
    """Replaces old event runs with per-entity summaries.

    Args:
        log: The log to compact.
        rollup: Rollup defining summary semantics (reducers decide what
            a run of events aggregates to).
        archive: Destination for removed raw events (created if omitted).
    """

    def __init__(
        self,
        log: AppendOnlyLog,
        rollup: Rollup,
        archive: Optional[Archive] = None,
    ):
        self.log = log
        self.rollup = rollup
        # Explicit None check: an empty Archive is falsy (len() == 0),
        # so ``archive or Archive()`` would silently discard it.
        self.archive = archive if archive is not None else Archive()

    def compact_before(self, lsn: int) -> CompactionReport:
        """Summarise all live events with LSN <= ``lsn``.

        Every affected entity gets exactly one ``SUMMARY`` event whose
        payload is the entity's rolled-up fields over the prefix, placed
        at the LSN of the entity's last summarised event (so ordering
        against the surviving suffix is preserved).

        Returns:
            A :class:`CompactionReport` describing the pass.
        """
        prefix = self.log.up_to(lsn)
        if not prefix:
            return CompactionReport(compacted_up_to_lsn=lsn)
        # One columnar fold gives everything the summaries need: the
        # rolled-up fields plus ``last_lsn``/``last_timestamp``, which
        # the fold tracks as running maxima — and within one log the
        # per-entity maximum LSN *is* the entity's last prefix event, so
        # the old last-event-per-ref scan over the prefix is redundant.
        states = self.rollup.fold(prefix)
        summaries: list[LogEvent] = []
        for ref, state in states.items():
            tags = set()
            if state.deleted:
                tags.add("deleted")
            if state.obsolete:
                tags.add("obsolete")
            summaries.append(
                LogEvent(
                    lsn=state.last_lsn,
                    timestamp=state.last_timestamp,
                    entity_type=ref[0],
                    entity_key=ref[1],
                    kind=EventKind.SUMMARY,
                    payload=dict(state.fields),
                    origin="compactor",
                    origin_seq=0,
                    tags=frozenset(tags),
                )
            )
        summaries.sort(key=lambda event: event.lsn)
        removed = self.log.rewrite_prefix(lsn, summaries)
        self.archive.store(removed)
        return CompactionReport(
            compacted_up_to_lsn=lsn,
            events_removed=len(removed),
            summaries_written=len(summaries),
            events_archived=len(removed),
        )

    def compact_keep_recent(self, keep: int) -> CompactionReport:
        """Summarise everything except the newest ``keep`` live events.

        This is the steady-state policy: call it periodically and the
        live log length stays near ``keep`` plus one summary per entity.
        """
        if keep < 0:
            raise ValueError(f"keep must be non-negative, got {keep}")
        events = self.log.events()
        if len(events) <= keep:
            return CompactionReport(compacted_up_to_lsn=0)
        boundary = events[len(events) - keep - 1].lsn
        return self.compact_before(boundary)
