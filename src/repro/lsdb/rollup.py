"""Rollup aggregation: the "current state" as a fold over the log.

Paper section 3.1: "What applications view as the current state of the
database would be a rollup aggregation of the contents of the LSDB, in
the same way that rollforward using a log is an aggregation function."

This module implements that aggregation.  A :class:`Reducer` folds one
event into one entity's state; :class:`Rollup` folds a whole event
sequence into a state map.  The default :class:`GenericReducer` is
*convergent*: deltas commute, and field overwrites carry
``(timestamp, origin)`` stamps resolved last-update-wins, so replicas
that apply the same event *set* in different orders reach the same state
(checked with hypothesis in ``tests/test_rollup_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Protocol

from repro.lsdb.events import EventKind, LogEvent
from repro.merge.deltas import Delta, apply_delta


@dataclass
class EntityState:
    """The rolled-up state of one entity.

    Attributes:
        entity_type: Catalog name of the type.
        entity_key: Business key.
        fields: Current field values.
        field_stamps: Per-field ``(timestamp, origin)`` of the winning
            ``SET_FIELDS`` write (absent for fields only ever touched by
            inserts/deltas).
        deleted: Whether a ``TOMBSTONE`` mark has been applied.  The
            fields remain readable — deletion is a mark, not an erasure
            (principle 2.7).
        obsolete: Whether the entity is a tentative change that was
            marked obsolete (section 3.2): still visible and durable.
        version_count: Number of ``INSERT`` events folded in (insert-only
            versioning depth).
        event_count: Total events folded into this state.
        last_lsn: LSN of the most recent folded event.
        last_timestamp: Virtual time of the most recent folded event.
    """

    entity_type: str
    entity_key: str
    fields: dict[str, Any] = field(default_factory=dict)
    field_stamps: dict[str, tuple[float, str]] = field(default_factory=dict)
    deleted: bool = False
    obsolete: bool = False
    version_count: int = 0
    event_count: int = 0
    last_lsn: int = 0
    last_timestamp: float = 0.0

    @property
    def live(self) -> bool:
        """Whether the entity is neither deleted nor obsolete."""
        return not (self.deleted or self.obsolete)

    def get(self, field_name: str, default: Any = None) -> Any:
        """Current value of one field."""
        return self.fields.get(field_name, default)

    def copy(self) -> "EntityState":
        """A deep-enough copy (field dicts copied, values shared)."""
        return EntityState(
            entity_type=self.entity_type,
            entity_key=self.entity_key,
            fields=dict(self.fields),
            field_stamps=dict(self.field_stamps),
            deleted=self.deleted,
            obsolete=self.obsolete,
            version_count=self.version_count,
            event_count=self.event_count,
            last_lsn=self.last_lsn,
            last_timestamp=self.last_timestamp,
        )


class Reducer(Protocol):
    """Folds one event into one entity's state.

    Custom reducers let an entity type define domain aggregation (e.g.
    an account whose ``balance`` field is the sum of deposit/withdrawal
    operations); register them per type on the
    :class:`~repro.lsdb.store.LSDBStore`.
    """

    def apply(self, state: Optional[EntityState], event: LogEvent) -> EntityState:
        """Return the state after folding ``event`` into ``state``
        (``state is None`` means the entity has no prior events)."""
        ...


class GenericReducer:
    """Default convergent reducer for all event kinds.

    Ordering semantics:

    * ``INSERT`` overlays its payload fields and bumps the version count.
      Repeated inserts are treated as new versions of the entity
      (insert-only storage, principle 2.7).
    * ``DELTA`` applies a commutative delta; order-independent.
    * ``SET_FIELDS`` applies per-field last-update-wins using the event's
      ``(timestamp, origin)`` stamp, so replays and out-of-order merges
      converge.
    * ``TOMBSTONE`` / ``OBSOLETE`` set sticky marks.
    * ``SUMMARY`` replaces the whole field map (a compaction artefact
      standing for the run of events it summarised).
    """

    def apply(self, state: Optional[EntityState], event: LogEvent) -> EntityState:
        if state is None:
            state = EntityState(event.entity_type, event.entity_key)
        else:
            state = state.copy()
        kind = event.kind
        if kind is EventKind.INSERT:
            state.fields.update(event.payload)
            state.version_count += 1
        elif kind is EventKind.DELTA:
            delta = Delta.from_payload(event.payload)
            state.fields = apply_delta(state.fields, delta)
        elif kind is EventKind.SET_FIELDS:
            stamp = (event.timestamp, event.origin)
            for name, value in event.payload.items():
                if stamp >= state.field_stamps.get(name, (float("-inf"), "")):
                    state.fields[name] = value
                    state.field_stamps[name] = stamp
        elif kind is EventKind.TOMBSTONE:
            state.deleted = True
        elif kind is EventKind.OBSOLETE:
            state.obsolete = True
        elif kind is EventKind.SUMMARY:
            state.fields = dict(event.payload)
            state.field_stamps = {}
            # Compaction preserves marks via tags so a summarised
            # tombstoned entity stays tombstoned after the rewrite.
            if "deleted" in event.tags:
                state.deleted = True
            if "obsolete" in event.tags:
                state.obsolete = True
            state.version_count = max(state.version_count, 1)
        state.event_count += 1
        state.last_lsn = max(state.last_lsn, event.lsn)
        state.last_timestamp = max(state.last_timestamp, event.timestamp)
        return state


EntityRef = tuple[str, str]
StateMap = dict[EntityRef, EntityState]


class Rollup:
    """Folds event sequences into state maps using per-type reducers.

    Args:
        reducers: Entity type name -> reducer; types not present use
            ``default_reducer``.
        default_reducer: Fallback reducer (a :class:`GenericReducer` by
            default).
    """

    def __init__(
        self,
        reducers: Mapping[str, Reducer] | None = None,
        default_reducer: Reducer | None = None,
    ):
        self._reducers: dict[str, Reducer] = dict(reducers or {})
        self._default = default_reducer or GenericReducer()

    def register(self, entity_type: str, reducer: Reducer) -> None:
        """Attach a custom reducer for ``entity_type``."""
        self._reducers[entity_type] = reducer

    def reducer_for(self, entity_type: str) -> Reducer:
        """The reducer used for ``entity_type``."""
        return self._reducers.get(entity_type, self._default)

    def fold(
        self,
        events: Iterable[LogEvent],
        initial: StateMap | None = None,
    ) -> StateMap:
        """Fold ``events`` (in the given order) over ``initial``.

        The initial map is not mutated; entity states are copied on first
        touch so snapshots can be shared safely.
        """
        states: StateMap = dict(initial or {})
        for event in events:
            ref = event.entity_ref
            states[ref] = self.reducer_for(event.entity_type).apply(
                states.get(ref), event
            )
        return states

    def fold_into(self, states: StateMap, event: LogEvent) -> None:
        """Fold one event into ``states`` in place (incremental cache
        maintenance on the append path)."""
        ref = event.entity_ref
        states[ref] = self.reducer_for(event.entity_type).apply(
            states.get(ref), event
        )
