"""Rollup aggregation: the "current state" as a fold over the log.

Paper section 3.1: "What applications view as the current state of the
database would be a rollup aggregation of the contents of the LSDB, in
the same way that rollforward using a log is an aggregation function."

This module implements that aggregation.  A :class:`Reducer` folds one
event into one entity's state; :class:`Rollup` folds a whole event
sequence into a state map.  The default :class:`GenericReducer` is
*convergent*: deltas commute, and field overwrites carry
``(timestamp, origin)`` stamps resolved last-update-wins, so replicas
that apply the same event *set* in different orders reach the same state
(checked with hypothesis in ``tests/test_rollup_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Protocol

from repro.lsdb.events import EventKind, LogEvent


@dataclass(slots=True)
class EntityState:
    """The rolled-up state of one entity.

    Slotted like :class:`~repro.lsdb.events.LogEvent`: one instance
    lives in the incremental cache per entity, and copies of all of
    them live in every snapshot and rollup checkpoint, so the instance
    dict was pure overhead.

    Attributes:
        entity_type: Catalog name of the type.
        entity_key: Business key.
        fields: Current field values.
        field_stamps: Per-field ``(timestamp, origin)`` of the winning
            ``SET_FIELDS`` write (absent for fields only ever touched by
            inserts/deltas).
        deleted: Whether a ``TOMBSTONE`` mark has been applied.  The
            fields remain readable — deletion is a mark, not an erasure
            (principle 2.7).
        obsolete: Whether the entity is a tentative change that was
            marked obsolete (section 3.2): still visible and durable.
        version_count: Number of ``INSERT`` events folded in (insert-only
            versioning depth).
        event_count: Total events folded into this state.
        last_lsn: LSN of the most recent folded event.
        last_timestamp: Virtual time of the most recent folded event.
    """

    entity_type: str
    entity_key: str
    fields: dict[str, Any] = field(default_factory=dict)
    field_stamps: dict[str, tuple[float, str]] = field(default_factory=dict)
    deleted: bool = False
    obsolete: bool = False
    version_count: int = 0
    event_count: int = 0
    last_lsn: int = 0
    last_timestamp: float = 0.0

    @property
    def live(self) -> bool:
        """Whether the entity is neither deleted nor obsolete."""
        return not (self.deleted or self.obsolete)

    def get(self, field_name: str, default: Any = None) -> Any:
        """Current value of one field."""
        return self.fields.get(field_name, default)

    def copy(self) -> "EntityState":
        """A deep-enough copy (field dicts copied, values shared)."""
        return EntityState(
            entity_type=self.entity_type,
            entity_key=self.entity_key,
            fields=dict(self.fields),
            field_stamps=dict(self.field_stamps),
            deleted=self.deleted,
            obsolete=self.obsolete,
            version_count=self.version_count,
            event_count=self.event_count,
            last_lsn=self.last_lsn,
            last_timestamp=self.last_timestamp,
        )


class Reducer(Protocol):
    """Folds one event into one entity's state.

    Custom reducers let an entity type define domain aggregation (e.g.
    an account whose ``balance`` field is the sum of deposit/withdrawal
    operations); register them per type on the
    :class:`~repro.lsdb.store.LSDBStore`.

    ``apply`` must never mutate its input (copy-on-write semantics).  A
    reducer may additionally provide ``fold(state, event)`` with the
    same signature that is *allowed* to mutate ``state`` in place and
    return it; the rollup uses that path for states it owns exclusively
    (the store's incremental cache), skipping the per-event copy.
    """

    def apply(self, state: Optional[EntityState], event: LogEvent) -> EntityState:
        """Return the state after folding ``event`` into ``state``
        (``state is None`` means the entity has no prior events).
        The input ``state`` must not be mutated."""
        ...


class GenericReducer:
    """Default convergent reducer for all event kinds.

    Ordering semantics:

    * ``INSERT`` overlays its payload fields and bumps the version count.
      Repeated inserts are treated as new versions of the entity
      (insert-only storage, principle 2.7).
    * ``DELTA`` applies a commutative delta; order-independent.
    * ``SET_FIELDS`` applies per-field last-update-wins using the event's
      ``(timestamp, origin)`` stamp, so replays and out-of-order merges
      converge.
    * ``TOMBSTONE`` / ``OBSOLETE`` set sticky marks.
    * ``SUMMARY`` replaces the whole field map (a compaction artefact
      standing for the run of events it summarised).
    """

    def apply(self, state: Optional[EntityState], event: LogEvent) -> EntityState:
        """Copying fold: the input state is left untouched (used where
        states are shared — snapshots, time-travel reads)."""
        return self.fold(state.copy() if state is not None else None, event)

    def fold(self, state: Optional[EntityState], event: LogEvent) -> EntityState:
        """In-place fold: mutates and returns ``state`` (creating it for
        the entity's first event).  This is the append hot path — the
        store-owned incremental cache folds every event exactly once, so
        no copy is needed."""
        if state is None:
            state = EntityState(event.entity_type, event.entity_key)
        kind = event.kind
        if kind is EventKind.INSERT:
            state.fields.update(event.payload)
            state.version_count += 1
        elif kind is EventKind.DELTA:
            # Deltas are applied straight from the payload, in place:
            # materialising a Delta object and copying the field dict
            # per event would dominate the fold cost.
            fields = state.fields
            payload = event.payload
            numeric = payload.get("numeric")
            if numeric:
                for name, amount in numeric.items():
                    fields[name] = fields.get(name, 0) + amount
            set_adds = payload.get("set_adds")
            if set_adds:
                for name, additions in set_adds.items():
                    current = fields.get(name, frozenset())
                    fields[name] = frozenset(current) | frozenset(additions)
            set_removes = payload.get("set_removes")
            if set_removes:
                for name, removals in set_removes.items():
                    current = fields.get(name, frozenset())
                    fields[name] = frozenset(current) - frozenset(removals)
        elif kind is EventKind.SET_FIELDS:
            stamp = (event.timestamp, event.origin)
            for name, value in event.payload.items():
                if stamp >= state.field_stamps.get(name, (float("-inf"), "")):
                    state.fields[name] = value
                    state.field_stamps[name] = stamp
        elif kind is EventKind.TOMBSTONE:
            state.deleted = True
        elif kind is EventKind.OBSOLETE:
            state.obsolete = True
        elif kind is EventKind.SUMMARY:
            state.fields = dict(event.payload)
            state.field_stamps = {}
            # Compaction preserves marks via tags so a summarised
            # tombstoned entity stays tombstoned after the rewrite.
            if "deleted" in event.tags:
                state.deleted = True
            if "obsolete" in event.tags:
                state.obsolete = True
            state.version_count = max(state.version_count, 1)
        state.event_count += 1
        state.last_lsn = max(state.last_lsn, event.lsn)
        state.last_timestamp = max(state.last_timestamp, event.timestamp)
        return state


EntityRef = tuple[str, str]
StateMap = dict[EntityRef, EntityState]


def _resolve_folder(reducer: Reducer):
    """The fastest fold callable a reducer offers.

    ``fold`` is only trusted when the class defining it is at least as
    derived as the class defining ``apply`` — a subclass that overrides
    ``apply`` alone (e.g. to decorate the generic behaviour) must not be
    bypassed by an inherited in-place ``fold``.
    """
    cls = type(reducer)
    mro = cls.__mro__
    fold_owner = next((c for c in mro if "fold" in c.__dict__), None)
    if fold_owner is None:
        return reducer.apply
    apply_owner = next((c for c in mro if "apply" in c.__dict__), None)
    if apply_owner is not None and mro.index(apply_owner) < mro.index(fold_owner):
        return reducer.apply
    return reducer.fold


class Rollup:
    """Folds event sequences into state maps using per-type reducers.

    Args:
        reducers: Entity type name -> reducer; types not present use
            ``default_reducer``.
        default_reducer: Fallback reducer (a :class:`GenericReducer` by
            default).
    """

    def __init__(
        self,
        reducers: Mapping[str, Reducer] | None = None,
        default_reducer: Reducer | None = None,
    ):
        self._reducers: dict[str, Reducer] = dict(reducers or {})
        self._default = default_reducer or GenericReducer()
        #: entity type -> fastest folding callable (the reducer's
        #: in-place ``fold`` when it has one, else its copying ``apply``)
        self._folders: dict[str, Callable[[Optional[EntityState], LogEvent], EntityState]] = {}

    def register(self, entity_type: str, reducer: Reducer) -> None:
        """Attach a custom reducer for ``entity_type``."""
        self._reducers[entity_type] = reducer
        self._folders.clear()

    def reducer_for(self, entity_type: str) -> Reducer:
        """The reducer used for ``entity_type``."""
        return self._reducers.get(entity_type, self._default)

    def folder_for(
        self, entity_type: str
    ) -> Callable[[Optional[EntityState], LogEvent], EntityState]:
        """The fastest fold callable for ``entity_type``: the reducer's
        in-place ``fold`` when it provides one, else its copying
        ``apply``.  Only safe on states the caller owns exclusively."""
        folder = self._folders.get(entity_type)
        if folder is None:
            reducer = self._reducers.get(entity_type, self._default)
            folder = _resolve_folder(reducer)
            self._folders[entity_type] = folder
        return folder

    def fold(
        self,
        events: Iterable[LogEvent],
        initial: StateMap | None = None,
        *,
        copy_untouched: bool = False,
    ) -> StateMap:
        """Fold ``events`` (in the given order) over ``initial``.

        The initial map is not mutated; entity states are copied on
        first touch so snapshots can be shared safely.  Entities *not*
        touched by ``events`` remain shared with ``initial`` (exactly as
        before: ``dict(initial)`` shares values) unless
        ``copy_untouched=True``, which yields a fully isolated result
        map at the cost of one copy per untouched entity.
        """
        folder_for = self.folder_for
        if initial:
            states: StateMap = dict(initial)
            # Refs whose state object is still shared with ``initial``;
            # the first event touching one folds over a private copy.
            shared = set(states)
            for event in events:
                ref = event.entity_ref
                state = states.get(ref)
                if state is not None and ref in shared:
                    state = state.copy()
                    shared.discard(ref)
                states[ref] = folder_for(event.entity_type)(state, event)
            if copy_untouched:
                for ref in shared:
                    states[ref] = states[ref].copy()
            return states
        # No initial map: every state is freshly created by the fold and
        # owned by the result, so the in-place path is safe throughout.
        states = {}
        for event in events:
            ref = event.entity_ref
            states[ref] = folder_for(event.entity_type)(states.get(ref), event)
        return states

    def fold_into(self, states: StateMap, event: LogEvent) -> None:
        """Fold one event into ``states`` in place (incremental cache
        maintenance on the append path).

        The caller must own ``states`` and every state in it — the
        in-place reducer path mutates them without copying.
        """
        ref = event.entity_ref
        states[ref] = self.folder_for(event.entity_type)(states.get(ref), event)
