"""Rollup aggregation: the "current state" as a fold over the log.

Paper section 3.1: "What applications view as the current state of the
database would be a rollup aggregation of the contents of the LSDB, in
the same way that rollforward using a log is an aggregation function."

This module implements that aggregation.  A :class:`Reducer` folds one
event into one entity's state; :class:`Rollup` folds a whole event
sequence into a state map.  The default :class:`GenericReducer` is
*convergent*: deltas commute, and field overwrites carry
``(timestamp, origin)`` stamps resolved last-update-wins, so replicas
that apply the same event *set* in different orders reach the same state
(checked with hypothesis in ``tests/test_rollup_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Protocol, Sequence

from repro.lsdb.columnar import KIND_CODES, EventColumns, EventSlice
from repro.lsdb.events import EventKind, LogEvent

_INSERT = KIND_CODES[EventKind.INSERT]
_DELTA = KIND_CODES[EventKind.DELTA]
_SET_FIELDS = KIND_CODES[EventKind.SET_FIELDS]
_TOMBSTONE = KIND_CODES[EventKind.TOMBSTONE]
_OBSOLETE = KIND_CODES[EventKind.OBSOLETE]
_SUMMARY = KIND_CODES[EventKind.SUMMARY]
_NO_STAMP = (float("-inf"), "")


@dataclass(slots=True)
class EntityState:
    """The rolled-up state of one entity.

    Slotted like :class:`~repro.lsdb.events.LogEvent`: one instance
    lives in the incremental cache per entity, and copies of all of
    them live in every snapshot and rollup checkpoint, so the instance
    dict was pure overhead.

    Attributes:
        entity_type: Catalog name of the type.
        entity_key: Business key.
        fields: Current field values.
        field_stamps: Per-field ``(timestamp, origin)`` of the winning
            ``SET_FIELDS`` write (absent for fields only ever touched by
            inserts/deltas).
        deleted: Whether a ``TOMBSTONE`` mark has been applied.  The
            fields remain readable — deletion is a mark, not an erasure
            (principle 2.7).
        obsolete: Whether the entity is a tentative change that was
            marked obsolete (section 3.2): still visible and durable.
        version_count: Number of ``INSERT`` events folded in (insert-only
            versioning depth).
        event_count: Total events folded into this state.
        last_lsn: LSN of the most recent folded event.
        last_timestamp: Virtual time of the most recent folded event.
    """

    entity_type: str
    entity_key: str
    fields: dict[str, Any] = field(default_factory=dict)
    field_stamps: dict[str, tuple[float, str]] = field(default_factory=dict)
    deleted: bool = False
    obsolete: bool = False
    version_count: int = 0
    event_count: int = 0
    last_lsn: int = 0
    last_timestamp: float = 0.0

    @property
    def live(self) -> bool:
        """Whether the entity is neither deleted nor obsolete."""
        return not (self.deleted or self.obsolete)

    def get(self, field_name: str, default: Any = None) -> Any:
        """Current value of one field."""
        return self.fields.get(field_name, default)

    def copy(self) -> "EntityState":
        """A deep-enough copy (field dicts copied, values shared)."""
        return EntityState(
            entity_type=self.entity_type,
            entity_key=self.entity_key,
            fields=dict(self.fields),
            field_stamps=dict(self.field_stamps),
            deleted=self.deleted,
            obsolete=self.obsolete,
            version_count=self.version_count,
            event_count=self.event_count,
            last_lsn=self.last_lsn,
            last_timestamp=self.last_timestamp,
        )


class Reducer(Protocol):
    """Folds one event into one entity's state.

    Custom reducers let an entity type define domain aggregation (e.g.
    an account whose ``balance`` field is the sum of deposit/withdrawal
    operations); register them per type on the
    :class:`~repro.lsdb.store.LSDBStore`.

    ``apply`` must never mutate its input (copy-on-write semantics).  A
    reducer may additionally provide ``fold(state, event)`` with the
    same signature that is *allowed* to mutate ``state`` in place and
    return it; the rollup uses that path for states it owns exclusively
    (the store's incremental cache), skipping the per-event copy.
    """

    def apply(self, state: Optional[EntityState], event: LogEvent) -> EntityState:
        """Return the state after folding ``event`` into ``state``
        (``state is None`` means the entity has no prior events).
        The input ``state`` must not be mutated."""
        ...


class GenericReducer:
    """Default convergent reducer for all event kinds.

    Ordering semantics:

    * ``INSERT`` overlays its payload fields and bumps the version count.
      Repeated inserts are treated as new versions of the entity
      (insert-only storage, principle 2.7).
    * ``DELTA`` applies a commutative delta; order-independent.
    * ``SET_FIELDS`` applies per-field last-update-wins using the event's
      ``(timestamp, origin)`` stamp, so replays and out-of-order merges
      converge.
    * ``TOMBSTONE`` / ``OBSOLETE`` set sticky marks.
    * ``SUMMARY`` replaces the whole field map (a compaction artefact
      standing for the run of events it summarised).
    """

    def apply(self, state: Optional[EntityState], event: LogEvent) -> EntityState:
        """Copying fold: the input state is left untouched (used where
        states are shared — snapshots, time-travel reads)."""
        return self.fold(state.copy() if state is not None else None, event)

    def fold(self, state: Optional[EntityState], event: LogEvent) -> EntityState:
        """In-place fold: mutates and returns ``state`` (creating it for
        the entity's first event).  This is the append hot path — the
        store-owned incremental cache folds every event exactly once, so
        no copy is needed."""
        if state is None:
            state = EntityState(event.entity_type, event.entity_key)
        kind = event.kind
        if kind is EventKind.INSERT:
            state.fields.update(event.payload)
            state.version_count += 1
        elif kind is EventKind.DELTA:
            # Deltas are applied straight from the payload, in place:
            # materialising a Delta object and copying the field dict
            # per event would dominate the fold cost.
            fields = state.fields
            payload = event.payload
            numeric = payload.get("numeric")
            if numeric:
                for name, amount in numeric.items():
                    fields[name] = fields.get(name, 0) + amount
            set_adds = payload.get("set_adds")
            if set_adds:
                for name, additions in set_adds.items():
                    current = fields.get(name, frozenset())
                    fields[name] = frozenset(current) | frozenset(additions)
            set_removes = payload.get("set_removes")
            if set_removes:
                for name, removals in set_removes.items():
                    current = fields.get(name, frozenset())
                    fields[name] = frozenset(current) - frozenset(removals)
        elif kind is EventKind.SET_FIELDS:
            stamp = (event.timestamp, event.origin)
            for name, value in event.payload.items():
                if stamp >= state.field_stamps.get(name, (float("-inf"), "")):
                    state.fields[name] = value
                    state.field_stamps[name] = stamp
        elif kind is EventKind.TOMBSTONE:
            state.deleted = True
        elif kind is EventKind.OBSOLETE:
            state.obsolete = True
        elif kind is EventKind.SUMMARY:
            state.fields = dict(event.payload)
            state.field_stamps = {}
            # Compaction preserves marks via tags so a summarised
            # tombstoned entity stays tombstoned after the rewrite.
            if "deleted" in event.tags:
                state.deleted = True
            if "obsolete" in event.tags:
                state.obsolete = True
            state.version_count = max(state.version_count, 1)
        state.event_count += 1
        state.last_lsn = max(state.last_lsn, event.lsn)
        state.last_timestamp = max(state.last_timestamp, event.timestamp)
        return state

    def fold_rows(
        self,
        state: Optional[EntityState],
        cols: EventColumns,
        rows: Sequence[int],
        ref: EntityRef,
    ) -> EntityState:
        """In-place fold of arena ``rows`` (all belonging to ``ref``)
        straight from the columns — no :class:`LogEvent` objects.

        This is the vectorized half of the columnar re-architecture:
        the per-run loop reads C arrays, resolves the payload once per
        event, and amortizes the state/bookkeeping lookups over the
        whole run instead of paying them per event.  Semantically it is
        ``for row: self.fold(state, event_at(row))``, field for field.
        """
        if state is None:
            state = EntityState(ref[0], ref[1])
        kinds = cols.kinds
        payloads = cols.payloads
        lsns = cols.lsns
        timestamps = cols.timestamps
        fields = state.fields
        last_lsn = state.last_lsn
        last_timestamp = state.last_timestamp
        count = 0
        for row in rows:
            kind = kinds[row]
            if kind == _DELTA:
                payload = payloads[row]
                numeric = payload.get("numeric")
                if numeric:
                    for name, amount in numeric.items():
                        fields[name] = fields.get(name, 0) + amount
                set_adds = payload.get("set_adds")
                if set_adds:
                    for name, additions in set_adds.items():
                        current = fields.get(name, frozenset())
                        fields[name] = frozenset(current) | frozenset(additions)
                set_removes = payload.get("set_removes")
                if set_removes:
                    for name, removals in set_removes.items():
                        current = fields.get(name, frozenset())
                        fields[name] = frozenset(current) - frozenset(removals)
            elif kind == _INSERT:
                fields.update(payloads[row])
                state.version_count += 1
            elif kind == _SET_FIELDS:
                stamp = (timestamps[row], cols.origin_at(row))
                stamps = state.field_stamps
                for name, value in payloads[row].items():
                    if stamp >= stamps.get(name, _NO_STAMP):
                        fields[name] = value
                        stamps[name] = stamp
            elif kind == _TOMBSTONE:
                state.deleted = True
            elif kind == _OBSOLETE:
                state.obsolete = True
            elif kind == _SUMMARY:
                fields = state.fields = dict(payloads[row])
                state.field_stamps = {}
                tags = cols.tags_at(row)
                if "deleted" in tags:
                    state.deleted = True
                if "obsolete" in tags:
                    state.obsolete = True
                state.version_count = max(state.version_count, 1)
            count += 1
            lsn = lsns[row]
            if lsn > last_lsn:
                last_lsn = lsn
            timestamp = timestamps[row]
            if timestamp > last_timestamp:
                last_timestamp = timestamp
        state.event_count += count
        state.last_lsn = last_lsn
        state.last_timestamp = last_timestamp
        return state

    def fold_row(
        self,
        state: Optional[EntityState],
        cols: EventColumns,
        row: int,
        ref: EntityRef,
    ) -> EntityState:
        """Single-row variant of :meth:`fold_rows` (append hot path)."""
        return self.fold_rows(state, cols, (row,), ref)


EntityRef = tuple[str, str]
StateMap = dict[EntityRef, EntityState]


def _resolve_folder(reducer: Reducer):
    """The fastest fold callable a reducer offers.

    ``fold`` is only trusted when the class defining it is at least as
    derived as the class defining ``apply`` — a subclass that overrides
    ``apply`` alone (e.g. to decorate the generic behaviour) must not be
    bypassed by an inherited in-place ``fold``.
    """
    cls = type(reducer)
    mro = cls.__mro__
    fold_owner = next((c for c in mro if "fold" in c.__dict__), None)
    if fold_owner is None:
        return reducer.apply
    apply_owner = next((c for c in mro if "apply" in c.__dict__), None)
    if apply_owner is not None and mro.index(apply_owner) < mro.index(fold_owner):
        return reducer.apply
    return reducer.fold


class Rollup:
    """Folds event sequences into state maps using per-type reducers.

    Args:
        reducers: Entity type name -> reducer; types not present use
            ``default_reducer``.
        default_reducer: Fallback reducer (a :class:`GenericReducer` by
            default).
    """

    def __init__(
        self,
        reducers: Mapping[str, Reducer] | None = None,
        default_reducer: Reducer | None = None,
    ):
        self._reducers: dict[str, Reducer] = dict(reducers or {})
        self._default = default_reducer or GenericReducer()
        #: entity type -> fastest folding callable (the reducer's
        #: in-place ``fold`` when it has one, else its copying ``apply``)
        self._folders: dict[str, Callable[[Optional[EntityState], LogEvent], EntityState]] = {}
        #: entity type -> columnar run-fold callable (see
        #: :meth:`rows_folder_for`).
        self._rows_folders: dict[str, Callable] = {}
        self._refresh_all_generic()

    def _refresh_all_generic(self) -> None:
        """Whether every type folds with a *stock* :class:`GenericReducer`
        — the precondition for the fused slice fold, which inlines that
        reducer's semantics."""
        self._all_generic = type(self._default) is GenericReducer and all(
            type(reducer) is GenericReducer
            for reducer in self._reducers.values()
        )

    def register(self, entity_type: str, reducer: Reducer) -> None:
        """Attach a custom reducer for ``entity_type``."""
        self._reducers[entity_type] = reducer
        self._folders.clear()
        self._rows_folders.clear()
        self._refresh_all_generic()

    def reducer_for(self, entity_type: str) -> Reducer:
        """The reducer used for ``entity_type``."""
        return self._reducers.get(entity_type, self._default)

    def folder_for(
        self, entity_type: str
    ) -> Callable[[Optional[EntityState], LogEvent], EntityState]:
        """The fastest fold callable for ``entity_type``: the reducer's
        in-place ``fold`` when it provides one, else its copying
        ``apply``.  Only safe on states the caller owns exclusively."""
        folder = self._folders.get(entity_type)
        if folder is None:
            reducer = self._reducers.get(entity_type, self._default)
            folder = _resolve_folder(reducer)
            self._folders[entity_type] = folder
        return folder

    def rows_folder_for(
        self, entity_type: str
    ) -> Callable[[Optional[EntityState], EventColumns, Sequence[int], EntityRef], EntityState]:
        """The columnar run-fold callable for ``entity_type``:
        ``(state, arena, rows, ref) -> state``.

        The stock :class:`GenericReducer` folds straight from the
        columns (:meth:`GenericReducer.fold_rows`); any custom or
        subclassed reducer gets a wrapper that materializes each row and
        goes through :meth:`folder_for`, preserving the reducer's own
        semantics exactly.  Only safe on states the caller owns.
        """
        rows_folder = self._rows_folders.get(entity_type)
        if rows_folder is None:
            reducer = self._reducers.get(entity_type, self._default)
            if type(reducer) is GenericReducer:
                rows_folder = reducer.fold_rows
            else:
                folder = self.folder_for(entity_type)

                def rows_folder(state, cols, rows, ref, _folder=folder):
                    event_at = cols.event_at
                    for row in rows:
                        state = _folder(state, event_at(row))
                    return state

            self._rows_folders[entity_type] = rows_folder
        return rows_folder

    def fold_slice_into(
        self,
        states: StateMap,
        view: EventSlice,
        type_refs: Optional[dict[str, list[EntityRef]]] = None,
        *,
        copy_shared: bool = False,
        shared: Optional[set] = None,
    ) -> None:
        """Group ``view`` by entity and fold each entity's run in one
        pass — the batch-apply reducer path.

        Grouping amortizes the folder resolution, the states-map
        get/set, and (for the generic reducer) all per-event attribute
        dispatch over each entity's whole run instead of paying them per
        event.  Per entity the events fold in view order, so the result
        is identical to per-event :meth:`fold_into` calls.

        Args:
            states: Mutated in place.  Must be caller-owned unless
                ``copy_shared`` handling is engaged.
            type_refs: When given, refs first seen by this fold are
                appended to their type's list (the store's
                ``entities_of_type`` bookkeeping), in first-event order.
            copy_shared: Copy-on-first-touch support for folding over a
                shared snapshot: a state whose ref is in ``shared`` is
                copied before folding and its ref discarded from
                ``shared``.
            shared: The set of refs still shared (required when
                ``copy_shared``).
        """
        if self._all_generic:
            # Every type folds with the stock reducer: take the fused
            # single-pass loop.  It walks rows in view order (sequential
            # column access — grouping first would scatter reads across
            # the arena and thrash caches on large slices) and resolves
            # each row's state through a per-call rid table, so the
            # states-map hashing and first-touch bookkeeping are paid
            # once per entity, not once per event.
            self._fold_slice_generic(
                states, view, type_refs, copy_shared=copy_shared, shared=shared
            )
            return
        cols = view.arena
        rows = view.rows
        ref_ids = cols.ref_ids
        # Group rows by interned ref id; dict insertion order is
        # first-occurrence order, which keeps type_refs deterministic.
        groups: dict[int, list[int]] = {}
        for row in rows:
            rid = ref_ids[row]
            bucket = groups.get(rid)
            if bucket is None:
                groups[rid] = [row]
            else:
                bucket.append(row)
        ref_tuples = cols.ref_tuples
        rows_folder_for = self.rows_folder_for
        for rid, run in groups.items():
            ref = ref_tuples[rid]
            state = states.get(ref)
            if state is None:
                if type_refs is not None:
                    type_refs.setdefault(ref[0], []).append(ref)
            elif copy_shared and ref in shared:
                state = state.copy()
                shared.discard(ref)
            states[ref] = rows_folder_for(ref[0])(state, cols, run, ref)

    def _fold_slice_generic(
        self,
        states: StateMap,
        view: EventSlice,
        type_refs: Optional[dict[str, list[EntityRef]]] = None,
        *,
        copy_shared: bool = False,
        shared: Optional[set] = None,
    ) -> None:
        """Fused slice fold: :class:`GenericReducer` semantics inlined
        into one row-order pass (see :meth:`fold_slice_into`).

        Branch for branch this is ``GenericReducer.fold_rows`` applied
        event-at-a-time in view order, so the result is identical to the
        grouped path and to per-event :meth:`fold_into` calls.
        """
        cols = view.arena
        ref_ids = cols.ref_ids
        ref_tuples = cols.ref_tuples
        kinds = cols.kinds
        payloads = cols.payloads
        lsns = cols.lsns
        timestamps = cols.timestamps
        by_rid: dict[int, EntityState] = {}
        by_rid_get = by_rid.get
        states_get = states.get
        for row in view.rows:
            rid = ref_ids[row]
            state = by_rid_get(rid)
            if state is None:
                ref = ref_tuples[rid]
                state = states_get(ref)
                if state is None:
                    if type_refs is not None:
                        type_refs.setdefault(ref[0], []).append(ref)
                    state = EntityState(ref[0], ref[1])
                elif copy_shared and ref in shared:
                    state = state.copy()
                    shared.discard(ref)
                by_rid[rid] = state
                states[ref] = state
            kind = kinds[row]
            if kind == _DELTA:
                fields = state.fields
                payload = payloads[row]
                numeric = payload.get("numeric")
                if numeric:
                    for name, amount in numeric.items():
                        fields[name] = fields.get(name, 0) + amount
                set_adds = payload.get("set_adds")
                if set_adds:
                    for name, additions in set_adds.items():
                        current = fields.get(name, frozenset())
                        fields[name] = frozenset(current) | frozenset(additions)
                set_removes = payload.get("set_removes")
                if set_removes:
                    for name, removals in set_removes.items():
                        current = fields.get(name, frozenset())
                        fields[name] = frozenset(current) - frozenset(removals)
            elif kind == _INSERT:
                state.fields.update(payloads[row])
                state.version_count += 1
            elif kind == _SET_FIELDS:
                stamp = (timestamps[row], cols.origin_at(row))
                stamps = state.field_stamps
                fields = state.fields
                for name, value in payloads[row].items():
                    if stamp >= stamps.get(name, _NO_STAMP):
                        fields[name] = value
                        stamps[name] = stamp
            elif kind == _TOMBSTONE:
                state.deleted = True
            elif kind == _OBSOLETE:
                state.obsolete = True
            elif kind == _SUMMARY:
                state.fields = dict(payloads[row])
                state.field_stamps = {}
                tags = cols.tags_at(row)
                if "deleted" in tags:
                    state.deleted = True
                if "obsolete" in tags:
                    state.obsolete = True
                if state.version_count < 1:
                    state.version_count = 1
            state.event_count += 1
            lsn = lsns[row]
            if lsn > state.last_lsn:
                state.last_lsn = lsn
            timestamp = timestamps[row]
            if timestamp > state.last_timestamp:
                state.last_timestamp = timestamp

    def fold(
        self,
        events: Iterable[LogEvent],
        initial: StateMap | None = None,
        *,
        copy_untouched: bool = False,
    ) -> StateMap:
        """Fold ``events`` (in the given order) over ``initial``.

        The initial map is not mutated; entity states are copied on
        first touch so snapshots can be shared safely.  Entities *not*
        touched by ``events`` remain shared with ``initial`` (exactly as
        before: ``dict(initial)`` shares values) unless
        ``copy_untouched=True``, which yields a fully isolated result
        map at the cost of one copy per untouched entity.
        """
        folder_for = self.folder_for
        if isinstance(events, EventSlice):
            # Columnar fast path: group-by-entity run folds, with the
            # same copy-on-first-touch discipline per entity run.
            if initial:
                states = dict(initial)
                shared = set(states)
                self.fold_slice_into(
                    states, events, copy_shared=True, shared=shared
                )
                if copy_untouched:
                    for ref in shared:
                        states[ref] = states[ref].copy()
                return states
            states = {}
            self.fold_slice_into(states, events)
            return states
        if initial:
            states: StateMap = dict(initial)
            # Refs whose state object is still shared with ``initial``;
            # the first event touching one folds over a private copy.
            shared = set(states)
            for event in events:
                ref = event.entity_ref
                state = states.get(ref)
                if state is not None and ref in shared:
                    state = state.copy()
                    shared.discard(ref)
                states[ref] = folder_for(event.entity_type)(state, event)
            if copy_untouched:
                for ref in shared:
                    states[ref] = states[ref].copy()
            return states
        # No initial map: every state is freshly created by the fold and
        # owned by the result, so the in-place path is safe throughout.
        states = {}
        for event in events:
            ref = event.entity_ref
            states[ref] = folder_for(event.entity_type)(states.get(ref), event)
        return states

    def fold_into(self, states: StateMap, event: LogEvent) -> None:
        """Fold one event into ``states`` in place (incremental cache
        maintenance on the append path).

        The caller must own ``states`` and every state in it — the
        in-place reducer path mutates them without copying.
        """
        ref = event.entity_ref
        states[ref] = self.folder_for(event.entity_type)(states.get(ref), event)


def fold_shards_parallel(
    rollup: Rollup,
    shard_slices: Iterable[EventSlice],
    max_workers: Optional[int] = None,
) -> list[StateMap]:
    """Fold independent serialization units' slices concurrently.

    Paper principle 2.5: partitions are separate serialization units
    with separate logs — their rollups share nothing, so they can fold
    in parallel.  Each shard's slice folds into its own fresh state map;
    results come back in input order.

    The workers are threads: the grouped columnar fold spends its time
    in C-level array/dict operations, so shards overlap where the
    interpreter releases the GIL and the helper degrades gracefully to
    sequential speed in the worst case (``bench_columnar.py`` records
    the measured ratio rather than gating on it).
    """
    shards = list(shard_slices)
    if len(shards) <= 1:
        return [rollup.fold(view) for view in shards]
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=max_workers or len(shards)) as pool:
        return list(pool.map(rollup.fold, shards))
