"""Columnar event storage: parallel arrays with lazy row materialization.

The log stores every event forever (insert-only storage, principle 2.7),
so raw append/scan throughput is the ceiling on the whole data plane.
PR 5 plateaued at ~500k events/sec created with per-event ``LogEvent``
object churn as the dominant cost: thirteen pointer writes, a payload
reference, an enum member, and two interned strings per record, plus a
Python object header — all for rows whose hot consumers (folds, frame
shipping, version-vector accounting) read two or three fields.

This module is the row-store→column-store shift: an
:class:`EventColumns` *arena* keeps the thirteen logical fields as
parallel columns —

.. code-block:: text

    row          0      1      2      3   ...
    lsns        [1,     2,     3,     4]       array('q')
    timestamps  [0.0,   0.1,   0.4,   0.9]     array('d')
    kinds       [0,     1,     1,     3]       array('b')   EventKind code
    ref_ids     [0,     0,     1,     0]       array('i')   → ref_tuples
    origin_ids  [0,     0,     1,     0]       array('i')   → origins
    origin_seqs [1,     2,     1,     3]       array('q')
    schema_vs   [1,     1,     1,     1]       array('i')
    payloads    [{...}, {...}, {...}, {...}]   list
    (tx/tags/trace/span: sparse dicts keyed by row; "" / frozenset())

— with entity refs and origin replica ids *dictionary-interned*: a
string appears once in the arena no matter how many million rows carry
it, and per-row columns store small integers in C arrays.  A full
:class:`~repro.lsdb.events.LogEvent` is materialized lazily, only when
an API boundary actually needs the object form.

The arena is *immortal*: rows are appended and never moved or freed, so
a row index is a stable forever-name for an event.  Log compaction
(``rewrite_prefix``) changes which rows are *live*, never the rows
themselves — which is exactly what the anti-entropy feeds need, since
they ship raw pre-compaction originals by arena row long after the live
log has been summarised.

Three views complete the picture:

* :class:`EventSlice` — a read-only ``Sequence`` of events backed by
  ``(arena, rows)``; feed methods return these instead of list copies.
* :class:`ColumnFrame` — the zero-copy wire codec: a self-contained
  frame holding column slices plus frame-local ref/origin tables, so a
  receiver interns each distinct string once per frame rather than
  hashing strings once per event.
* ``KIND_CODES`` / ``CODE_KINDS`` — the fixed :class:`EventKind`
  encoding shared by arenas and frames (definition order, so the codes
  are a wire-stable contract).
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from typing import Any, Iterator, Mapping, Optional

from repro.lsdb.events import EventKind, LogEvent

_EMPTY_TAGS: frozenset[str] = frozenset()

# EventKind codes in definition order: INSERT=0, DELTA=1, SET_FIELDS=2,
# TOMBSTONE=3, OBSOLETE=4, SUMMARY=5.  Global constants shared by every
# arena and every frame, so decode never translates kind codes.
KIND_CODES: dict[EventKind, int] = {
    kind: code for code, kind in enumerate(EventKind)
}
CODE_KINDS: tuple[EventKind, ...] = tuple(EventKind)


class StringDictionary:
    """Bidirectional string interning: string ↔ dense integer id.

    One dictionary lookup on the append path (``dict.setdefault``), one
    list index on the read path.  Ids are dense and allocation-ordered,
    so a column of ids round-trips through ``array('i')``.
    """

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._values: list[str] = []

    def __len__(self) -> int:
        return len(self._values)

    def intern(self, value: str) -> int:
        """Id for ``value``, allocating one on first sight."""
        ident = self._ids.setdefault(value, len(self._values))
        if ident == len(self._values):
            self._values.append(value)
        return ident

    def value(self, ident: int) -> str:
        """The string behind ``ident`` (O(1) list index)."""
        return self._values[ident]

    def lookup(self, value: str) -> Optional[int]:
        """Id for ``value`` if already interned, else ``None``."""
        return self._ids.get(value)


class EventColumns:
    """The immortal columnar arena: one growing column per event field.

    Rows are append-only and never freed; every integer row index handed
    out stays valid for the life of the arena.  Entity refs are interned
    through a two-level string map (type → key → ref id) so the append
    path never allocates a lookup tuple, and ``ref_tuples`` keeps one
    shared ``(type, key)`` tuple per distinct entity for the read path.
    """

    __slots__ = (
        "lsns",
        "timestamps",
        "kinds",
        "ref_ids",
        "origin_ids",
        "origin_seqs",
        "schema_versions",
        "payloads",
        "origins",
        "ref_tuples",
        "_ref_lookup",
        "tx_ids",
        "tags",
        "trace_ids",
        "span_ids",
    )

    def __init__(self) -> None:
        self.lsns = array("q")
        self.timestamps = array("d")
        self.kinds = array("b")
        self.ref_ids = array("i")
        self.origin_ids = array("i")
        self.origin_seqs = array("q")
        self.schema_versions = array("i")
        self.payloads: list[Mapping[str, Any]] = []
        self.origins = StringDictionary()
        self.ref_tuples: list[tuple[str, str]] = []
        self._ref_lookup: dict[str, dict[str, int]] = {}
        # Sparse columns: almost every row has the default ("" or the
        # empty tag set), so a dict keyed by row beats a dense column.
        self.tx_ids: dict[int, str] = {}
        self.tags: dict[int, frozenset[str]] = {}
        self.trace_ids: dict[int, str] = {}
        self.span_ids: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self.lsns)

    # ------------------------------------------------------------- #
    # Interning
    # ------------------------------------------------------------- #

    def ref_id(self, entity_type: str, entity_key: str) -> int:
        """Intern ``(entity_type, entity_key)``; returns its dense id."""
        by_key = self._ref_lookup.get(entity_type)
        if by_key is None:
            by_key = self._ref_lookup[entity_type] = {}
        rid = by_key.get(entity_key)
        if rid is None:
            rid = by_key[entity_key] = len(self.ref_tuples)
            self.ref_tuples.append((entity_type, entity_key))
        return rid

    def lookup_ref(self, entity_type: str, entity_key: str) -> Optional[int]:
        """Ref id if the entity has ever been seen, else ``None``."""
        by_key = self._ref_lookup.get(entity_type)
        if by_key is None:
            return None
        return by_key.get(entity_key)

    # ------------------------------------------------------------- #
    # Appends
    # ------------------------------------------------------------- #

    def append_row(
        self,
        lsn: int,
        timestamp: float,
        entity_type: str,
        entity_key: str,
        kind: EventKind,
        payload: Mapping[str, Any],
        origin: str = "local",
        origin_seq: int = 0,
        tx_id: str = "",
        schema_version: int = 1,
        tags: frozenset[str] = _EMPTY_TAGS,
        trace_id: str = "",
        span_id: str = "",
    ) -> int:
        """Append one event from loose fields; returns its arena row.

        This is the hot ingestion path: eight C-array/list appends plus
        two interning lookups, no ``LogEvent`` object.  The ref
        interning is :meth:`ref_id` inlined — at millions of calls the
        function-call overhead alone is measurable.
        """
        lsns = self.lsns
        row = len(lsns)
        lsns.append(lsn)
        self.timestamps.append(timestamp)
        self.kinds.append(KIND_CODES[kind])
        by_key = self._ref_lookup.get(entity_type)
        if by_key is None:
            by_key = self._ref_lookup[entity_type] = {}
        rid = by_key.get(entity_key)
        if rid is None:
            rid = by_key[entity_key] = len(self.ref_tuples)
            self.ref_tuples.append((entity_type, entity_key))
        self.ref_ids.append(rid)
        self.origin_ids.append(self.origins.intern(origin))
        self.origin_seqs.append(origin_seq)
        self.schema_versions.append(schema_version)
        self.payloads.append(payload)
        if tx_id:
            self.tx_ids[row] = tx_id
        if tags:
            self.tags[row] = tags
        if trace_id:
            self.trace_ids[row] = trace_id
        if span_id:
            self.span_ids[row] = span_id
        return row

    def append_event(self, event: LogEvent, lsn: int) -> int:
        """Append a materialized event under ``lsn``; returns its row."""
        return self.append_row(
            lsn,
            event.timestamp,
            event.entity_type,
            event.entity_key,
            event.kind,
            event.payload,
            event.origin,
            event.origin_seq,
            event.tx_id,
            event.schema_version,
            event.tags,
            event.trace_id,
            event.span_id,
        )

    # ------------------------------------------------------------- #
    # Row reads
    # ------------------------------------------------------------- #

    def event_at(self, row: int) -> LogEvent:
        """Materialize the :class:`LogEvent` stored at ``row``."""
        entity_type, entity_key = self.ref_tuples[self.ref_ids[row]]
        return LogEvent.build(
            self.lsns[row],
            self.timestamps[row],
            entity_type,
            entity_key,
            CODE_KINDS[self.kinds[row]],
            self.payloads[row],
            self.origins.value(self.origin_ids[row]),
            self.origin_seqs[row],
            self.tx_ids.get(row, ""),
            self.schema_versions[row],
            self.tags.get(row, _EMPTY_TAGS),
            self.trace_ids.get(row, ""),
            self.span_ids.get(row, ""),
        )

    def ref_at(self, row: int) -> tuple[str, str]:
        """The shared ``(entity_type, entity_key)`` tuple for ``row``."""
        return self.ref_tuples[self.ref_ids[row]]

    def origin_at(self, row: int) -> str:
        """Origin replica id string for ``row``."""
        return self.origins.value(self.origin_ids[row])

    def identity_at(self, row: int) -> tuple[str, int]:
        """``(origin, origin_seq)`` for ``row``."""
        return (self.origin_at(row), self.origin_seqs[row])

    def tags_at(self, row: int) -> frozenset[str]:
        """Tag set for ``row`` (shared empty set when untagged)."""
        return self.tags.get(row, _EMPTY_TAGS)


class EventSlice(Sequence):
    """A read-only view of arena rows that quacks like a list of events.

    Feed methods return these instead of materialized lists: the view is
    ``(arena, rows)`` where ``rows`` is a ``range`` (contiguous suffix —
    zero copies) or a list of row indices.  Events materialize one at a
    time, on access, so a consumer that only reads ``len()`` or the last
    LSN never pays for object construction at all.
    """

    __slots__ = ("arena", "rows")

    def __init__(self, arena: EventColumns, rows) -> None:
        self.arena = arena
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return len(self.rows) > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EventSlice(self.arena, self.rows[index])
        return self.arena.event_at(self.rows[index])

    def __iter__(self) -> Iterator[LogEvent]:
        event_at = self.arena.event_at
        for row in self.rows:
            yield event_at(row)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, EventSlice):
            if self.arena is other.arena and self.rows == other.rows:
                return True
        if not isinstance(other, Sequence) or isinstance(other, (str, bytes)):
            return NotImplemented
        if len(other) != len(self.rows):
            return False
        return all(mine == theirs for mine, theirs in zip(self, other))

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # type: ignore[assignment]

    def __add__(self, other) -> list[LogEvent]:
        return list(self) + list(other)

    def __radd__(self, other) -> list[LogEvent]:
        return list(other) + list(self)

    def __repr__(self) -> str:
        return f"EventSlice({len(self.rows)} rows)"

    def lsn_at(self, index: int) -> int:
        """LSN of the ``index``-th event without materializing it."""
        return self.arena.lsns[self.rows[index]]

    def identities(self) -> list[tuple[str, int]]:
        """All ``(origin, origin_seq)`` identities, built in one bulk
        pass over the columns (no per-event ``LogEvent`` or property
        call)."""
        arena = self.arena
        origin_ids = arena.origin_ids
        seqs = arena.origin_seqs
        value = arena.origins.value
        return [(value(origin_ids[r]), seqs[r]) for r in self.rows]

    def to_events(self) -> list[LogEvent]:
        """Materialize the whole view as a plain list."""
        return list(self)


class ColumnFrame:
    """Zero-copy wire codec: a self-contained batch of event columns.

    Encoding slices the arena's C arrays directly (a ``memcpy``, no
    Python-object hops) and builds *frame-local* dictionaries: each
    distinct entity ref and origin string appears once in the frame's
    ``ref_table`` / ``origin_table``, and the per-event columns carry
    small frame-local codes.  Decoding therefore interns each distinct
    string once per frame — one dictionary lookup per *batch value*, not
    one per event — and bulk-extends the receiver's arena columns.

    Kind codes are the global ``KIND_CODES`` contract, so they cross the
    wire untranslated.  Payload mappings are shared by reference, as the
    in-memory simulated network shares all message objects.
    """

    __slots__ = (
        "lsns",
        "timestamps",
        "kinds",
        "ref_codes",
        "origin_codes",
        "origin_seqs",
        "schema_versions",
        "payloads",
        "ref_table",
        "origin_table",
        "tx_ids",
        "tags",
        "trace_ids",
        "span_ids",
    )

    def __len__(self) -> int:
        return len(self.lsns)

    @classmethod
    def from_slice(cls, view: EventSlice) -> "ColumnFrame":
        """Encode an :class:`EventSlice` into a frame."""
        arena = view.arena
        rows = view.rows
        frame = object.__new__(cls)
        if isinstance(rows, range) and rows.step == 1:
            lo, hi = rows.start, rows.stop
            frame.lsns = arena.lsns[lo:hi]
            frame.timestamps = arena.timestamps[lo:hi]
            frame.kinds = arena.kinds[lo:hi]
            frame.origin_seqs = arena.origin_seqs[lo:hi]
            frame.schema_versions = arena.schema_versions[lo:hi]
            frame.payloads = arena.payloads[lo:hi]
            ref_codes = arena.ref_ids[lo:hi]
            origin_codes = arena.origin_ids[lo:hi]
        else:
            frame.lsns = array("q", (arena.lsns[r] for r in rows))
            frame.timestamps = array("d", (arena.timestamps[r] for r in rows))
            frame.kinds = array("b", (arena.kinds[r] for r in rows))
            frame.origin_seqs = array(
                "q", (arena.origin_seqs[r] for r in rows)
            )
            frame.schema_versions = array(
                "i", (arena.schema_versions[r] for r in rows)
            )
            frame.payloads = [arena.payloads[r] for r in rows]
            ref_codes = array("i", (arena.ref_ids[r] for r in rows))
            origin_codes = array("i", (arena.origin_ids[r] for r in rows))
        # Re-code arena ids to frame-local tables (one table entry per
        # distinct value; the remap is an int-keyed dict hit per row).
        ref_map: dict[int, int] = {}
        ref_table: list[tuple[str, str]] = []
        ref_tuples = arena.ref_tuples
        for index, rid in enumerate(ref_codes):
            code = ref_map.get(rid)
            if code is None:
                code = ref_map[rid] = len(ref_table)
                ref_table.append(ref_tuples[rid])
            ref_codes[index] = code
        origin_map: dict[int, int] = {}
        origin_table: list[str] = []
        origin_value = arena.origins.value
        for index, oid in enumerate(origin_codes):
            code = origin_map.get(oid)
            if code is None:
                code = origin_map[oid] = len(origin_table)
                origin_table.append(origin_value(oid))
            origin_codes[index] = code
        frame.ref_codes = ref_codes
        frame.origin_codes = origin_codes
        frame.ref_table = ref_table
        frame.origin_table = origin_table
        # Sparse columns, re-keyed to frame positions.  Guarded on the
        # arena dict being non-empty so untagged/untraced arenas pay
        # nothing.
        frame.tx_ids = cls._gather_sparse(arena.tx_ids, rows)
        frame.tags = cls._gather_sparse(arena.tags, rows)
        frame.trace_ids = cls._gather_sparse(arena.trace_ids, rows)
        frame.span_ids = cls._gather_sparse(arena.span_ids, rows)
        return frame

    @staticmethod
    def _gather_sparse(column: dict, rows) -> dict:
        if not column:
            return {}
        return {
            index: column[row]
            for index, row in enumerate(rows)
            if row in column
        }

    # ------------------------------------------------------------- #
    # Decode-side reads
    # ------------------------------------------------------------- #

    def origin_strings(self) -> list[str]:
        """Per-event origin strings, via one list-index per event."""
        table = self.origin_table
        return [table[code] for code in self.origin_codes]

    def identities(self) -> list[tuple[str, int]]:
        """Bulk ``(origin, origin_seq)`` identities for dedup checks."""
        table = self.origin_table
        return [
            (table[code], seq)
            for code, seq in zip(self.origin_codes, self.origin_seqs)
        ]

    def event_at(self, index: int) -> LogEvent:
        """Materialize one event (per-event fallback paths only)."""
        entity_type, entity_key = self.ref_table[self.ref_codes[index]]
        return LogEvent.build(
            self.lsns[index],
            self.timestamps[index],
            entity_type,
            entity_key,
            CODE_KINDS[self.kinds[index]],
            self.payloads[index],
            self.origin_table[self.origin_codes[index]],
            self.origin_seqs[index],
            self.tx_ids.get(index, ""),
            self.schema_versions[index],
            self.tags.get(index, _EMPTY_TAGS),
            self.trace_ids.get(index, ""),
            self.span_ids.get(index, ""),
        )

    def events(self) -> list[LogEvent]:
        """Materialize every event in the frame."""
        return [self.event_at(index) for index in range(len(self.lsns))]
