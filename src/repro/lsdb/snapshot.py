"""Snapshots: bounding the cost of rollup reads.

Rollup from the log head is linear in log length; the paper's remedy is
main-memory techniques (section 3.1).  This module implements the
standard one: periodic snapshots of the rolled-up state, so a read is
"latest snapshot at or below the target LSN, plus replay of the suffix".
Experiment E6 sweeps the snapshot interval to show the read-cost curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lsdb.log import AppendOnlyLog
from repro.lsdb.rollup import Rollup, StateMap


@dataclass
class Snapshot:
    """A frozen rollup of the log prefix up to ``lsn`` (inclusive)."""

    lsn: int
    states: StateMap

    def copy_states(self) -> StateMap:
        """A mutation-safe copy of the state map (entity states copied)."""
        return {ref: state.copy() for ref, state in self.states.items()}


class SnapshotManager:
    """Takes and serves snapshots over one log.

    Args:
        log: The log to snapshot.
        rollup: The rollup (with its reducers) defining state semantics.
        interval: Take a snapshot automatically every ``interval``
            appends (``0`` disables automatic snapshots; call
            :meth:`take_snapshot` manually).

    Example:
        >>> from repro.lsdb.events import EventKind, LogEvent
        >>> log = AppendOnlyLog()
        >>> manager = SnapshotManager(log, Rollup(), interval=2)
        >>> for value in range(5):
        ...     _ = log.append(LogEvent(0, float(value), "t", "k",
        ...                             EventKind.SET_FIELDS, {"v": value}))
        >>> manager.latest().lsn
        4
        >>> manager.state_at(5)[("t", "k")].fields["v"]
        4
    """

    def __init__(self, log: AppendOnlyLog, rollup: Rollup, interval: int = 0):
        self.log = log
        self.rollup = rollup
        self.interval = interval
        self._snapshots: list[Snapshot] = []
        self._since_last = 0
        if interval:
            # Counts channel: snapshot cadence never needs the events,
            # so no materialization happens on its account.
            log.subscribe_counts(self._on_appends)

    def _on_appends(self, count: int) -> None:
        self._since_last += count
        if self._since_last >= self.interval:
            self.take_snapshot()

    def take_snapshot(self) -> Snapshot:
        """Roll up the whole log prefix now and store the result.

        The fold starts from the previous snapshot (if any), so the cost
        of snapshotting is proportional to the events since the last
        snapshot, not to the whole log.  States untouched since the
        previous snapshot are *shared* with it (both are frozen), so a
        snapshot costs O(suffix), not O(entities).
        """
        previous = self.latest()
        if previous is None:
            states = self.rollup.fold(self.log.events())
        else:
            states = self.rollup.fold(
                self.log.since(previous.lsn), initial=previous.states
            )
        snapshot = Snapshot(lsn=self.log.head_lsn, states=states)
        self._snapshots.append(snapshot)
        self._since_last = 0
        return snapshot

    def latest(self) -> Optional[Snapshot]:
        """The most recent snapshot, or ``None`` if none taken yet."""
        return self._snapshots[-1] if self._snapshots else None

    def latest_at_or_below(self, lsn: int) -> Optional[Snapshot]:
        """The newest snapshot whose LSN does not exceed ``lsn``."""
        candidate: Optional[Snapshot] = None
        for snapshot in self._snapshots:
            if snapshot.lsn <= lsn:
                candidate = snapshot
            else:
                break
        return candidate

    def state_at(self, lsn: Optional[int] = None) -> StateMap:
        """The rolled-up state as of ``lsn`` (defaults to the log head).

        Implements snapshot + suffix replay; with no usable snapshot it
        falls back to a full fold, which is the worst case experiment E6
        measures.
        """
        target = self.log.head_lsn if lsn is None else lsn
        base = self.latest_at_or_below(target)
        if base is None:
            return self.rollup.fold(self.log.up_to(target))
        suffix = self.log.between(base.lsn, target)
        # ``copy_untouched`` keeps the returned map fully isolated from
        # the stored snapshot (callers may mutate what they read) while
        # copying each entity exactly once.
        return self.rollup.fold(suffix, initial=base.states, copy_untouched=True)

    @property
    def count(self) -> int:
        """How many snapshots exist."""
        return len(self._snapshots)

    def prune(self, keep_last: int = 1) -> int:
        """Drop all but the newest ``keep_last`` snapshots.

        Returns the number pruned.  Time-travel reads below the oldest
        kept snapshot fall back to full log fold (if those events are
        still live) — pruning trades history-read speed for memory.
        """
        if keep_last < 0:
            raise ValueError(f"keep_last must be non-negative, got {keep_last}")
        pruned = max(0, len(self._snapshots) - keep_last)
        if pruned:
            self._snapshots = self._snapshots[-keep_last:] if keep_last else []
        return pruned
