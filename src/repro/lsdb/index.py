"""Asynchronously maintained secondary indexes.

Principle 2.3 (after Helland): "inconsistency of secondary indexes is
necessary for highly scalable systems".  A :class:`SecondaryIndex` is
therefore *not* updated on the transaction's append path; it records how
far into the log it has applied (``applied_lsn``) and catches up when
:meth:`refresh` is called (by a background task in the simulator, or
manually in tests).  Between appends and refreshes the index is stale —
queries can miss new entities or return recently deleted ones — and the
staleness is observable and measurable (experiment E2's probe uses the
same mechanism).
"""

from __future__ import annotations

from typing import Any, Hashable, Optional

from repro.lsdb.log import AppendOnlyLog
from repro.lsdb.rollup import EntityRef, Rollup, StateMap


class SecondaryIndex:
    """An equality index on one field of one entity type.

    Args:
        log: The log whose events feed the index.
        rollup: The rollup defining field semantics (deltas etc.).
        entity_type: The indexed entity type.
        field_name: The indexed field.

    Example:
        >>> # index lookups reflect only refreshed state:
        >>> # store.insert(...); index.lookup(v) may be empty until
        >>> # index.refresh() is called.
    """

    def __init__(
        self,
        log: AppendOnlyLog,
        rollup: Rollup,
        entity_type: str,
        field_name: str,
    ):
        self.log = log
        self.rollup = rollup
        self.entity_type = entity_type
        self.field_name = field_name
        self.applied_lsn = 0
        self._states: StateMap = {}
        self._buckets: dict[Hashable, set[str]] = {}

    def refresh(self, up_to_lsn: Optional[int] = None) -> int:
        """Apply log events appended since the last refresh.

        Args:
            up_to_lsn: Stop at this LSN (defaults to the log head);
                useful for scripting a fixed index lag in experiments.

        Returns:
            The number of events applied.
        """
        target = self.log.head_lsn if up_to_lsn is None else up_to_lsn
        applied = self.log.count_between(self.applied_lsn, target)
        if applied == 0:
            return 0
        # Only this type's events need folding; the typed feed skips the
        # rest instead of filtering the whole suffix event by event.
        for event in self.log.for_type_since(
            self.entity_type, self.applied_lsn, target
        ):
            self._apply(event)
        self.applied_lsn = self.log.last_lsn_at_or_below(target)
        return applied

    def _apply(self, event) -> None:
        ref: EntityRef = event.entity_ref
        old_state = self._states.get(ref)
        old_value = old_state.get(self.field_name) if old_state else None
        old_live = old_state.live if old_state else False
        # The index exclusively owns its state map, so the in-place fold
        # path is safe (old value/liveness are captured above).
        new_state = self.rollup.folder_for(self.entity_type)(old_state, event)
        self._states[ref] = new_state
        new_value = new_state.get(self.field_name)
        new_live = new_state.live
        if old_live and (not new_live or new_value != old_value):
            bucket = self._buckets.get(old_value)
            if bucket is not None:
                bucket.discard(ref[1])
                if not bucket:
                    del self._buckets[old_value]
        if new_live and (not old_live or new_value != old_value):
            self._buckets.setdefault(new_value, set()).add(ref[1])

    def lookup(self, value: Any) -> set[str]:
        """Entity keys whose indexed field equals ``value`` *as of the
        last refresh* — staleness is part of the contract."""
        return set(self._buckets.get(value, set()))

    @property
    def lag(self) -> int:
        """How many LSNs the index is behind the log head."""
        return self.log.head_lsn - self.applied_lsn

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SecondaryIndex({self.entity_type}.{self.field_name}, "
            f"applied={self.applied_lsn}, lag={self.lag})"
        )
