"""Asynchronously maintained secondary indexes.

Principle 2.3 (after Helland): "inconsistency of secondary indexes is
necessary for highly scalable systems".  A :class:`SecondaryIndex` is
therefore *not* updated on the transaction's append path; it records how
far into the log it has applied (``applied_lsn``) and catches up when
:meth:`refresh` is called (by a background task in the simulator, or
manually in tests).  Between appends and refreshes the index is stale —
queries can miss new entities or return recently deleted ones — and the
staleness is observable and measurable (experiment E2's probe uses the
same mechanism).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

from repro.lsdb.log import AppendOnlyLog
from repro.lsdb.rollup import EntityRef, Rollup, StateMap


class SecondaryIndex:
    """An equality index on one field of one entity type.

    Args:
        log: The log whose events feed the index.
        rollup: The rollup defining field semantics (deltas etc.).
        entity_type: The indexed entity type.
        field_name: The indexed field.
        tracer: Optional :class:`repro.obs.Tracer`; each refreshed event
            then gets an ``index.refresh`` span chained (via
            ``span_of``) to the span that stored the event, making the
            staleness window visible as the gap between parent and
            child span times.
        metrics: Optional :class:`repro.obs.MetricsRegistry` for the
            refresh counter and lag gauge (labelled type.field).
        node: Node/replica name stamped on refresh spans.
        span_of: Callable mapping an event to the span id it was stored
            under (the owning store provides this).

    Example:
        >>> # index lookups reflect only refreshed state:
        >>> # store.insert(...); index.lookup(v) may be empty until
        >>> # index.refresh() is called.
    """

    def __init__(
        self,
        log: AppendOnlyLog,
        rollup: Rollup,
        entity_type: str,
        field_name: str,
        tracer=None,
        metrics=None,
        node: str = "",
        span_of: Optional[Callable[[Any], Optional[str]]] = None,
    ):
        self.log = log
        self.rollup = rollup
        self.entity_type = entity_type
        self.field_name = field_name
        self.applied_lsn = 0
        self._states: StateMap = {}
        self._buckets: dict[Hashable, set[str]] = {}
        self.tracer = tracer
        self.node = node
        self._span_of = span_of
        if metrics is not None:
            label = f"{entity_type}.{field_name}"
            self._m_refreshed = metrics.counter("index.refreshed", index=label)
            self._g_lag = metrics.gauge("index.lag", index=label)
        else:
            self._m_refreshed = self._g_lag = None

    def refresh(self, up_to_lsn: Optional[int] = None) -> int:
        """Apply log events appended since the last refresh.

        Args:
            up_to_lsn: Stop at this LSN (defaults to the log head);
                useful for scripting a fixed index lag in experiments.

        Returns:
            The number of events applied.
        """
        target = self.log.head_lsn if up_to_lsn is None else up_to_lsn
        applied = self.log.count_between(self.applied_lsn, target)
        if applied == 0:
            if self._g_lag is not None:
                self._g_lag.set(self.lag)
            return 0
        # Only this type's events need folding; the typed feed skips the
        # rest instead of filtering the whole suffix event by event.
        tracer = self.tracer
        feed = self.log.for_type_since(self.entity_type, self.applied_lsn, target)
        if tracer is None:
            # Columnar catch-up: fold straight from the feed's arena
            # rows, never materializing the events.
            arena = feed.arena
            apply_row = self._apply_row
            for row in feed.rows:
                apply_row(arena, row)
        else:
            for event in feed:
                self._apply(event)
                parent = self._span_of(event) if self._span_of else None
                tracer.end_span(
                    tracer.start_span(
                        "index.refresh",
                        parent=parent or event.span_id or None,
                        node=self.node,
                        field=f"{self.entity_type}.{self.field_name}",
                        lsn=event.lsn,
                    )
                )
        self.applied_lsn = self.log.last_lsn_at_or_below(target)
        if self._m_refreshed is not None:
            self._m_refreshed.inc(applied)
        if self._g_lag is not None:
            self._g_lag.set(self.lag)
        return applied

    def _apply(self, event) -> None:
        ref: EntityRef = event.entity_ref
        old_state = self._states.get(ref)
        old_value = old_state.get(self.field_name) if old_state else None
        old_live = old_state.live if old_state else False
        # The index exclusively owns its state map, so the in-place fold
        # path is safe (old value/liveness are captured above).
        new_state = self.rollup.folder_for(self.entity_type)(old_state, event)
        self._move_buckets(ref, new_state, old_value, old_live)

    def _apply_row(self, arena, row: int) -> None:
        """Columnar twin of :meth:`_apply`: folds one arena row."""
        ref: EntityRef = arena.ref_tuples[arena.ref_ids[row]]
        old_state = self._states.get(ref)
        old_value = old_state.get(self.field_name) if old_state else None
        old_live = old_state.live if old_state else False
        new_state = self.rollup.rows_folder_for(self.entity_type)(
            old_state, arena, (row,), ref
        )
        self._move_buckets(ref, new_state, old_value, old_live)

    def _move_buckets(self, ref, new_state, old_value, old_live) -> None:
        self._states[ref] = new_state
        new_value = new_state.get(self.field_name)
        new_live = new_state.live
        if old_live and (not new_live or new_value != old_value):
            bucket = self._buckets.get(old_value)
            if bucket is not None:
                bucket.discard(ref[1])
                if not bucket:
                    del self._buckets[old_value]
        if new_live and (not old_live or new_value != old_value):
            self._buckets.setdefault(new_value, set()).add(ref[1])

    def lookup(self, value: Any) -> set[str]:
        """Entity keys whose indexed field equals ``value`` *as of the
        last refresh* — staleness is part of the contract."""
        return set(self._buckets.get(value, set()))

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #

    def snapshot(self):
        """Freeze the index (buckets, fold states, applied LSN) for a
        store checkpoint; the copies share nothing mutable with the
        live index."""
        from repro.lsdb.checkpoint import IndexSnapshot

        return IndexSnapshot(
            applied_lsn=self.applied_lsn,
            buckets={value: set(keys) for value, keys in self._buckets.items()},
            states={ref: state.copy() for ref, state in self._states.items()},
        )

    def restore(self, snapshot) -> None:
        """Reinstall a frozen snapshot (copying out of it, so the same
        checkpoint can be restored more than once)."""
        self.applied_lsn = snapshot.applied_lsn
        self._buckets = {
            value: set(keys) for value, keys in snapshot.buckets.items()
        }
        self._states = {
            ref: state.copy() for ref, state in snapshot.states.items()
        }

    def reset(self) -> None:
        """Forget everything; the next refresh re-folds from LSN 0."""
        self.applied_lsn = 0
        self._buckets = {}
        self._states = {}

    @property
    def lag(self) -> int:
        """How many LSNs the index is behind the log head."""
        return self.log.head_lsn - self.applied_lsn

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SecondaryIndex({self.entity_type}.{self.field_name}, "
            f"applied={self.applied_lsn}, lag={self.lag})"
        )
