"""The append-only event log — one per serialization unit.

Paper principle 2.5: "A single organization may partition data by entity
type and key, where partitions are managed as separate 'serialization
units' with separate logs."  An :class:`AppendOnlyLog` is such a log:
appends are totally ordered by LSN within the log, and there is no
cross-log ordering (that absence is precisely what makes cross-partition
transactions expensive, measured in experiment E3).

The only structural mutation besides append is :meth:`rewrite_prefix`,
used by compaction (:mod:`repro.lsdb.compaction`) to replace a prefix of
old events with summary events — the "data summarization and archival
functionality" of principle 2.7.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.errors import ReproError
from repro.lsdb.events import EventKind, LogEvent


class AppendOnlyLog:
    """An ordered, in-memory, append-only sequence of :class:`LogEvent`.

    LSNs start at 1 and never repeat, even across compactions: a rewrite
    may *remove* LSNs from the live log but never reassigns them, so
    "events since LSN x" remains meaningful to subscribers after a
    compaction.

    Args:
        name: Diagnostic name (usually the owning serialization unit).
    """

    def __init__(self, name: str = "log"):
        self.name = name
        self._events: list[LogEvent] = []
        self._next_lsn = 1
        self._subscribers: list[Callable[[LogEvent], None]] = []

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append(self, event: LogEvent) -> LogEvent:
        """Append ``event``, assigning the next LSN.

        Returns:
            The stored event (a copy of ``event`` with its LSN set).
        """
        stored = event.with_lsn(self._next_lsn)
        self._next_lsn += 1
        self._events.append(stored)
        for subscriber in self._subscribers:
            subscriber(stored)
        return stored

    def subscribe(self, callback: Callable[[LogEvent], None]) -> None:
        """Invoke ``callback`` synchronously for every future append.

        Used by incremental state caches, asynchronous index maintenance
        and replication shippers.
        """
        self._subscribers.append(callback)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def head_lsn(self) -> int:
        """LSN of the most recent event (0 if the log is empty)."""
        return self._events[-1].lsn if self._events else 0

    @property
    def tail_lsn(self) -> int:
        """LSN of the oldest *live* event (0 if empty); events below
        this were compacted away."""
        return self._events[0].lsn if self._events else 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self._events)

    def events(self) -> list[LogEvent]:
        """A shallow copy of the live events, in LSN order."""
        return list(self._events)

    def since(self, lsn: int) -> list[LogEvent]:
        """Events with LSN strictly greater than ``lsn``.

        This is the replication/catch-up primitive: a subscriber that has
        applied up to ``lsn`` calls ``since(lsn)`` to fetch its backlog.
        """
        if not self._events or lsn >= self._events[-1].lsn:
            return []
        low = self._bisect_gt(lsn)
        return self._events[low:]

    def up_to(self, lsn: int) -> list[LogEvent]:
        """Events with LSN less than or equal to ``lsn``."""
        high = self._bisect_gt(lsn)
        return self._events[:high]

    def for_entity(self, entity_type: str, entity_key: str) -> list[LogEvent]:
        """The full live history of one entity, in LSN order.

        This is the audit/history view principle 2.7 calls for ("past
        descriptions are available"), e.g. tracing which operations drove
        inventory negative (principle 2.1).
        """
        return [
            event
            for event in self._events
            if event.entity_type == entity_type and event.entity_key == entity_key
        ]

    def _bisect_gt(self, lsn: int) -> int:
        """Index of the first event with LSN > ``lsn``."""
        import bisect

        return bisect.bisect_right([event.lsn for event in self._events], lsn)

    # ------------------------------------------------------------------ #
    # Compaction support
    # ------------------------------------------------------------------ #

    def rewrite_prefix(
        self,
        up_to_lsn: int,
        replacement: Iterable[LogEvent],
    ) -> list[LogEvent]:
        """Replace all events with LSN <= ``up_to_lsn`` by ``replacement``.

        Replacement events must already carry LSNs within the replaced
        range and in ascending order (the compactor reuses the LSN of the
        last summarised event so "since" queries stay correct).

        Returns:
            The removed events (the caller archives them).

        Raises:
            ReproError: If a replacement event's LSN falls outside the
                replaced range or breaks ordering.
        """
        cut = self._bisect_gt(up_to_lsn)
        removed = self._events[:cut]
        replacement_list = list(replacement)
        previous = 0
        for event in replacement_list:
            if event.lsn <= previous or event.lsn > up_to_lsn:
                raise ReproError(
                    f"replacement LSN {event.lsn} outside (0, {up_to_lsn}]"
                )
            previous = event.lsn
        self._events = replacement_list + self._events[cut:]
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AppendOnlyLog({self.name!r}, live={len(self._events)}, "
            f"head={self.head_lsn})"
        )
