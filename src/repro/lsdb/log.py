"""The append-only event log — one per serialization unit.

Paper principle 2.5: "A single organization may partition data by entity
type and key, where partitions are managed as separate 'serialization
units' with separate logs."  An :class:`AppendOnlyLog` is such a log:
appends are totally ordered by LSN within the log, and there is no
cross-log ordering (that absence is precisely what makes cross-partition
transactions expensive, measured in experiment E3).

Since PR 6 the log is *columnar*: events live in an
:class:`~repro.lsdb.columnar.EventColumns` arena (parallel C arrays plus
interned strings) and the log itself only tracks which arena rows are
live, in what order.  Feed methods return
:class:`~repro.lsdb.columnar.EventSlice` views — lightweight
``(arena, rows)`` pairs that materialize :class:`LogEvent` objects
lazily — instead of list copies.

The only structural mutation besides append is :meth:`rewrite_prefix`,
used by compaction (:mod:`repro.lsdb.compaction`) to replace a prefix of
old events with summary events — the "data summarization and archival
functionality" of principle 2.7.  The arena is immortal: a rewrite
changes the live row set, never the rows, so views handed out before a
compaction (per-origin anti-entropy feeds, archives) stay valid.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional

from repro.errors import ReproError
from repro.lsdb.columnar import (
    _EMPTY_TAGS,
    ColumnFrame,
    EventColumns,
    EventSlice,
)
from repro.lsdb.events import EventKind, LogEvent


class AppendOnlyLog:
    """An ordered, in-memory, append-only sequence of :class:`LogEvent`.

    LSNs start at 1 and never repeat, even across compactions: a rewrite
    may *remove* LSNs from the live log but never reassigns them, so
    "events since LSN x" remains meaningful to subscribers after a
    compaction.

    Storage is columnar: one :class:`EventColumns` arena per log, with
    the live log represented as either *all arena rows in order* (the
    common, never-compacted case — no per-row bookkeeping at all, and
    feed positions are pure arithmetic because live LSNs are exactly
    ``1..n``) or an explicit row list plus a parallel LSN array after
    the first :meth:`rewrite_prefix`.

    Feeds are indexed: :meth:`since` / :meth:`up_to` are O(log n) to
    locate plus O(1) to return (they hand back views, not copies), and
    per-entity / per-type row indexes make :meth:`for_entity` and
    :meth:`for_type_since` O(result) integers copied rather than
    O(result) objects.

    Three subscription channels serve the three kinds of consumer:

    * :meth:`subscribe` — legacy per-event callbacks; sees every
      append, including each event of a bulk frame apply, as a
      materialized :class:`LogEvent` (materialized lazily, only when
      such subscribers exist).
    * :meth:`subscribe_columnar` — ``(on_row, on_batch)`` pairs that
      read columns directly; the store's incremental cache lives here.
    * :meth:`subscribe_counts` — append-count callbacks for consumers
      that only meter volume (checkpoint/snapshot cadence).

    Args:
        name: Diagnostic name (usually the owning serialization unit).
    """

    def __init__(self, name: str = "log"):
        self.name = name
        self._cols = EventColumns()
        #: ``None`` means "every arena row is live, in row order" — and,
        #: because appends assign sequential LSNs from 1, live LSNs are
        #: then exactly ``1..len(arena)``.  After the first prefix
        #: rewrite this becomes an explicit row list.
        self._rows: Optional[list[int]] = None
        #: Parallel ``lsn`` array for the explicit-row regime (unused
        #: while ``_rows is None``).
        self._live_lsns: list[int] = []
        #: True while live LSNs form one gap-free run (enables the
        #: arithmetic position fast path in the explicit-row regime).
        self._contiguous = True
        #: ref id -> live arena rows for that entity, in LSN order.
        self._by_ref: dict[int, list[int]] = {}
        #: entity type -> (rows, parallel lsns) in LSN order.
        self._by_type: dict[str, tuple[list[int], list[int]]] = {}
        self._next_lsn = 1
        self._subscribers: list[Callable[[LogEvent], None]] = []
        self._columnar: list[tuple[Callable, Callable]] = []
        self._counts: list[Callable[[int], None]] = []
        self._structure: list[Callable[[], None]] = []

    @property
    def arena(self) -> EventColumns:
        """The backing columnar arena (shared with views)."""
        return self._cols

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append(self, event: LogEvent) -> LogEvent:
        """Append ``event``, assigning the next LSN.

        Returns:
            The stored event (a copy of ``event`` with its LSN set).
        """
        lsn = self._next_lsn
        self._next_lsn = lsn + 1
        row = self._cols.append_event(event, lsn)
        self._index_row(row, lsn)
        stored = event.with_lsn(lsn)
        for on_row, _on_batch in self._columnar:
            on_row(self._cols, row)
        for subscriber in self._subscribers:
            subscriber(stored)
        for counter in self._counts:
            counter(1)
        return stored

    def append_row(
        self,
        timestamp: float,
        entity_type: str,
        entity_key: str,
        kind: EventKind,
        payload: Mapping[str, Any],
        origin: str = "local",
        origin_seq: int = 0,
        tx_id: str = "",
        schema_version: int = 1,
        tags: frozenset[str] = _EMPTY_TAGS,
    ) -> int:
        """Append one event from loose fields, without constructing a
        :class:`LogEvent`.  The hot ingestion path.

        Returns:
            The arena row of the new event (its LSN is
            ``arena.lsns[row]``).
        """
        lsn = self._next_lsn
        self._next_lsn = lsn + 1
        cols = self._cols
        row = cols.append_row(
            lsn, timestamp, entity_type, entity_key, kind, payload,
            origin, origin_seq, tx_id, schema_version, tags,
        )
        self._index_row(row, lsn)
        for on_row, _on_batch in self._columnar:
            on_row(cols, row)
        if self._subscribers:
            stored = cols.event_at(row)
            for subscriber in self._subscribers:
                subscriber(stored)
        for counter in self._counts:
            counter(1)
        return row

    def extend_frame(
        self, frame: ColumnFrame, start: int, stop: int
    ) -> EventSlice:
        """Bulk-append frame positions ``[start, stop)`` — the decode
        half of the zero-copy codec.

        Columns are extended with array slices (a ``memcpy`` each);
        entity refs and origins are interned once per distinct *table
        entry*, then the per-event codes translate through a plain list
        index.  LSNs are re-stamped with this log's sequence.

        Returns:
            An :class:`EventSlice` over the newly appended rows.
        """
        cols = self._cols
        row0 = len(cols.lsns)
        count = stop - start
        first_lsn = self._next_lsn
        self._next_lsn = first_lsn + count
        cols.lsns.extend(range(first_lsn, first_lsn + count))
        cols.timestamps.extend(frame.timestamps[start:stop])
        cols.kinds.extend(frame.kinds[start:stop])
        cols.origin_seqs.extend(frame.origin_seqs[start:stop])
        cols.schema_versions.extend(frame.schema_versions[start:stop])
        cols.payloads.extend(frame.payloads[start:stop])
        ref_ids = [cols.ref_id(t, k) for t, k in frame.ref_table]
        cols.ref_ids.extend(
            ref_ids[code] for code in frame.ref_codes[start:stop]
        )
        origin_ids = [cols.origins.intern(o) for o in frame.origin_table]
        cols.origin_ids.extend(
            origin_ids[code] for code in frame.origin_codes[start:stop]
        )
        for source, sink in (
            (frame.tx_ids, cols.tx_ids),
            (frame.tags, cols.tags),
            (frame.trace_ids, cols.trace_ids),
            (frame.span_ids, cols.span_ids),
        ):
            if source:
                for index, value in source.items():
                    if start <= index < stop:
                        sink[row0 + index - start] = value
        for offset in range(count):
            self._index_row(row0 + offset, first_lsn + offset)
        view = EventSlice(cols, range(row0, row0 + count))
        for _on_row, on_batch in self._columnar:
            on_batch(view)
        if self._subscribers:
            for stored in view:
                for subscriber in self._subscribers:
                    subscriber(stored)
        for counter in self._counts:
            counter(count)
        return view

    def _index_row(self, row: int, lsn: int) -> None:
        cols = self._cols
        if self._rows is not None:
            lsns = self._live_lsns
            if not lsns:
                self._contiguous = True
            elif self._contiguous and lsn != lsns[-1] + 1:
                self._contiguous = False
            self._rows.append(row)
            lsns.append(lsn)
        rid = cols.ref_ids[row]
        bucket = self._by_ref.get(rid)
        if bucket is None:
            self._by_ref[rid] = [row]
        else:
            bucket.append(row)
        entry = self._by_type.get(cols.ref_tuples[rid][0])
        if entry is None:
            self._by_type[cols.ref_tuples[rid][0]] = ([row], [lsn])
        else:
            entry[0].append(row)
            entry[1].append(lsn)

    # ------------------------------------------------------------------ #
    # Subscriptions
    # ------------------------------------------------------------------ #

    def subscribe(self, callback: Callable[[LogEvent], None]) -> None:
        """Invoke ``callback`` synchronously for every future append,
        with the stored (materialized) event.

        Used by replication shippers and tests.  Per-event and
        object-based by contract; consumers that can read columns should
        prefer :meth:`subscribe_columnar`, and consumers that only count
        should use :meth:`subscribe_counts` — a log with neither legacy
        subscriber never materializes on the bulk path.
        """
        self._subscribers.append(callback)

    def subscribe_columnar(
        self,
        on_row: Callable[[EventColumns, int], None],
        on_batch: Callable[[EventSlice], None],
    ) -> None:
        """Columnar append notifications: ``on_row(arena, row)`` per
        single append, ``on_batch(view)`` per bulk frame apply (the two
        are exclusive — a bulk apply fires one ``on_batch``, not n
        ``on_row`` calls)."""
        self._columnar.append((on_row, on_batch))

    def subscribe_counts(self, callback: Callable[[int], None]) -> None:
        """Invoke ``callback(n)`` after every append of ``n`` events —
        for cadence meters (checkpoints, snapshots) that never look at
        the events themselves."""
        self._counts.append(callback)

    def subscribe_structure(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback()`` after every *structural* rewrite of the
        live log (:meth:`rewrite_prefix`).

        Appends extend history; a rewrite *changes* it: summary events
        replace originals while reusing their LSNs, so any consumer
        whose validity rests on "LSN x still means the same prefix of
        folds" (the read cache's watermarks, most importantly) must drop
        its state here.  Append notifications never fire this channel.
        """
        self._structure.append(callback)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def head_lsn(self) -> int:
        """LSN of the most recent event (0 if the log is empty)."""
        if self._rows is None:
            return self._next_lsn - 1 if len(self._cols) else 0
        return self._live_lsns[-1] if self._live_lsns else 0

    @property
    def tail_lsn(self) -> int:
        """LSN of the oldest *live* event (0 if empty); events below
        this were compacted away."""
        if self._rows is None:
            return 1 if len(self._cols) else 0
        return self._live_lsns[0] if self._live_lsns else 0

    def __len__(self) -> int:
        if self._rows is None:
            return len(self._cols)
        return len(self._rows)

    def __iter__(self) -> Iterator[LogEvent]:
        return self.iter_since(0)

    def _live_rows(self):
        if self._rows is None:
            return range(len(self._cols))
        return self._rows

    def events(self) -> EventSlice:
        """A view of the live events, in LSN order (zero-copy while the
        log has never been compacted)."""
        return EventSlice(self._cols, self._live_rows())

    def since(self, lsn: int) -> EventSlice:
        """Events with LSN strictly greater than ``lsn``.

        This is the replication/catch-up primitive: a subscriber that
        has applied up to ``lsn`` calls ``since(lsn)`` to fetch its
        backlog.  O(log n) to locate; the result is a view, so nothing
        is materialized until the caller actually touches events.
        """
        low = self._bisect_gt(lsn)
        if self._rows is None:
            return EventSlice(self._cols, range(low, len(self._cols)))
        return EventSlice(self._cols, self._rows[low:])

    def iter_since(self, lsn: int) -> Iterator[LogEvent]:
        """Lazily iterate events with LSN strictly greater than ``lsn``.

        The zero-copy streaming variant of :meth:`since`: no row list is
        copied even in the post-compaction regime, and each event
        materializes only as the iterator reaches it.  The view is live
        — appends made during iteration are yielded; don't do that.
        """
        low = self._bisect_gt(lsn)
        cols = self._cols
        event_at = cols.event_at
        if self._rows is None:
            for row in range(low, len(cols)):
                yield event_at(row)
        else:
            rows = self._rows
            for index in range(low, len(rows)):
                yield event_at(rows[index])

    def up_to(self, lsn: int) -> EventSlice:
        """Events with LSN less than or equal to ``lsn``."""
        high = self._bisect_gt(lsn)
        if self._rows is None:
            return EventSlice(self._cols, range(0, high))
        return EventSlice(self._cols, self._rows[:high])

    def between(self, after_lsn: int, up_to_lsn: int) -> EventSlice:
        """Events with ``after_lsn < LSN <= up_to_lsn`` (the bounded
        catch-up feed snapshot replay uses)."""
        low = self._bisect_gt(after_lsn)
        high = self._bisect_gt(up_to_lsn)
        if high < low:
            high = low
        if self._rows is None:
            return EventSlice(self._cols, range(low, high))
        return EventSlice(self._cols, self._rows[low:high])

    def count_between(self, after_lsn: int, up_to_lsn: int) -> int:
        """How many live events fall in ``(after_lsn, up_to_lsn]``,
        without materialising them."""
        return max(0, self._bisect_gt(up_to_lsn) - self._bisect_gt(after_lsn))

    def last_lsn_at_or_below(self, lsn: int) -> int:
        """The largest live LSN <= ``lsn`` (0 if none)."""
        high = self._bisect_gt(lsn)
        if not high:
            return 0
        if self._rows is None:
            return high  # live LSNs are exactly 1..n
        return self._live_lsns[high - 1]

    def for_entity(self, entity_type: str, entity_key: str) -> EventSlice:
        """The full history of one entity, in LSN order.

        This is the audit/history view principle 2.7 calls for ("past
        descriptions are available"), e.g. tracing which operations
        drove inventory negative (principle 2.1).  Served from the
        per-entity row index: O(result) integers, no object copies.
        """
        rid = self._cols.lookup_ref(entity_type, entity_key)
        if rid is None:
            return EventSlice(self._cols, ())
        rows = self._by_ref.get(rid)
        if rows is None:
            return EventSlice(self._cols, ())
        return EventSlice(self._cols, rows[:])

    def entity_head_lsn(self, entity_type: str, entity_key: str) -> int:
        """The LSN of the entity's newest live event (0 if it has none)
        — the O(1) "any events since my watermark?" probe the read
        cache validates against: two dictionary lookups and one array
        index, no view, no materialization."""
        rid = self._cols.lookup_ref(entity_type, entity_key)
        if rid is None:
            return 0
        rows = self._by_ref.get(rid)
        if not rows:
            return 0
        return self._cols.lsns[rows[-1]]

    def entity_first_timestamp_after(
        self, entity_type: str, entity_key: str, lsn: int
    ) -> Optional[float]:
        """Timestamp of the entity's oldest live event with LSN >
        ``lsn`` (``None`` if there is none) — how the read cache
        measures the honest age of a stale fold: "the oldest write this
        snapshot is missing happened at t".  O(log h) bisect over the
        per-entity row index, h = the entity's history length.
        """
        rid = self._cols.lookup_ref(entity_type, entity_key)
        if rid is None:
            return None
        rows = self._by_ref.get(rid)
        if not rows:
            return None
        lsns = self._cols.lsns
        low, high = 0, len(rows)
        while low < high:
            mid = (low + high) // 2
            if lsns[rows[mid]] <= lsn:
                low = mid + 1
            else:
                high = mid
        if low == len(rows):
            return None
        return self._cols.timestamps[rows[low]]

    def for_type_since(
        self,
        entity_type: str,
        lsn: int,
        up_to_lsn: Optional[int] = None,
    ) -> EventSlice:
        """Events of one entity type with ``lsn < LSN <= up_to_lsn``
        (``up_to_lsn=None`` means the head), in LSN order.

        Secondary-index refresh catches up from this feed so its cost
        scales with the matching events, not with the whole suffix.
        """
        entry = self._by_type.get(entity_type)
        if entry is None:
            return EventSlice(self._cols, ())
        rows, lsns = entry
        low = bisect_right(lsns, lsn)
        high = len(rows) if up_to_lsn is None else bisect_right(lsns, up_to_lsn)
        return EventSlice(self._cols, rows[low:high])

    def _bisect_gt(self, lsn: int) -> int:
        """Position of the first live event with LSN > ``lsn``."""
        if self._rows is None:
            # Live LSNs are exactly 1..n: pure arithmetic.
            count = len(self._cols)
            if lsn <= 0:
                return 0
            return count if lsn >= count else lsn
        lsns = self._live_lsns
        if not lsns:
            return 0
        if self._contiguous:
            if lsn < lsns[0]:
                return 0
            return min(len(lsns), lsn - lsns[0] + 1)
        return bisect_right(lsns, lsn)

    # ------------------------------------------------------------------ #
    # Compaction support
    # ------------------------------------------------------------------ #

    def rewrite_prefix(
        self,
        up_to_lsn: int,
        replacement: Iterable[LogEvent],
    ) -> EventSlice:
        """Replace all events with LSN <= ``up_to_lsn`` by ``replacement``.

        Replacement events must already carry LSNs within the replaced
        range and in ascending order (the compactor reuses the LSN of the
        last summarised event so "since" queries stay correct).

        The arena keeps the replaced rows forever — only the live row
        set changes — so previously handed-out views (per-origin feeds,
        archives) remain valid.

        Returns:
            A view of the removed events (the caller archives them).

        Raises:
            ReproError: If a replacement event's LSN falls outside the
                replaced range or breaks ordering.
        """
        replacement_list = list(replacement)
        previous = 0
        for event in replacement_list:
            if event.lsn <= previous or event.lsn > up_to_lsn:
                raise ReproError(
                    f"replacement LSN {event.lsn} outside (0, {up_to_lsn}]"
                )
            previous = event.lsn
        cols = self._cols
        live = self._live_rows()
        cut = self._bisect_gt(up_to_lsn)
        removed = EventSlice(cols, live[:cut])
        suffix_rows = list(live[cut:])
        new_rows = [
            cols.append_event(event, event.lsn) for event in replacement_list
        ]
        self._rows = new_rows + suffix_rows
        lsns = self._cols.lsns
        self._live_lsns = [lsns[row] for row in self._rows]
        live_lsns = self._live_lsns
        self._contiguous = (
            not live_lsns
            or live_lsns[-1] - live_lsns[0] + 1 == len(live_lsns)
        )
        self._by_ref = {}
        self._by_type = {}
        ref_ids = cols.ref_ids
        ref_tuples = cols.ref_tuples
        for row, lsn in zip(self._rows, live_lsns):
            rid = ref_ids[row]
            bucket = self._by_ref.get(rid)
            if bucket is None:
                self._by_ref[rid] = [row]
            else:
                bucket.append(row)
            entry = self._by_type.get(ref_tuples[rid][0])
            if entry is None:
                self._by_type[ref_tuples[rid][0]] = ([row], [lsn])
            else:
                entry[0].append(row)
                entry[1].append(lsn)
        for callback in self._structure:
            callback()
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AppendOnlyLog({self.name!r}, live={len(self)}, "
            f"head={self.head_lsn})"
        )
