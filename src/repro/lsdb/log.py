"""The append-only event log — one per serialization unit.

Paper principle 2.5: "A single organization may partition data by entity
type and key, where partitions are managed as separate 'serialization
units' with separate logs."  An :class:`AppendOnlyLog` is such a log:
appends are totally ordered by LSN within the log, and there is no
cross-log ordering (that absence is precisely what makes cross-partition
transactions expensive, measured in experiment E3).

The only structural mutation besides append is :meth:`rewrite_prefix`,
used by compaction (:mod:`repro.lsdb.compaction`) to replace a prefix of
old events with summary events — the "data summarization and archival
functionality" of principle 2.7.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Iterable, Iterator, Optional

from repro.errors import ReproError
from repro.lsdb.events import EventKind, LogEvent


class AppendOnlyLog:
    """An ordered, in-memory, append-only sequence of :class:`LogEvent`.

    LSNs start at 1 and never repeat, even across compactions: a rewrite
    may *remove* LSNs from the live log but never reassigns them, so
    "events since LSN x" remains meaningful to subscribers after a
    compaction.

    Feeds are indexed: a parallel LSN array (with an arithmetic fast
    path while the live log is contiguous) makes :meth:`since` /
    :meth:`up_to` O(log n + result), and per-entity / per-type indexes
    make :meth:`for_entity` and :meth:`for_type_since` O(result).  The
    indexes are maintained on append (O(1) amortised) and rebuilt on the
    rare prefix rewrite, whose cost compaction already pays.

    Args:
        name: Diagnostic name (usually the owning serialization unit).
    """

    def __init__(self, name: str = "log"):
        self.name = name
        self._events: list[LogEvent] = []
        #: Parallel array of ``event.lsn`` for O(log n) position lookup.
        self._lsns: list[int] = []
        #: True while ``lsn[i] == lsn[0] + i`` for every live event
        #: (always true until the first compaction leaves holes).
        self._contiguous = True
        self._by_entity: dict[tuple[str, str], list[LogEvent]] = {}
        #: entity type -> (events, parallel lsns) in LSN order.
        self._by_type: dict[str, tuple[list[LogEvent], list[int]]] = {}
        self._next_lsn = 1
        self._subscribers: list[Callable[[LogEvent], None]] = []

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append(self, event: LogEvent) -> LogEvent:
        """Append ``event``, assigning the next LSN.

        Returns:
            The stored event (a copy of ``event`` with its LSN set).
        """
        stored = event.with_lsn(self._next_lsn)
        self._next_lsn += 1
        lsns = self._lsns
        if not lsns:
            self._contiguous = True
        elif self._contiguous and stored.lsn != lsns[-1] + 1:
            self._contiguous = False
        self._events.append(stored)
        lsns.append(stored.lsn)
        self._index_event(stored)
        for subscriber in self._subscribers:
            subscriber(stored)
        return stored

    def _index_event(self, stored: LogEvent) -> None:
        self._by_entity.setdefault(stored.entity_ref, []).append(stored)
        entry = self._by_type.get(stored.entity_type)
        if entry is None:
            self._by_type[stored.entity_type] = ([stored], [stored.lsn])
        else:
            entry[0].append(stored)
            entry[1].append(stored.lsn)

    def _rebuild_indexes(self) -> None:
        """Recompute all derived structures from ``self._events``
        (called after a prefix rewrite)."""
        self._lsns = [event.lsn for event in self._events]
        self._contiguous = (
            not self._lsns
            or self._lsns[-1] - self._lsns[0] + 1 == len(self._lsns)
        )
        self._by_entity = {}
        self._by_type = {}
        for event in self._events:
            self._index_event(event)

    def subscribe(self, callback: Callable[[LogEvent], None]) -> None:
        """Invoke ``callback`` synchronously for every future append.

        Used by incremental state caches, asynchronous index maintenance
        and replication shippers.
        """
        self._subscribers.append(callback)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def head_lsn(self) -> int:
        """LSN of the most recent event (0 if the log is empty)."""
        return self._lsns[-1] if self._lsns else 0

    @property
    def tail_lsn(self) -> int:
        """LSN of the oldest *live* event (0 if empty); events below
        this were compacted away."""
        return self._lsns[0] if self._lsns else 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self._events)

    def events(self) -> list[LogEvent]:
        """A shallow copy of the live events, in LSN order."""
        return list(self._events)

    def since(self, lsn: int) -> list[LogEvent]:
        """Events with LSN strictly greater than ``lsn``.

        This is the replication/catch-up primitive: a subscriber that has
        applied up to ``lsn`` calls ``since(lsn)`` to fetch its backlog.
        O(log n + result) — O(result) while the log is uncompacted.
        """
        if not self._events or lsn >= self._lsns[-1]:
            return []
        low = self._bisect_gt(lsn)
        return self._events[low:]

    def up_to(self, lsn: int) -> list[LogEvent]:
        """Events with LSN less than or equal to ``lsn``."""
        high = self._bisect_gt(lsn)
        return self._events[:high]

    def between(self, after_lsn: int, up_to_lsn: int) -> list[LogEvent]:
        """Events with ``after_lsn < LSN <= up_to_lsn`` (the bounded
        catch-up feed snapshot replay uses)."""
        return self._events[self._bisect_gt(after_lsn):self._bisect_gt(up_to_lsn)]

    def count_between(self, after_lsn: int, up_to_lsn: int) -> int:
        """How many live events fall in ``(after_lsn, up_to_lsn]``,
        without materialising them."""
        return max(0, self._bisect_gt(up_to_lsn) - self._bisect_gt(after_lsn))

    def last_lsn_at_or_below(self, lsn: int) -> int:
        """The largest live LSN <= ``lsn`` (0 if none)."""
        high = self._bisect_gt(lsn)
        return self._lsns[high - 1] if high else 0

    def for_entity(self, entity_type: str, entity_key: str) -> list[LogEvent]:
        """The full live history of one entity, in LSN order.

        This is the audit/history view principle 2.7 calls for ("past
        descriptions are available"), e.g. tracing which operations drove
        inventory negative (principle 2.1).  Served from the per-entity
        index: O(result), not O(log).
        """
        return list(self._by_entity.get((entity_type, entity_key), ()))

    def for_type_since(
        self,
        entity_type: str,
        lsn: int,
        up_to_lsn: Optional[int] = None,
    ) -> list[LogEvent]:
        """Events of one entity type with ``lsn < LSN <= up_to_lsn``
        (``up_to_lsn=None`` means the head), in LSN order.

        Secondary-index refresh catches up from this feed so its cost
        scales with the matching events, not with the whole suffix.
        """
        entry = self._by_type.get(entity_type)
        if entry is None:
            return []
        events, lsns = entry
        low = bisect_right(lsns, lsn)
        high = len(events) if up_to_lsn is None else bisect_right(lsns, up_to_lsn)
        return events[low:high]

    def _bisect_gt(self, lsn: int) -> int:
        """Index of the first event with LSN > ``lsn``."""
        lsns = self._lsns
        if not lsns:
            return 0
        if self._contiguous:
            # Live LSNs are first, first+1, ..., so the position is
            # pure arithmetic — no search at all.
            if lsn < lsns[0]:
                return 0
            return min(len(lsns), lsn - lsns[0] + 1)
        return bisect_right(lsns, lsn)

    # ------------------------------------------------------------------ #
    # Compaction support
    # ------------------------------------------------------------------ #

    def rewrite_prefix(
        self,
        up_to_lsn: int,
        replacement: Iterable[LogEvent],
    ) -> list[LogEvent]:
        """Replace all events with LSN <= ``up_to_lsn`` by ``replacement``.

        Replacement events must already carry LSNs within the replaced
        range and in ascending order (the compactor reuses the LSN of the
        last summarised event so "since" queries stay correct).

        Returns:
            The removed events (the caller archives them).

        Raises:
            ReproError: If a replacement event's LSN falls outside the
                replaced range or breaks ordering.
        """
        cut = self._bisect_gt(up_to_lsn)
        removed = self._events[:cut]
        replacement_list = list(replacement)
        previous = 0
        for event in replacement_list:
            if event.lsn <= previous or event.lsn > up_to_lsn:
                raise ReproError(
                    f"replacement LSN {event.lsn} outside (0, {up_to_lsn}]"
                )
            previous = event.lsn
        self._events = replacement_list + self._events[cut:]
        self._rebuild_indexes()
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AppendOnlyLog({self.name!r}, live={len(self._events)}, "
            f"head={self.head_lsn})"
        )
