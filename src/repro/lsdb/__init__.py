"""The log-structured database (LSDB) of paper section 3.1.

"One approach we are considering involves storing events when they
arrive, with inserts treated as events, in a log-structured database
(LSDB).  What applications view as the current state of the database
would be a rollup aggregation of the contents of the LSDB [...] This can
be implemented efficiently using main memory database techniques."

Public surface:

* :class:`LSDBStore` — the facade replicas run on.
* :class:`LogEvent` / :class:`EventKind` — the storage records.
* :class:`AppendOnlyLog`, :class:`Rollup`, :class:`EntityState`,
  :class:`SnapshotManager`, :class:`SecondaryIndex`,
  :class:`Compactor` / :class:`Archive` — the constituent mechanisms,
  exposed for tests and experiments.
"""

from repro.lsdb.compaction import Archive, CompactionReport, Compactor
from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.index import SecondaryIndex
from repro.lsdb.log import AppendOnlyLog
from repro.lsdb.readcache import HotSetTracker, ReadCache, WriteCoalescer
from repro.lsdb.rollup import EntityState, GenericReducer, Reducer, Rollup
from repro.lsdb.snapshot import Snapshot, SnapshotManager
from repro.lsdb.store import LSDBStore

__all__ = [
    "Archive",
    "CompactionReport",
    "Compactor",
    "EventKind",
    "LogEvent",
    "SecondaryIndex",
    "AppendOnlyLog",
    "HotSetTracker",
    "ReadCache",
    "WriteCoalescer",
    "EntityState",
    "GenericReducer",
    "Reducer",
    "Rollup",
    "Snapshot",
    "SnapshotManager",
    "LSDBStore",
]
