"""Rollup checkpoints: O(delta) recovery for the LSDB.

Without checkpoints, every cold start of the current-state cache —
:meth:`~repro.lsdb.store.LSDBStore.rebuild_cache`, a promoted backup
warming up, a brand-new replica joining — replays the **entire** log
from LSN 0.  That is the paper's section 3.1 rollup done the slow way:
correct, but linear in history, and history only grows (principle 2.7:
nothing is ever erased).

A :class:`Checkpoint` freezes the four things the incremental cache is
made of, all consistent **as of one LSN**:

* the rolled-up ``states`` map (deep-enough copies, never aliased with
  the live cache),
* the per-type ref order (so type-scoped scans keep their first-event
  iteration order),
* the per-origin sequence watermarks (the version vector — what the
  store had applied from every origin, which is exactly what replication
  needs to resume),
* per-secondary-index snapshots (buckets + applied LSN), so indexes
  also restart warm instead of re-folding their type's whole history.

Recovery is then *checkpoint + suffix*: restore the frozen maps and fold
only ``log.since(checkpoint.lsn)`` — O(delta since the checkpoint), not
O(log).  Because the incremental cache **is** the fold of the log, the
restored cache is byte-identical to the one that was never torn down
(including audit counters like ``event_count``), an invariant the test
suite pins.

Invalidation is the half that makes this safe.  A checkpoint caches an
*interpretation* of the log, so anything that changes the interpretation
must discard it: installing a new reducer, applying a schema migration,
and compaction (which rewrites the prefix under the checkpoint) all call
:meth:`CheckpointManager.invalidate`.  Compaction immediately re-takes a
fresh checkpoint when the policy asks for it, preserving the invariant
that a live checkpoint never predates the compaction boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Optional

from repro.lsdb.rollup import StateMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lsdb.store import LSDBStore


@dataclass(frozen=True)
class CheckpointPolicy:
    """When the manager takes checkpoints automatically.

    Attributes:
        every_events: Take a checkpoint after this many appends
            (0 disables count-triggered checkpoints).
        on_compaction: Re-checkpoint right after a compaction (also the
            moment the pre-compaction checkpoint is discarded).
    """

    every_events: int = 0
    on_compaction: bool = True

    def __post_init__(self) -> None:
        if self.every_events < 0:
            raise ValueError(
                f"every_events must be >= 0, got {self.every_events}"
            )


@dataclass
class IndexSnapshot:
    """Frozen state of one secondary index at checkpoint time."""

    applied_lsn: int
    buckets: dict[Hashable, set[str]]
    states: StateMap


@dataclass
class Checkpoint:
    """Everything needed to rebuild the store's derived state from one
    LSN forward.  Immutable by convention: restore paths copy out of it,
    never into it."""

    lsn: int
    taken_at: float
    states: StateMap
    type_refs: dict[str, list[tuple[str, str]]]
    version_vector: dict[str, int]
    origin_seq: int
    index_snapshots: dict[tuple[str, str], IndexSnapshot] = field(
        default_factory=dict
    )

    @staticmethod
    def capture(store: "LSDBStore") -> "Checkpoint":
        """Freeze ``store``'s derived state as of its current head LSN."""
        return Checkpoint(
            lsn=store.log.head_lsn,
            taken_at=store.now(),
            states={ref: state.copy() for ref, state in store.states_view().items()},
            type_refs={
                entity_type: list(refs)
                for entity_type, refs in store.type_refs_view().items()
            },
            version_vector=store.version_vector.to_dict(),
            origin_seq=store.origin_seq,
            index_snapshots={
                key: index.snapshot() for key, index in store.indexes_view().items()
            },
        )

    @property
    def entity_count(self) -> int:
        return len(self.states)


@dataclass(frozen=True)
class RecoveryReport:
    """What a checkpoint-assisted rebuild actually did."""

    used_checkpoint: bool
    checkpoint_lsn: int
    events_replayed: int
    indexes_restored: int


class CheckpointManager:
    """Owns the store's latest checkpoint and the policy that refreshes it.

    Only the most recent checkpoint is retained: recovery always wants
    the newest one, and keeping a history would hold every superseded
    state map alive in a system whose log already is the history.

    Args:
        store: The owning store.
        policy: When to auto-checkpoint; manual :meth:`take` always works.
    """

    def __init__(self, store: "LSDBStore", policy: Optional[CheckpointPolicy] = None):
        self.store = store
        self.policy = policy if policy is not None else CheckpointPolicy()
        self._latest: Optional[Checkpoint] = None
        self._appends_since = 0
        self.taken = 0
        self.invalidations = 0
        metrics = store.metrics
        if metrics is not None:
            self._m_taken = metrics.counter("checkpoint.taken", origin=store.origin)
            self._m_invalidated = metrics.counter(
                "checkpoint.invalidated", origin=store.origin
            )
            self._g_lsn = metrics.gauge("checkpoint.lsn", origin=store.origin)
        else:
            self._m_taken = self._m_invalidated = self._g_lsn = None
        # Cadence metering only: the counts channel never materializes
        # events, so bulk frame applies stay columnar end to end.
        store.log.subscribe_counts(self._on_appends)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _on_appends(self, count: int) -> None:
        if not self.policy.every_events:
            return
        self._appends_since += count
        if self._appends_since >= self.policy.every_events:
            self.take()

    def take(self) -> Checkpoint:
        """Capture a fresh checkpoint (replacing any previous one)."""
        checkpoint = Checkpoint.capture(self.store)
        self._latest = checkpoint
        self._appends_since = 0
        self.taken += 1
        if self._m_taken is not None:
            self._m_taken.inc()
            self._g_lsn.set(checkpoint.lsn)
        return checkpoint

    def latest(self) -> Optional[Checkpoint]:
        """The newest valid checkpoint, or ``None``."""
        return self._latest

    def invalidate(self) -> None:
        """Discard the checkpoint because the log's *interpretation*
        changed (new reducer, schema migration, compaction rewrite) —
        restoring it would resurrect the stale reading of history."""
        if self._latest is None:
            return
        self._latest = None
        self.invalidations += 1
        if self._m_invalidated is not None:
            self._m_invalidated.inc()
            self._g_lsn.set(0)

    def on_compaction(self) -> None:
        """Compaction hook: the old checkpoint's suffix no longer exists
        in its original form, so drop it — and immediately re-take when
        the policy wants warm recovery after compactions."""
        self.invalidate()
        if self.policy.on_compaction:
            self.take()

    @property
    def delta_events(self) -> int:
        """How many events recovery would replay right now."""
        if self._latest is None:
            return len(self.store.log)
        return self.store.log.count_between(
            self._latest.lsn, self.store.log.head_lsn
        )
