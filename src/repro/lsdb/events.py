"""Log event records — the unit of storage in the LSDB.

Paper section 3.1: "storing events when they arrive, with inserts treated
as events, in a log-structured database (LSDB)".  Every state change in
this library — inserts, commutative deltas, field overwrites, deletion
marks, obsolescence marks for tentative data, and compaction summaries —
is an immutable :class:`LogEvent` appended to an
:class:`~repro.lsdb.log.AppendOnlyLog`.

Events carry their *origin* replica and a per-origin sequence number so
replication can deduplicate redeliveries (at-least-once messaging plus
idempotence, principle 2.4) and version vectors can summarise what a
replica has seen.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional


class EventKind(enum.Enum):
    """The operation an event describes.

    The catalogue deliberately mirrors the principles:

    * ``INSERT`` — new entity version (insert-only storage, 2.7).
    * ``DELTA`` — commutative adjustment (operations not consequences, 2.8).
    * ``SET_FIELDS`` — overwrite of named fields (last-update-wins when
      concurrent; the non-commutative case the resolver must handle).
    * ``TOMBSTONE`` — deletion *mark*, never physical removal (2.7).
    * ``OBSOLETE`` — a tentative change that did not become permanent is
      marked obsolete, not erased (section 3.2).
    * ``SUMMARY`` — a compaction artefact replacing a run of older
      events with their aggregate (2.7, summarization and archival).
    """

    INSERT = "insert"
    DELTA = "delta"
    SET_FIELDS = "set_fields"
    TOMBSTONE = "tombstone"
    OBSOLETE = "obsolete"
    SUMMARY = "summary"


@dataclass(frozen=True, slots=True)
class LogEvent:
    """An immutable record of one operation on one entity.

    Slotted: a log holds one instance per event *forever* (insert-only
    storage, 2.7), so the per-instance ``__dict__`` of an unslotted
    class dominated the store's memory footprint.  With ``__slots__``
    an event is a fixed 13-pointer record; the bench suite records the
    measured footprint/throughput delta in ``BENCH_dataplane.json``.

    Attributes:
        lsn: Log sequence number, assigned by the owning log at append
            time (0 means "not yet appended").
        timestamp: Virtual time of the operation (simulator clock).
        entity_type: Name of the entity type in the catalog.
        entity_key: Business key of the entity instance.
        kind: What the operation is (see :class:`EventKind`).
        payload: Operation arguments: field values for ``INSERT`` /
            ``SET_FIELDS`` / ``SUMMARY``, a serialized
            :class:`~repro.merge.deltas.Delta` for ``DELTA``, free-form
            for marks.
        origin: Replica id where the operation first entered the system.
        origin_seq: Per-origin monotone sequence number (for version
            vectors and idempotent replication).
        tx_id: Identifier of the transaction that produced the event.
        schema_version: Version of the entity type's schema the payload
            was written under; readers must tolerate older versions
            (section 3.1 on sustainable application environments).
        tags: Free-form labels; compaction preserves events tagged
            ``"regulatory"`` in the archive rather than dropping them.
        trace_id: Causal trace this event belongs to ("" when tracing
            is off).  Travels with the event through replication, so a
            remote apply can attach to the origin append's trace.
        span_id: The span of the append that created the event — the
            parent for downstream spans (ship, apply, index refresh).
    """

    lsn: int
    timestamp: float
    entity_type: str
    entity_key: str
    kind: EventKind
    payload: Mapping[str, Any] = field(default_factory=dict)
    origin: str = "local"
    origin_seq: int = 0
    tx_id: str = ""
    schema_version: int = 1
    tags: frozenset[str] = frozenset()
    trace_id: str = ""
    span_id: str = ""

    def with_lsn(self, lsn: int) -> "LogEvent":
        """A copy with the log-assigned sequence number.

        Built by copying slots directly rather than re-running the
        dataclass ``__init__`` — this runs once per append, and the
        (frozen) constructor is the single most expensive step on that
        path.  ``object.__setattr__`` is the only way to populate a
        frozen instance made with ``__new__``.
        """
        clone = object.__new__(LogEvent)
        assign = object.__setattr__
        assign(clone, "lsn", lsn)
        assign(clone, "timestamp", self.timestamp)
        assign(clone, "entity_type", self.entity_type)
        assign(clone, "entity_key", self.entity_key)
        assign(clone, "kind", self.kind)
        assign(clone, "payload", self.payload)
        assign(clone, "origin", self.origin)
        assign(clone, "origin_seq", self.origin_seq)
        assign(clone, "tx_id", self.tx_id)
        assign(clone, "schema_version", self.schema_version)
        assign(clone, "tags", self.tags)
        assign(clone, "trace_id", self.trace_id)
        assign(clone, "span_id", self.span_id)
        return clone

    @staticmethod
    def build(
        lsn: int,
        timestamp: float,
        entity_type: str,
        entity_key: str,
        kind: "EventKind",
        payload: Mapping[str, Any],
        origin: str,
        origin_seq: int,
        tx_id: str,
        schema_version: int,
        tags: frozenset[str],
        trace_id: str,
        span_id: str,
    ) -> "LogEvent":
        """Fast positional constructor bypassing the dataclass ``__init__``.

        The columnar arena materializes a :class:`LogEvent` lazily, only
        when an API boundary needs the object form; this is the single
        place outside :meth:`with_lsn` allowed to populate a frozen
        instance made with ``__new__``, so knowledge of the slot layout
        stays in this module.
        """
        clone = object.__new__(LogEvent)
        assign = object.__setattr__
        assign(clone, "lsn", lsn)
        assign(clone, "timestamp", timestamp)
        assign(clone, "entity_type", entity_type)
        assign(clone, "entity_key", entity_key)
        assign(clone, "kind", kind)
        assign(clone, "payload", payload)
        assign(clone, "origin", origin)
        assign(clone, "origin_seq", origin_seq)
        assign(clone, "tx_id", tx_id)
        assign(clone, "schema_version", schema_version)
        assign(clone, "tags", tags)
        assign(clone, "trace_id", trace_id)
        assign(clone, "span_id", span_id)
        return clone

    @property
    def identity(self) -> tuple[str, int]:
        """Globally unique event identity: ``(origin, origin_seq)``.

        Two deliveries of the same event (at-least-once messaging) share
        this identity, which is what the idempotent apply path checks.
        """
        return (self.origin, self.origin_seq)

    @property
    def entity_ref(self) -> tuple[str, str]:
        """``(entity_type, entity_key)`` — the entity this event touches."""
        return (self.entity_type, self.entity_key)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly representation (used by archival)."""
        return {
            "lsn": self.lsn,
            "timestamp": self.timestamp,
            "entity_type": self.entity_type,
            "entity_key": self.entity_key,
            "kind": self.kind.value,
            "payload": dict(self.payload),
            "origin": self.origin,
            "origin_seq": self.origin_seq,
            "tx_id": self.tx_id,
            "schema_version": self.schema_version,
            "tags": sorted(self.tags),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "LogEvent":
        """Inverse of :meth:`to_dict`."""
        return LogEvent(
            lsn=int(data["lsn"]),
            timestamp=float(data["timestamp"]),
            entity_type=str(data["entity_type"]),
            entity_key=str(data["entity_key"]),
            kind=EventKind(data["kind"]),
            payload=dict(data.get("payload", {})),
            origin=str(data.get("origin", "local")),
            origin_seq=int(data.get("origin_seq", 0)),
            tx_id=str(data.get("tx_id", "")),
            schema_version=int(data.get("schema_version", 1)),
            tags=frozenset(data.get("tags", ())),
            trace_id=str(data.get("trace_id", "")),
            span_id=str(data.get("span_id", "")),
        )
