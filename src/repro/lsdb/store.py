"""The LSDB facade: a main-memory, insert-only, log-structured store.

This is the storage engine every replica in the library runs on.  It
ties together the pieces of paper section 3.1:

* every write is an event appended to an :class:`AppendOnlyLog`;
* the application-visible "current state" is a rollup aggregation of the
  log (kept incrementally on the append path, recomputable from scratch
  or from snapshots for time-travel reads);
* secondary indexes are maintained asynchronously;
* compaction summarises old events into an archive;
* remote events are applied idempotently (per-origin sequence numbers)
  with out-of-order buffering, which is what lets at-least-once
  messaging and anti-entropy converge replicas.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterable, Optional

from repro.errors import EntityNotFound, ReproError
from repro.lsdb.checkpoint import (
    Checkpoint,
    CheckpointManager,
    CheckpointPolicy,
    RecoveryReport,
)
from repro.lsdb.columnar import ColumnFrame, EventColumns, EventSlice
from repro.lsdb.compaction import Archive, CompactionReport, Compactor
from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.index import SecondaryIndex
from repro.lsdb.log import AppendOnlyLog
from repro.lsdb.rollup import EntityState, Reducer, Rollup, StateMap

_EMPTY_TAGS: frozenset[str] = frozenset()
from repro.lsdb.snapshot import SnapshotManager
from repro.merge.clock import VersionVector
from repro.merge.deltas import Delta


class LSDBStore:
    """A log-structured, main-memory entity store.

    Args:
        name: Diagnostic name (also the log name).
        origin: Replica id stamped on locally originated events.
        clock: Zero-argument callable returning the current (virtual)
            time; defaults to a constant 0.0 for clock-free unit tests.
        snapshot_interval: If non-zero, take a rollup snapshot every N
            appends (accelerates :meth:`state_as_of`).
        tracer: Optional :class:`repro.obs.Tracer`.  When set, local
            appends open ``store.append`` spans (stamped onto the event,
            so the span travels with it through replication) and remote
            applies open ``store.apply`` spans chained to the shipping
            hop — the store's half of the causal write journey.
        metrics: Optional :class:`repro.obs.MetricsRegistry` for append,
            duplicate-rejection and fold counters plus the
            reorder-buffer depth gauge (all labelled by ``origin``).

    Example:
        >>> store = LSDBStore(origin="r1")
        >>> _ = store.insert("account", "a1", {"owner": "ada", "balance": 0})
        >>> _ = store.apply_delta("account", "a1", Delta.add("balance", 50))
        >>> store.get("account", "a1").fields["balance"]
        50
    """

    def __init__(
        self,
        name: str = "store",
        origin: str = "local",
        clock: Optional[Callable[[], float]] = None,
        snapshot_interval: int = 0,
        tracer=None,
        metrics=None,
    ):
        self.name = name
        self.origin = origin
        self._clock = clock or (lambda: 0.0)
        self.log = AppendOnlyLog(name)
        self.rollup = Rollup()
        self._states: StateMap = {}
        self.log.subscribe_columnar(self._on_append_row, self._on_append_batch)
        self.snapshots = SnapshotManager(self.log, self.rollup, snapshot_interval)
        self.archive = Archive()
        self.compactor = Compactor(self.log, self.rollup, self.archive)
        self.version_vector = VersionVector()
        self._origin_seq = 0
        #: origin -> arena rows in origin-sequence order, with a
        #: parallel seq array so catch-up feeds bisect instead of
        #: scanning.  Rows, not events: the arena is immortal, so this
        #: feed keeps serving raw originals after compaction rewrites
        #: the live log (anti-entropy repairs ship pre-compaction
        #: events verbatim).
        self._by_origin: dict[str, list[int]] = {}
        self._by_origin_seqs: dict[str, list[int]] = {}
        #: entity type -> refs in first-event order (entities are never
        #: physically removed, so this only grows).
        self._type_refs: dict[str, list[tuple[str, str]]] = {}
        self._reorder_buffer: dict[str, dict[int, LogEvent]] = {}
        self._indexes: dict[tuple[str, str], SecondaryIndex] = {}
        self.duplicates_rejected = 0
        self.tracer = tracer
        self.metrics = metrics
        #: event identity -> span id of the local append/apply that
        #: stored it; index refreshes chain their spans through this.
        self._span_by_identity: dict[tuple[str, int], str] = {}
        if metrics is not None:
            counter = metrics.counter
            self._m_appends = counter("store.appends", origin=origin)
            self._m_duplicates = counter(
                "store.duplicates_rejected", origin=origin
            )
            self._m_folds = counter("store.folds", origin=origin)
            self._g_reorder = metrics.gauge(
                "store.reorder_buffer_depth", origin=origin
            )
        else:
            self._m_appends = self._m_duplicates = self._m_folds = None
            self._g_reorder = None
        #: Optional hook returning the current schema version for an
        #: entity type; locally written events are stamped with it so
        #: lazy upcasting (repro.core.migration) knows what each event
        #: already conforms to.  ``None`` stamps version 1.
        self.schema_version_source: Optional[Callable[[str], int]] = None
        #: Checkpoint manager (None until :meth:`enable_checkpoints`);
        #: when armed, cache rebuilds become checkpoint + suffix.
        self.checkpoints: Optional[CheckpointManager] = None
        #: Watermark-validated snapshot cache (None until
        #: :meth:`attach_read_cache`); typed reads route through it.
        self.read_cache = None
        #: Hot-key write coalescer (None until
        #: :meth:`enable_coalescing`); defers incremental-cache folds.
        self.coalescer = None

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #

    def register_reducer(self, entity_type: str, reducer: Reducer) -> None:
        """Install a domain-specific reducer for ``entity_type``.

        Must be called before events of that type are appended; the
        incremental cache folds each event exactly once.  Any existing
        checkpoint is invalidated: it froze states folded under the old
        reducer, and restoring it would keep the old interpretation.
        """
        self.rollup.register(entity_type, reducer)
        if self.checkpoints is not None:
            self.checkpoints.invalidate()
        if self.read_cache is not None:
            # Same reasoning as the checkpoint: cached folds froze the
            # old interpretation of the events below their watermarks.
            self.read_cache.invalidate_all("reducer")

    def enable_checkpoints(
        self, policy: Optional[CheckpointPolicy] = None
    ) -> CheckpointManager:
        """Arm rollup checkpointing (see :mod:`repro.lsdb.checkpoint`).

        Once armed, :meth:`rebuild_cache` and :meth:`recover` restore
        from the latest checkpoint plus ``events_since(checkpoint.lsn)``
        — O(delta since the checkpoint) instead of O(log).
        """
        if self.checkpoints is None:
            self.checkpoints = CheckpointManager(self, policy)
        elif policy is not None:
            self.checkpoints.policy = policy
        return self.checkpoints

    def attach_read_cache(self, cache) -> None:
        """Serve this store's typed reads through ``cache`` (a
        :class:`~repro.lsdb.readcache.ReadCache`).

        Also wires the structural-invalidation contract: a compaction
        (``rewrite_prefix``) reuses the last summarised LSN, so a cached
        entry's watermark can match the post-compaction head while its
        frozen fold is the *pre*-compaction one — the log's
        structure-change subscription drops every entry whenever that
        can happen.  :meth:`install_checkpoint`, :meth:`recover` and
        :meth:`register_reducer` invalidate likewise.
        """
        self.read_cache = cache
        self.log.subscribe_structure(cache.on_structure_change)

    def enable_coalescing(self, window: float = 5.0, max_batch: int = 64):
        """Arm hot-key write coalescing (see
        :class:`~repro.lsdb.readcache.WriteCoalescer`): appended rows
        queue instead of folding one by one, and flush as a single
        fused batch-apply fold on window expiry (virtual time), batch
        size, or — transparently — before any state read.
        """
        from repro.lsdb.readcache import WriteCoalescer

        self.coalescer = WriteCoalescer(
            fold=self._fold_rows_now,
            clock=self._clock,
            window=window,
            max_batch=max_batch,
            metrics=self.metrics,
            origin=self.origin,
        )
        return self.coalescer

    def _fold_rows_now(self, rows: list) -> None:
        """Fold queued arena rows into the incremental cache, fused per
        entity (the coalescer's flush target)."""
        view = EventSlice(self.log.arena, rows)
        self.rollup.fold_slice_into(self._states, view, self._type_refs)
        if self._m_folds is not None:
            self._m_folds.inc(len(rows))

    def _flush_coalesced(self) -> None:
        """Fold any pending coalesced rows — the read barrier every
        state-reading surface passes first (read-your-writes)."""
        if self.coalescer is not None:
            self.coalescer.flush()

    def register_index(self, entity_type: str, field_name: str) -> SecondaryIndex:
        """Create (or return) an asynchronously maintained equality index."""
        key = (entity_type, field_name)
        if key not in self._indexes:
            self._indexes[key] = SecondaryIndex(
                self.log,
                self.rollup,
                entity_type,
                field_name,
                tracer=self.tracer,
                metrics=self.metrics,
                node=self.origin,
                span_of=self._span_of_event,
            )
        return self._indexes[key]

    def _span_of_event(self, event: LogEvent) -> Optional[str]:
        """The span id under which ``event`` was stored locally (the
        parent for its index-refresh span), if tracing recorded one."""
        return self._span_by_identity.get(event.identity)

    # ------------------------------------------------------------------ #
    # Read-only views (checkpoint capture & diagnostics)
    # ------------------------------------------------------------------ #

    def now(self) -> float:
        """The store's current (virtual) clock reading."""
        return self._clock()

    @property
    def origin_seq(self) -> int:
        """The last locally assigned per-origin sequence number."""
        return self._origin_seq

    def states_view(self) -> StateMap:
        """The live incremental state map — do not mutate."""
        self._flush_coalesced()
        return self._states

    def type_refs_view(self) -> dict[str, list[tuple[str, str]]]:
        """The live type -> refs (first-event order) map — do not mutate."""
        return self._type_refs

    def indexes_view(self) -> dict[tuple[str, str], SecondaryIndex]:
        """The registered secondary indexes — do not mutate."""
        return self._indexes

    # ------------------------------------------------------------------ #
    # Local writes (each becomes one log event)
    # ------------------------------------------------------------------ #

    def insert(
        self,
        entity_type: str,
        entity_key: str,
        fields: dict[str, Any],
        tx_id: str = "",
        tags: Iterable[str] = (),
    ) -> LogEvent:
        """Record a new entity version (insert-only storage, 2.7)."""
        return self._append_local(
            entity_type, entity_key, EventKind.INSERT, dict(fields), tx_id, tags
        )

    def apply_delta(
        self,
        entity_type: str,
        entity_key: str,
        delta: Delta,
        tx_id: str = "",
        tags: Iterable[str] = (),
    ) -> LogEvent:
        """Record a commutative adjustment (operations, not consequences)."""
        return self._append_local(
            entity_type, entity_key, EventKind.DELTA, delta.to_payload(), tx_id, tags
        )

    def set_fields(
        self,
        entity_type: str,
        entity_key: str,
        fields: dict[str, Any],
        tx_id: str = "",
        tags: Iterable[str] = (),
    ) -> LogEvent:
        """Record a field overwrite (resolved last-update-wins across
        replicas; prefer deltas where the domain allows)."""
        return self._append_local(
            entity_type, entity_key, EventKind.SET_FIELDS, dict(fields), tx_id, tags
        )

    def tombstone(
        self,
        entity_type: str,
        entity_key: str,
        tx_id: str = "",
        tags: Iterable[str] = (),
    ) -> LogEvent:
        """Mark an entity deleted (the data stays readable, 2.7)."""
        return self._append_local(
            entity_type, entity_key, EventKind.TOMBSTONE, {}, tx_id, tags
        )

    def mark_obsolete(
        self,
        entity_type: str,
        entity_key: str,
        tx_id: str = "",
        tags: Iterable[str] = (),
    ) -> LogEvent:
        """Mark a tentative entity obsolete — visible and durable, but no
        longer current (section 3.2)."""
        return self._append_local(
            entity_type, entity_key, EventKind.OBSOLETE, {}, tx_id, tags
        )

    def append_raw(
        self,
        entity_type: str,
        entity_key: str,
        kind: EventKind,
        payload: dict[str, Any],
        tx_id: str = "",
        tags: Iterable[str] = (),
    ) -> int:
        """Hot-path local write: append without materializing the stored
        :class:`LogEvent` at all — fields go straight into the columnar
        arena.  Returns the assigned LSN.

        Semantically identical to the typed write methods (which return
        the materialized event because they are API boundaries); use
        this in bulk ingestion loops where the caller does not look at
        the stored record.
        """
        if self.tracer is not None:
            return self._append_local(
                entity_type, entity_key, kind, payload, tx_id, tags
            ).lsn
        self._origin_seq += 1
        schema_version = (
            self.schema_version_source(entity_type)
            if self.schema_version_source is not None
            else 1
        )
        row = self.log.append_row(
            self._clock(),
            entity_type,
            entity_key,
            kind,
            payload,
            self.origin,
            self._origin_seq,
            tx_id,
            schema_version,
            frozenset(tags) if tags else _EMPTY_TAGS,
        )
        return self.log.arena.lsns[row]

    def _append_local(
        self,
        entity_type: str,
        entity_key: str,
        kind: EventKind,
        payload: dict[str, Any],
        tx_id: str,
        tags: Iterable[str],
    ) -> LogEvent:
        tracer = self.tracer
        if tracer is None:
            # Untraced fast path: write columns directly, materialize
            # the stored event once for the API-boundary return value.
            self._origin_seq += 1
            schema_version = (
                self.schema_version_source(entity_type)
                if self.schema_version_source is not None
                else 1
            )
            row = self.log.append_row(
                self._clock(),
                entity_type,
                entity_key,
                kind,
                payload,
                self.origin,
                self._origin_seq,
                tx_id,
                schema_version,
                frozenset(tags) if tags else _EMPTY_TAGS,
            )
            return self.log.arena.event_at(row)
        self._origin_seq += 1
        schema_version = (
            self.schema_version_source(entity_type)
            if self.schema_version_source is not None
            else 1
        )
        span = tracer.start_span(
            "store.append",
            node=self.origin,
            entity=f"{entity_type}/{entity_key}",
            kind=kind.value,
        )
        event = LogEvent(
            lsn=0,
            timestamp=self._clock(),
            entity_type=entity_type,
            entity_key=entity_key,
            kind=kind,
            payload=payload,
            origin=self.origin,
            origin_seq=self._origin_seq,
            tx_id=tx_id,
            schema_version=schema_version,
            tags=frozenset(tags),
            trace_id=span.trace_id,
            span_id=span.span_id,
        )
        self._span_by_identity[event.identity] = span.span_id
        with tracer.resume(span.span_id):
            stored = self.log.append(event)
        tracer.end_span(span, lsn=stored.lsn)
        return stored

    # ------------------------------------------------------------------ #
    # Remote application (replication / at-least-once delivery)
    # ------------------------------------------------------------------ #

    def apply_remote(self, event: LogEvent, parent_span: Optional[str] = None) -> bool:
        """Apply an event originated elsewhere, idempotently and in
        per-origin order.

        * A duplicate (origin sequence already applied) is rejected.
        * An out-of-order event (a gap in the origin's sequence) is
          buffered and drained once the gap fills, so at-least-once,
          unordered delivery still yields exactly-once, in-order apply.

        Args:
            event: The remote event to apply.
            parent_span: Optional span id the apply span should chain to
                (the replication shipper passes its per-event ship span);
                falls back to the event's own origin-append span.

        Returns:
            ``True`` if the event was appended now, ``False`` if it was
            a duplicate or was buffered for later.
        """
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.start_span(
                "store.apply",
                parent=parent_span or event.span_id or None,
                node=self.origin,
                origin=event.origin,
                seq=event.origin_seq,
            )
        applied_up_to = self.version_vector.get(event.origin)
        if event.origin_seq <= applied_up_to:
            self.duplicates_rejected += 1
            if self._m_duplicates is not None:
                self._m_duplicates.inc()
            if span is not None:
                tracer.end_span(span, status="duplicate")
            return False
        if event.origin_seq > applied_up_to + 1:
            self._reorder_buffer.setdefault(event.origin, {})[
                event.origin_seq
            ] = event
            self._update_reorder_gauge()
            if span is not None:
                tracer.end_span(span, status="buffered")
            return False
        # ``append`` re-stamps the LSN itself, so the incoming event
        # (carrying its origin store's LSN) goes straight in — no
        # intermediate zeroed copy.
        if span is None:
            self.log.append(event)
        else:
            self._span_by_identity[event.identity] = span.span_id
            with tracer.resume(span.span_id):
                self.log.append(event)
            tracer.end_span(span, status="applied")
        self._drain_buffer(event.origin)
        return True

    def apply_remote_batch(self, events: list[LogEvent]) -> int:
        """Apply a frame of remote events, amortising the apply prologue.

        Frames ship contiguous runs, so instead of paying the
        duplicate/gap checks per event this validates a run's head
        against the version vector once and appends the rest of the run
        in a tight loop (the vector advances with every append, keeping
        the invariant intact).  Events that are *not* the next expected
        sequence — duplicates, gaps, interleaved origins — fall back to
        :meth:`apply_remote` individually, so the semantics are
        identical to applying the frame event by event.

        Returns:
            How many events were appended now (buffered or duplicate
            events are not counted, matching :meth:`apply_remote`).
        """
        if self.tracer is not None:
            return sum(1 for event in events if self.apply_remote(event))
        applied = 0
        vector = self.version_vector
        log_append = self.log.append
        position = 0
        count = len(events)
        while position < count:
            event = events[position]
            origin = event.origin
            if event.origin_seq != vector.get(origin) + 1:
                if self.apply_remote(event):
                    applied += 1
                position += 1
                continue
            expected = event.origin_seq
            run_end = position
            while run_end < count:
                event = events[run_end]
                if event.origin != origin or event.origin_seq != expected:
                    break
                log_append(event)
                expected += 1
                run_end += 1
            applied += run_end - position
            position = run_end
            if self._reorder_buffer.get(origin):
                self._drain_buffer(origin)
        return applied

    def apply_remote_frame(self, frame: ColumnFrame) -> int:
        """Apply a :class:`ColumnFrame` of remote events — the columnar
        twin of :meth:`apply_remote_batch`, without materializing
        :class:`LogEvent` objects for in-order runs.

        Origins come out of the frame's dictionary in one bulk pass
        (one list-index per event — no per-event identity tuples or
        string hashing); runs that continue an origin's sequence
        bulk-extend the log's columns via
        :meth:`~repro.lsdb.log.AppendOnlyLog.extend_frame`; everything
        else (duplicates, gaps, interleavings) falls back to per-event
        :meth:`apply_remote`, so the semantics are identical to applying
        the frame's events one by one.
        """
        if self.tracer is not None:
            return sum(
                1 for event in frame.events() if self.apply_remote(event)
            )
        applied = 0
        vector = self.version_vector
        origins = frame.origin_strings()
        seqs = frame.origin_seqs
        extend_frame = self.log.extend_frame
        position = 0
        count = len(seqs)
        while position < count:
            origin = origins[position]
            expected = vector.get(origin) + 1
            if seqs[position] != expected:
                if self.apply_remote(frame.event_at(position)):
                    applied += 1
                position += 1
                continue
            run_end = position + 1
            expected += 1
            while (
                run_end < count
                and origins[run_end] == origin
                and seqs[run_end] == expected
            ):
                run_end += 1
                expected += 1
            extend_frame(frame, position, run_end)
            applied += run_end - position
            position = run_end
            if self._reorder_buffer.get(origin):
                self._drain_buffer(origin)
        return applied

    def _drain_buffer(self, origin: str) -> None:
        buffered = self._reorder_buffer.get(origin)
        if not buffered:
            return
        tracer = self.tracer
        while True:
            next_seq = self.version_vector.get(origin) + 1
            event = buffered.pop(next_seq, None)
            if event is None:
                break
            if tracer is None:
                self.log.append(event)
            else:
                span = tracer.start_span(
                    "store.apply",
                    parent=event.span_id or None,
                    node=self.origin,
                    origin=event.origin,
                    seq=event.origin_seq,
                )
                self._span_by_identity[event.identity] = span.span_id
                with tracer.resume(span.span_id):
                    self.log.append(event)
                tracer.end_span(span, status="applied_from_buffer")
        if not buffered:
            self._reorder_buffer.pop(origin, None)
        self._update_reorder_gauge()

    def _update_reorder_gauge(self) -> None:
        if self._g_reorder is not None:
            self._g_reorder.set(
                sum(len(pending) for pending in self._reorder_buffer.values())
            )

    # ------------------------------------------------------------------ #
    # Append bookkeeping (runs for local and remote appends alike)
    # ------------------------------------------------------------------ #

    def _on_append_row(self, cols: EventColumns, row: int) -> None:
        """Columnar per-append bookkeeping: fold into the incremental
        cache and maintain the per-origin feed, reading columns directly
        (no materialized event on this path).

        With coalescing armed the fold half is deferred (the coalescer
        queues the row and fuses bursts into one batch-apply run fold);
        the feed/version-vector half below always runs immediately —
        replication correctness never waits on a flush.
        """
        if self.coalescer is not None:
            self.coalescer.defer(row)
            if self._m_appends is not None:
                self._m_appends.inc()
        else:
            states = self._states
            ref = cols.ref_tuples[cols.ref_ids[row]]
            state = states.get(ref)
            if state is None:
                self._type_refs.setdefault(ref[0], []).append(ref)
            states[ref] = self.rollup.rows_folder_for(ref[0])(
                state, cols, (row,), ref
            )
            if self._m_appends is not None:
                self._m_appends.inc()
                self._m_folds.inc()
        seq = cols.origin_seqs[row]
        origin = cols.origins.value(cols.origin_ids[row])
        if seq:
            self.version_vector.record(origin, seq)
        rows = self._by_origin.get(origin)
        if rows is None:
            self._by_origin[origin] = [row]
            self._by_origin_seqs[origin] = [seq]
            return
        seqs = self._by_origin_seqs[origin]
        if seq >= seqs[-1]:
            rows.append(row)
            seqs.append(seq)
        else:
            # Out-of-sequence arrival (only possible for events injected
            # outside the replication protocol): keep the feed sorted so
            # bisect stays correct.
            position = bisect_right(seqs, seq)
            seqs.insert(position, seq)
            rows.insert(position, row)

    def _on_append_batch(self, view: EventSlice) -> None:
        """Bulk bookkeeping for a frame apply: one grouped fold over the
        slice, one version-vector record per origin run, and array
        extends on the per-origin feed — O(distinct entities + rows)
        dictionary work instead of O(rows)."""
        # Pending coalesced rows precede this batch in LSN order: fold
        # them first so the state map always reflects append order.
        self._flush_coalesced()
        self.rollup.fold_slice_into(self._states, view, self._type_refs)
        count = len(view)
        if self._m_appends is not None:
            self._m_appends.inc(count)
            self._m_folds.inc(count)
        cols = view.arena
        rows = view.rows
        seqs_col = cols.origin_seqs
        origin_ids = cols.origin_ids
        origin_value = cols.origins.value
        position = 0
        while position < count:
            first_row = rows[position]
            oid = origin_ids[first_row]
            run_end = position + 1
            while run_end < count and origin_ids[rows[run_end]] == oid:
                run_end += 1
            origin = origin_value(oid)
            run_rows = rows[position:run_end]
            # Frame runs carry ascending sequences, so recording the
            # last one is the same set of vector updates as recording
            # each (record keeps the max).
            last_seq = seqs_col[rows[run_end - 1]]
            if last_seq:
                self.version_vector.record(origin, last_seq)
            bucket = self._by_origin.get(origin)
            if bucket is None:
                self._by_origin[origin] = list(run_rows)
                self._by_origin_seqs[origin] = [
                    seqs_col[r] for r in run_rows
                ]
            else:
                seqs = self._by_origin_seqs[origin]
                if seqs_col[first_row] >= seqs[-1]:
                    bucket.extend(run_rows)
                    seqs.extend(seqs_col[r] for r in run_rows)
                else:  # pragma: no cover - frames never regress, but
                    # keep the sorted-feed invariant for direct callers
                    for r in run_rows:
                        seq = seqs_col[r]
                        insert_at = bisect_right(seqs, seq)
                        seqs.insert(insert_at, seq)
                        bucket.insert(insert_at, r)
            position = run_end

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def get(self, entity_type: str, entity_key: str) -> Optional[EntityState]:
        """The current rolled-up state of one entity (``None`` if the
        entity has no events at all; a tombstoned entity is returned
        with ``deleted=True``)."""
        if self.coalescer is not None:
            self.coalescer.flush()
        return self._states.get((entity_type, entity_key))

    def read(
        self,
        entity_type: str,
        entity_key: str,
        *,
        request=None,
    ):
        """The unified read protocol (see :mod:`repro.core.readpath`).

        A single store has one copy of the data, so every consistency
        level reads the same rollup; the parameter exists so callers
        can swap a store for a replicated surface without changing call
        sites.  With a typed ``request`` the answer is a
        :class:`~repro.core.readpath.ReadResult` delivered at the
        requested level with zero staleness (this *is* the copy of
        record in an unreplicated deployment).

        With a read cache attached (:meth:`attach_read_cache`) the read
        routes through it: ``STRONG`` revalidates the watermark every
        time, ``BOUNDED_STALENESS``/``EVENTUAL`` may serve a cached
        fold stamped with its honest measured age.
        """
        if self.read_cache is not None:
            return self.read_cache.read(entity_type, entity_key, request=request)
        state = self.get(entity_type, entity_key)
        if request is None:
            return state
        from repro.core.readpath import deliver

        return deliver(
            state,
            request,
            request.level,
            staleness=0.0,
            served_by=self.name,
            metrics=self.metrics,
        )

    def require(self, entity_type: str, entity_key: str) -> EntityState:
        """Like :meth:`get` but raises for missing or deleted entities."""
        state = self.get(entity_type, entity_key)
        if state is None or state.deleted:
            raise EntityNotFound(f"{entity_type}/{entity_key}")
        return state

    def current_state(self) -> StateMap:
        """A copy of the whole current-state map."""
        self._flush_coalesced()
        return {ref: state.copy() for ref, state in self._states.items()}

    def entities_of_type(self, entity_type: str, live_only: bool = True) -> list[EntityState]:
        """All entities of a type (optionally excluding deleted/obsolete).
        Served from the per-type ref index: O(entities of the type), not
        O(all entities)."""
        self._flush_coalesced()
        states = self._states
        return [
            state
            for ref in self._type_refs.get(entity_type, ())
            if (state := states[ref]).live or not live_only
        ]

    def state_as_of(self, lsn: int) -> StateMap:
        """Time-travel read: the rolled-up state at a historic LSN,
        served from snapshots plus suffix replay."""
        return self.snapshots.state_at(lsn)

    def rebuild_cache(self, *, full: bool = False) -> int:
        """Rebuild the incremental state cache.

        With checkpoints armed (:meth:`enable_checkpoints`) and a valid
        checkpoint available, the rebuild restores the frozen state map
        and folds only ``log.since(checkpoint.lsn)`` — O(delta), not
        O(log).  Without one (or with ``full=True``) the whole live log
        is re-folded from scratch.

        The full path is what a changed *interpretation* needs — e.g. a
        schema migration installed a new upcast chain
        (:class:`repro.core.migration.MigratingReducer`): events already
        folded under the old schema re-fold under the new one.  Both
        :meth:`register_reducer` and migrations invalidate checkpoints,
        so a plain ``rebuild_cache()`` after either automatically falls
        back to the full replay.

        Returns:
            The number of events (re-)folded.
        """
        if self.coalescer is not None:
            # Pending rows are already in the log; the rebuild re-folds
            # them, so folding the queue first would be redundant work.
            self.coalescer.discard()
        checkpoint = None
        if not full and self.checkpoints is not None:
            checkpoint = self.checkpoints.latest()
        if checkpoint is None:
            events = self.log.events()
            self._states = self.rollup.fold(events)
            self._type_refs = {}
            for ref in self._states:
                self._type_refs.setdefault(ref[0], []).append(ref)
            return len(events)
        return self._restore_states(checkpoint)

    def _restore_states(self, checkpoint: Checkpoint) -> int:
        """Install a checkpoint's state map and fold the log suffix over
        it.  Returns the number of suffix events folded."""
        if self.coalescer is not None:
            self.coalescer.discard()  # suffix replay re-folds the queue
        self._states = {
            ref: state.copy() for ref, state in checkpoint.states.items()
        }
        self._type_refs = {
            entity_type: list(refs)
            for entity_type, refs in checkpoint.type_refs.items()
        }
        suffix = self.log.since(checkpoint.lsn)
        # Grouped columnar replay: one run fold per touched entity.
        self.rollup.fold_slice_into(self._states, suffix, self._type_refs)
        return len(suffix)

    def recover(self) -> RecoveryReport:
        """Cold-start recovery of every derived structure.

        Models a restart where the log is durable but the caches are
        gone: the reorder buffer is cleared, the state map is rebuilt
        (checkpoint + suffix when available, full replay otherwise) and
        every secondary index is restored from its checkpoint snapshot
        then refreshed to the log head.  The recovered cache is
        byte-identical to one that was never torn down — the incremental
        cache *is* the fold of the log, and a checkpoint is a prefix of
        that fold.
        """
        self._reorder_buffer = {}
        self._update_reorder_gauge()
        if self.read_cache is not None:
            # A restart loses the cache along with every other derived
            # structure; refills re-watermark against the rebuilt state.
            self.read_cache.invalidate_all("recover")
        checkpoint = (
            self.checkpoints.latest() if self.checkpoints is not None else None
        )
        indexes_restored = 0
        if checkpoint is None:
            replayed = self.rebuild_cache(full=True)
            for index in self._indexes.values():
                index.reset()
                index.refresh()
            return RecoveryReport(
                used_checkpoint=False,
                checkpoint_lsn=0,
                events_replayed=replayed,
                indexes_restored=0,
            )
        replayed = self._restore_states(checkpoint)
        for key, index in self._indexes.items():
            snapshot = checkpoint.index_snapshots.get(key)
            if snapshot is not None:
                index.restore(snapshot)
                indexes_restored += 1
            else:
                index.reset()
            index.refresh()
        return RecoveryReport(
            used_checkpoint=True,
            checkpoint_lsn=checkpoint.lsn,
            events_replayed=replayed,
            indexes_restored=indexes_restored,
        )

    def install_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Bootstrap an **empty** store from a peer's checkpoint.

        This is how a brand-new replica joins without replaying the
        donor's whole log: it receives the frozen state map plus the
        per-origin watermarks, so the version vector immediately rejects
        pre-checkpoint events and replication only has to ship the delta
        (anti-entropy probes fill the rest).  The local log stays empty
        — history from before the checkpoint lives at the donors, which
        is exactly the paper's summarization trade-off: this node serves
        current state and *new* history, not the archived past.
        """
        if len(self.log) or self._states:
            raise ReproError(
                f"store {self.name!r} is not empty; install_checkpoint "
                "is a bootstrap-only operation"
            )
        if self.read_cache is not None:
            # An empty store can still have cached negative entries
            # (absent entities at watermark 0) that the installed states
            # contradict — a bootstrap resets the cache with the rest.
            self.read_cache.invalidate_all("install_checkpoint")
        self._states = {
            ref: state.copy() for ref, state in checkpoint.states.items()
        }
        self._type_refs = {
            entity_type: list(refs)
            for entity_type, refs in checkpoint.type_refs.items()
        }
        self.version_vector = VersionVector(dict(checkpoint.version_vector))
        # If this node's id appears in the donor's watermarks (a rejoin
        # under the same name), continue the sequence rather than reuse it.
        self._origin_seq = max(
            self._origin_seq, checkpoint.version_vector.get(self.origin, 0)
        )
        for key, snapshot in checkpoint.index_snapshots.items():
            index = self._indexes.get(key)
            if index is not None:
                index.restore(snapshot)
                # The donor's applied_lsn is meaningless in this store's
                # (empty) LSN space: the buckets are warm as of the
                # checkpoint, and every *local* append still needs to be
                # folded in, so refreshes must start from LSN 0.
                index.applied_lsn = 0

    def rollup_from_scratch(self) -> StateMap:
        """Fold the entire live log (the unaccelerated rollup the paper
        describes; used by E6 as the baseline read cost)."""
        return self.rollup.fold(self.log.events())

    def history(self, entity_type: str, entity_key: str) -> list[LogEvent]:
        """The full operation history of an entity: archived events (if
        compacted) followed by live log events (principle 2.7's audit
        trail, e.g. tracing negative inventory, 2.1)."""
        return self.archive.events_for(entity_type, entity_key) + self.log.for_entity(
            entity_type, entity_key
        )

    def query(self, entity_type: str, field_name: str, value: Any) -> set[str]:
        """Index lookup, *as of the index's last refresh* (stale by design)."""
        index = self._indexes.get((entity_type, field_name))
        if index is None:
            raise KeyError(f"no index on {entity_type}.{field_name}")
        return index.lookup(value)

    def refresh_indexes(self) -> None:
        """Bring every index up to the log head (the deferred action a
        background step performs, principle 2.3)."""
        for index in self._indexes.values():
            index.refresh()

    # ------------------------------------------------------------------ #
    # Replication feeds & maintenance
    # ------------------------------------------------------------------ #

    def events_since(self, lsn: int) -> EventSlice:
        """Local-log catch-up feed (async backup shipping).  A columnar
        view — nothing materializes until the consumer touches events,
        and frame shipping encodes straight from the columns."""
        return self.log.since(lsn)

    def iter_events_since(self, lsn: int) -> Iterable[LogEvent]:
        """Streaming variant of :meth:`events_since` (see
        :meth:`~repro.lsdb.log.AppendOnlyLog.iter_since`)."""
        return self.log.iter_since(lsn)

    def events_from_origin(self, origin: str, after_seq: int) -> EventSlice:
        """Events originated at ``origin`` with sequence > ``after_seq``
        (anti-entropy fills version-vector gaps from this feed).
        O(log n + result) via bisect over the per-origin sequence array.
        Served from arena rows, so the feed still carries raw originals
        for sequences whose live-log events were compacted away."""
        arena = self.log.arena
        seqs = self._by_origin_seqs.get(origin)
        if not seqs or after_seq >= seqs[-1]:
            return EventSlice(arena, ())
        rows = self._by_origin[origin]
        return EventSlice(arena, rows[bisect_right(seqs, after_seq):])

    def count_from_origin(self, origin: str, after_seq: int) -> int:
        """How many events from ``origin`` have sequence > ``after_seq``,
        without materialising them (replication-lag probes)."""
        seqs = self._by_origin_seqs.get(origin)
        if not seqs:
            return 0
        return len(seqs) - bisect_right(seqs, after_seq)

    def compact(self, keep_recent: int = 0) -> CompactionReport:
        """Summarise all but the newest ``keep_recent`` events.

        With checkpoints armed, the pre-compaction checkpoint is
        discarded (the prefix it expected to replay over was just
        rewritten) and — under the default policy — a fresh one is taken
        immediately, so recovery stays O(delta) across compactions.
        """
        self._flush_coalesced()  # summarise folded truth, not a queue
        report = self.compactor.compact_keep_recent(keep_recent)
        if self.checkpoints is not None:
            self.checkpoints.on_compaction()
        return report

    @property
    def live_events(self) -> int:
        """Number of events in the live (uncompacted) log."""
        return len(self.log)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LSDBStore({self.name!r}, origin={self.origin!r}, "
            f"entities={len(self._states)}, live_events={self.live_events})"
        )
