"""The skew-aware hot path: watermark-validated read cache + write coalescing.

Paper principle 2.10 (contention concentrates on hot entities) and 2.9
(demand versus supply) say real traffic is skewed: a few entities absorb
most reads and writes.  This module serves that skew on both sides of
the store:

* :class:`ReadCache` — a read-through snapshot cache over the rollup,
  keyed by ``(entity_type, key)``.  Every entry carries an **LSN
  watermark**: the head LSN of the entity's log history at fill time.
  Validation is one O(1) probe of the log's per-entity index ("any
  events since my watermark?"); a current hit returns the cached folded
  state without touching the arena or the live state map.  A *stale*
  entry may still be served — but only when its measured age (the age
  of the oldest event past the watermark, read from the log's
  timestamps) fits the caller's staleness budget, so cache-served reads
  stamp **honest measured staleness** and never silently exceed a
  bound.  Eviction is size-bounded LRU with a space-saving top-k hot-set
  tracker pinning the hot set.
* :class:`WriteCoalescer` — hot-key write coalescing on the ingest
  path.  The log append, per-origin feed and version-vector bookkeeping
  stay immediate (replication correctness is untouched); only the
  incremental-cache *fold* is deferred, and a burst against the same
  hot entity fuses into one batch-apply run fold
  (:meth:`~repro.lsdb.rollup.Rollup.fold_slice_into`, the PR 6 fused
  pass) at flush.  The coalescing window runs on **virtual time** and
  every state read flushes first, so read-your-writes holds and chaos
  soaks stay byte-deterministic with coalescing on.

Invalidation is structural, not temporal: compaction
(:meth:`~repro.lsdb.log.AppendOnlyLog.rewrite_prefix`) rewrites history
without changing the entity head LSN (the compactor reuses the last
summarised LSN), so watermark comparison alone would keep serving
pre-compaction folds.  The log's structure-change subscription and the
store's checkpoint/reducer hooks drop every entry whenever the mapping
from LSNs to folds changes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Optional

from repro.core.consistency import ConsistencyLevel
from repro.core.readpath import deliver
from repro.lsdb.rollup import EntityState

EntityRef = tuple[str, str]


class HotSetTracker:
    """Space-saving top-k frequency sketch over entity refs.

    The classic Metwally et al. *space-saving* summary: at most
    ``capacity`` tracked keys; an untracked key evicts the
    minimum-count entry and inherits its count plus one, so every key
    whose true frequency exceeds ``n / capacity`` is guaranteed to be
    tracked.  Deterministic: ties break on tracking order (dict
    insertion order), never on hashing or randomness.
    """

    __slots__ = ("capacity", "_counts")

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counts: dict[EntityRef, int] = {}

    def touch(self, key: EntityRef) -> None:
        """Record one access to ``key``."""
        counts = self._counts
        count = counts.get(key)
        if count is not None:
            counts[key] = count + 1
            return
        if len(counts) < self.capacity:
            counts[key] = 1
            return
        victim, floor = min(counts.items(), key=lambda item: item[1])
        del counts[victim]
        counts[key] = floor + 1

    def is_hot(self, key: EntityRef) -> bool:
        """Whether ``key`` is currently in the tracked top-k."""
        return key in self._counts

    def hot_keys(self) -> list[EntityRef]:
        """Tracked keys, hottest first (count desc, then key — stable)."""
        return sorted(self._counts, key=lambda k: (-self._counts[k], k))

    def __len__(self) -> int:
        return len(self._counts)


class ReadCache:
    """A read-through, watermark-validated snapshot cache.

    The cache never owns truth: ``head(ref)`` asks the backing surface
    for the entity's current watermark (the newest LSN of its history),
    ``age(ref, watermark)`` measures how old a stale entry is, and
    ``fetch(ref)`` produces the authoritative current fold on a miss.
    Entries are frozen copies — a hit hands the same object out
    repeatedly; callers must treat it as immutable (the same contract
    as reading the store's live state map).

    Build one with :meth:`over_store` or :meth:`over_warehouse` rather
    than calling the constructor directly.

    Args:
        name: Diagnostic/metric label.
        fetch: ``ref -> Optional[EntityState]`` — authoritative read.
        head: ``ref -> int`` — the entity's current watermark.
        age: ``(ref, watermark) -> Optional[float]`` — measured age of a
            fold taken at ``watermark``; ``None`` means "cannot measure,
            refresh instead".  ``None`` callable disables stale serving.
        capacity: Maximum cached entries (LRU beyond this).
        hot_capacity: Top-k size of the hot-set tracker; hot entries are
            pinned against LRU eviction.
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; mirrors
            the plain-int counters as ``cache.{hits,misses,evictions,
            invalidations}`` counters and the ``cache.hot_keys`` gauge,
            labelled ``cache=name``.
        served_by: The ``ReadResult.served_by`` stamp for typed reads.
    """

    def __init__(
        self,
        *,
        name: str = "cache",
        fetch: Callable[[EntityRef], Optional[EntityState]],
        head: Callable[[EntityRef], int],
        age: Optional[Callable[[EntityRef, int], Optional[float]]] = None,
        capacity: int = 512,
        hot_capacity: int = 16,
        metrics: Any = None,
        served_by: str = "",
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._fetch = fetch
        self._head = head
        self._age = age
        self.tracker = HotSetTracker(hot_capacity)
        #: ref -> (frozen state or None, watermark), LRU -> MRU order.
        self._entries: "OrderedDict[EntityRef, tuple[Optional[EntityState], int]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.served_by = served_by or f"{name}"
        self._metrics = metrics
        if metrics is not None:
            self._m_hits = metrics.counter("cache.hits", cache=name)
            self._m_misses = metrics.counter("cache.misses", cache=name)
            self._m_evictions = metrics.counter("cache.evictions", cache=name)
            self._m_invalidations = metrics.counter(
                "cache.invalidations", cache=name
            )
            self._g_hot = metrics.gauge("cache.hot_keys", cache=name)
        else:
            self._m_hits = self._m_misses = None
            self._m_evictions = self._m_invalidations = None
            self._g_hot = None

    # ------------------------------------------------------------------ #
    # Construction over concrete surfaces
    # ------------------------------------------------------------------ #

    @classmethod
    def over_store(
        cls,
        store: Any,
        *,
        capacity: int = 512,
        hot_capacity: int = 16,
        metrics: Any = None,
        name: Optional[str] = None,
    ) -> "ReadCache":
        """A cache over an :class:`~repro.lsdb.store.LSDBStore`.

        Watermarks come from the log's O(1) per-entity index
        (:meth:`~repro.lsdb.log.AppendOnlyLog.entity_head_lsn`); stale
        ages from the first event past the watermark, in virtual time.
        Attaches itself (:meth:`LSDBStore.attach_read_cache`), which
        also subscribes the compaction/checkpoint invalidation hooks
        and routes the store's typed reads through the cache.
        """

        def entity_age(ref: EntityRef, watermark: int) -> Optional[float]:
            stamp = store.log.entity_first_timestamp_after(
                ref[0], ref[1], watermark
            )
            if stamp is None:
                return 0.0
            return max(0.0, store.now() - stamp)

        cache = cls(
            name=name or f"{store.name}-cache",
            fetch=lambda ref: store.get(*ref),
            head=lambda ref: store.log.entity_head_lsn(*ref),
            age=entity_age,
            capacity=capacity,
            hot_capacity=hot_capacity,
            metrics=metrics if metrics is not None else store.metrics,
            served_by=f"{store.name}+cache",
        )
        store.attach_read_cache(cache)
        return cache

    @classmethod
    def over_warehouse(
        cls,
        warehouse: Any,
        *,
        capacity: int = 512,
        hot_capacity: int = 16,
        metrics: Any = None,
        name: str = "warehouse-cache",
    ) -> "ReadCache":
        """A cache over a :class:`~repro.replication.warehouse.WarehouseExtract`.

        The watermark is the extract's ``extracted_lsn`` — one number
        for every entity, because an extract is an atomic snapshot.  A
        new extract re-watermarks the world: old entries miss and
        refresh on next touch (no stale serving below an extract; the
        warehouse already stamps extract-level staleness itself).
        """
        cache = cls(
            name=name,
            fetch=lambda ref: warehouse.get(*ref),
            head=lambda ref: warehouse.extracted_lsn,
            age=None,
            capacity=capacity,
            hot_capacity=hot_capacity,
            metrics=metrics if metrics is not None else warehouse.sim.metrics,
            served_by="warehouse+cache",
        )
        warehouse.attach_read_cache(cache)
        return cache

    # ------------------------------------------------------------------ #
    # The cache primitive
    # ------------------------------------------------------------------ #

    def lookup(
        self,
        entity_type: str,
        entity_key: str,
        *,
        budget: Optional[float] = None,
        revalidate: bool = False,
    ) -> tuple[Optional[EntityState], float]:
        """The entity's folded state plus the measured age of that fold.

        * watermark current → hit, age ``0.0`` (the cached fold *is*
          the entity's present state — nothing appended since).
        * watermark behind, ``revalidate=False`` and measured age within
          ``budget`` (``None`` = unbounded) → hit, honest age stamped.
        * otherwise → miss: refresh from the authoritative surface,
          re-watermark, age ``0.0``.

        A read can therefore never observe a fold older than its budget
        — the "zero stale-beyond-bound serves" guarantee the perf gate
        checks.
        """
        ref = (entity_type, entity_key)
        self.tracker.touch(ref)
        if self._g_hot is not None:
            self._g_hot.set(len(self.tracker))
        entry = self._entries.get(ref)
        if entry is not None:
            state, watermark = entry
            if watermark == self._head(ref):
                self._record_hit(ref)
                return state, 0.0
            if not revalidate and self._age is not None:
                age = self._age(ref, watermark)
                if age is not None and (budget is None or age <= budget):
                    self._record_hit(ref)
                    return state, age
        self.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()
        state = self._fetch(ref)
        frozen = state.copy() if state is not None else None
        self._install(ref, frozen, self._head(ref))
        return frozen, 0.0

    def read(
        self,
        entity_type: str,
        entity_key: str,
        *,
        request=None,
    ):
        """The unified read protocol, served through the cache.

        ``STRONG`` always revalidates (only a watermark-current entry
        counts as a hit; anything else refreshes — staleness 0 by
        construction).  ``BOUNDED_STALENESS`` serves a stale entry only
        within ``request.max_staleness``; ``EVENTUAL`` and weaker serve
        any cached entry, stamping its honest measured age.
        """
        if request is None:
            state, _ = self.lookup(entity_type, entity_key)
            return state
        level = request.level
        if level is ConsistencyLevel.STRONG:
            state, age = self.lookup(entity_type, entity_key, revalidate=True)
        elif level is ConsistencyLevel.BOUNDED_STALENESS:
            state, age = self.lookup(
                entity_type, entity_key, budget=request.max_staleness
            )
        else:
            state, age = self.lookup(entity_type, entity_key, budget=None)
        return deliver(
            state,
            request,
            level,
            staleness=age,
            served_by=self.served_by,
            metrics=self._metrics,
        )

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def invalidate(self, entity_type: str, entity_key: str) -> bool:
        """Drop one entry (``True`` if it was cached)."""
        if self._entries.pop((entity_type, entity_key), None) is None:
            return False
        self.invalidations += 1
        if self._m_invalidations is not None:
            self._m_invalidations.inc()
        return True

    def invalidate_all(self, reason: str = "") -> int:
        """Drop every entry — the structural-change hook (compaction,
        checkpoint install, reducer change).  Returns how many entries
        were dropped."""
        dropped = len(self._entries)
        if dropped:
            self._entries.clear()
            self.invalidations += dropped
            if self._m_invalidations is not None:
                self._m_invalidations.inc(dropped)
        return dropped

    def on_structure_change(self) -> None:
        """Log structure-change callback (``rewrite_prefix``): history
        below an entity's head was rewritten, so watermark equality no
        longer implies fold equality — drop everything."""
        self.invalidate_all("structure")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ref: EntityRef) -> bool:
        return ref in self._entries

    def stats(self) -> dict[str, int]:
        """Plain-int counters (metrics-free introspection)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hot_tracked": len(self.tracker),
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _record_hit(self, ref: EntityRef) -> None:
        self.hits += 1
        if self._m_hits is not None:
            self._m_hits.inc()
        self._entries.move_to_end(ref)

    def _install(
        self, ref: EntityRef, frozen: Optional[EntityState], watermark: int
    ) -> None:
        entries = self._entries
        entries[ref] = (frozen, watermark)
        entries.move_to_end(ref)
        while len(entries) > self.capacity:
            self._evict()

    def _evict(self) -> None:
        entries = self._entries
        is_hot = self.tracker.is_hot
        victim = None
        for ref in entries:  # LRU -> MRU
            if not is_hot(ref):
                victim = ref
                break
        if victim is None:
            # Everything cached is hot: fall back to plain LRU.
            victim = next(iter(entries))
        del entries[victim]
        self.evictions += 1
        if self._m_evictions is not None:
            self._m_evictions.inc()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReadCache({self.name!r}, entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class WriteCoalescer:
    """Defer incremental-cache folds so hot-key bursts fuse into one
    batch-apply run fold.

    Only the *fold* is deferred: the log append, LSN assignment,
    per-origin feed and version-vector bookkeeping all happen
    immediately, so replication, staleness measurement and catch-up
    feeds are untouched.  Pending rows flush

    * when the **virtual-time window** since the batch's first row
      expires (checked at the next append — no timers, no wall clock,
      so seeded runs stay byte-deterministic),
    * when the batch reaches ``max_batch`` rows,
    * and before **any** state read (the store's read surfaces flush
      first), which is what makes deferral unobservable: read-your-
      writes holds and the final state map is byte-identical to folding
      every row immediately (``fold_slice_into`` processes rows in the
      exact append order).

    Args:
        fold: ``rows -> None`` — the store's batch fold over pending
            arena rows (:meth:`LSDBStore._fold_rows_now`).
        clock: Virtual-time source.
        window: Coalescing window on virtual time.
        max_batch: Flush when this many rows are pending.
        metrics: Optional registry for ``store.coalesce_flushes`` /
            ``store.coalesce_fused_rows`` counters.
        origin: Metric label.
    """

    __slots__ = (
        "window",
        "max_batch",
        "flushes",
        "fused_rows",
        "_fold",
        "_clock",
        "_pending",
        "_window_start",
        "_m_flushes",
        "_m_fused",
    )

    def __init__(
        self,
        *,
        fold: Callable[[list[int]], None],
        clock: Callable[[], float],
        window: float = 5.0,
        max_batch: int = 64,
        metrics: Any = None,
        origin: str = "local",
    ):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._fold = fold
        self._clock = clock
        self.window = window
        self.max_batch = max_batch
        self._pending: list[int] = []
        self._window_start = 0.0
        self.flushes = 0
        self.fused_rows = 0
        if metrics is not None:
            self._m_flushes = metrics.counter(
                "store.coalesce_flushes", origin=origin
            )
            self._m_fused = metrics.counter(
                "store.coalesce_fused_rows", origin=origin
            )
        else:
            self._m_flushes = self._m_fused = None

    def defer(self, row: int) -> None:
        """Queue one freshly appended arena row for a fused fold."""
        pending = self._pending
        now = self._clock()
        if pending and now - self._window_start > self.window:
            self.flush()
            pending = self._pending
        if not pending:
            self._window_start = now
        pending.append(row)
        if len(pending) >= self.max_batch:
            self.flush()

    def flush(self) -> int:
        """Fold every pending row now (in append order).  Returns how
        many rows were folded."""
        pending = self._pending
        if not pending:
            return 0
        self._pending = []
        self._fold(pending)
        count = len(pending)
        self.flushes += 1
        self.fused_rows += count
        if self._m_flushes is not None:
            self._m_flushes.inc()
            self._m_fused.inc(count)
        return count

    def discard(self) -> int:
        """Drop pending rows without folding — for rebuilds that re-fold
        the log wholesale (the pending rows are already in the log)."""
        dropped = len(self._pending)
        self._pending = []
        return dropped

    @property
    def pending(self) -> int:
        """Rows queued but not yet folded."""
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WriteCoalescer(window={self.window}, pending={self.pending}, "
            f"flushes={self.flushes})"
        )
