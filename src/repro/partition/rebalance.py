"""Bulk rebalance execution: batched live handoff of a move plan.

The :class:`~repro.partition.ring.RebalancePlanner` says *what* must
move; this module moves it, over live units, without a stop-the-world
pause.  Each entity transfer is the existing single-entity relocation
protocol (lock -> snapshot-write -> tombstone -> directory flip, see
:mod:`repro.partition.relocation`); the :class:`Rebalancer` adds the
bulk concerns around it:

* **batching** — at most ``batch_size`` entities move per simulator
  tick, ``batch_interval`` apart, so foreground traffic keeps getting
  commit slots while the rebalance drains;
* **fault tolerance** — transiently unmovable entities (locked by a
  writer, source or target node crashed or partitioned away) are
  retried under a :class:`~repro.core.policy.RetryPolicy`, and the
  whole run is bounded by a :class:`~repro.core.policy.TimeoutPolicy`
  deadline;
* **safety on giving up** — an entity whose retries are exhausted is
  *pinned*: its directory override is set to its current physical unit,
  so flipping the base router can never make it unreachable (it simply
  stays where it is until a later rebalance pass);
* **the bulk directory flip** — once the plan has drained, a catch-up
  sweep re-plans over entities written *during* the rebalance, the
  directory's base router is swapped to the new membership, and every
  override the new base already agrees with is compacted away (bulk
  moves would otherwise grow the directory by one override per entity,
  forever);
* **observability** — progress counters and a span per run/batch in
  :mod:`repro.obs`, so a timeline shows the rebalance interleaved with
  the traffic it ran under.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.core.policy import Deadline, RetryPolicy, TimeoutPolicy
from repro.partition.relocation import EntityMover
from repro.partition.ring import PlannedMove, RebalancePlan, RebalancePlanner
from repro.partition.router import Router

__all__ = ["RebalanceReport", "RebalanceRun", "Rebalancer"]

#: Move-report reasons that mean "try again later" rather than "give up".
_TRANSIENT_REASONS = ("entity locked by another owner", "units unreachable")


@dataclass
class RebalanceReport:
    """Outcome of one bulk rebalance run.

    ``completed + skipped + failed == planned`` once the run is done;
    ``retried`` counts extra attempts beyond each entity's first.
    """

    planned: int = 0
    keys_total: int = 0
    completed: int = 0
    skipped: int = 0  # entity vanished (deleted) between plan and move
    failed: int = 0  # retries exhausted; entity pinned where it is
    retried: int = 0
    swept: int = 0  # catch-up moves for entities written mid-rebalance
    batches: int = 0
    overrides_compacted: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    deadline_exceeded: bool = False

    @property
    def duration(self) -> float:
        """Virtual time the run occupied."""
        return self.finished_at - self.started_at

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON-friendly summary (sorted keys)."""
        return {
            "batches": self.batches,
            "completed": self.completed,
            "deadline_exceeded": self.deadline_exceeded,
            "duration": self.duration,
            "failed": self.failed,
            "keys_total": self.keys_total,
            "overrides_compacted": self.overrides_compacted,
            "planned": self.planned,
            "retried": self.retried,
            "skipped": self.skipped,
            "swept": self.swept,
        }


class RebalanceRun:
    """A live (possibly still draining) rebalance.

    Attributes:
        plan: The plan being executed.
        report: Progress so far; final once :attr:`done`.
        done: Whether the run has finished (drained or dead-lined).
    """

    def __init__(self, rebalancer: "Rebalancer", plan: RebalancePlan,
                 new_router: Optional[Router], on_done: Optional[Callable[["RebalanceRun"], None]]):
        self.plan = plan
        self.report = RebalanceReport(
            planned=plan.keys_moved, keys_total=plan.keys_total
        )
        self.done = False
        self._rebalancer = rebalancer
        self._new_router = new_router
        self._on_done = on_done
        self._pending: deque[tuple[PlannedMove, int]] = deque(
            (move, 0) for move in plan.moves
        )
        self._waiting: list[PlannedMove] = []  # moves parked on retry timers
        # Entities to pin at finish: (type, key, physical unit).  The
        # physical unit is captured at give-up time, while the directory
        # still routes by the *old* base — after the flip it would answer
        # with the new base's target, which is where the data is not.
        self._pins: list[tuple[str, str, str]] = []
        self._deadline: Deadline = Deadline()
        self._span: Any = None

    @property
    def outstanding(self) -> int:
        """Moves not yet resolved (queued now or waiting on a retry)."""
        return len(self._pending) + len(self._waiting)

    def wait(self) -> RebalanceReport:
        """Drive the simulator until this run finishes (convenience for
        callers not running their own event loop) and return the report."""
        sim = self._rebalancer.sim
        if sim is not None:
            while not self.done and sim.step():
                pass
        return self.report


class Rebalancer:
    """Executes rebalance plans over live units.

    Args:
        mover: The per-entity relocation engine (its directory is the
            authority on where entities physically are).
        sim: The simulator that paces batches and retries.  ``None``
            runs every batch back-to-back, synchronously (retry delays
            collapse to immediate re-attempts).
        retry: Per-entity retry policy for transient failures (default:
            6 attempts, exponential backoff from 2.0 time units).
        timeout: Whole-run bound; on expiry the run stops retrying,
            pins everything unresolved, and reports
            ``deadline_exceeded``.
        batch_size: Entities moved per batch.
        batch_interval: Virtual time between batches.
        gate: Optional reachability predicate ``(source, target) ->
            bool``; a ``False`` answer is a transient failure (used to
            model crashed or partitioned-away unit hosts).
    """

    def __init__(
        self,
        mover: EntityMover,
        sim: Any = None,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[TimeoutPolicy] = None,
        batch_size: int = 16,
        batch_interval: float = 1.0,
        gate: Optional[Callable[[str, str], bool]] = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if batch_interval < 0:
            raise ValueError(f"batch_interval must be >= 0, got {batch_interval}")
        self.mover = mover
        self.sim = sim
        self.retry = retry if retry is not None else RetryPolicy.exponential(
            max_attempts=6, base_delay=2.0
        )
        self.timeout = timeout if timeout is not None else TimeoutPolicy.none()
        self.batch_size = batch_size
        self.batch_interval = batch_interval
        self.gate = gate
        self._rng: Any = None  # forked lazily, only for jittered policies
        tracer = getattr(sim, "tracer", None)
        metrics = getattr(sim, "metrics", None)
        self.tracer = tracer
        if metrics is not None:
            self._m_completed = metrics.counter("rebalance.moves_completed")
            self._m_failed = metrics.counter("rebalance.moves_failed")
            self._m_retried = metrics.counter("rebalance.moves_retried")
            self._m_batches = metrics.counter("rebalance.batches")
            self._m_pending = metrics.gauge("rebalance.pending")
        else:
            self._m_completed = self._m_failed = None
            self._m_retried = self._m_batches = self._m_pending = None

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def execute(
        self,
        plan: RebalancePlan,
        new_router: Optional[Router] = None,
        on_done: Optional[Callable[[RebalanceRun], None]] = None,
    ) -> RebalanceRun:
        """Start draining ``plan``; returns immediately with the live run.

        Args:
            plan: What to move.
            new_router: The target membership; when given, the run ends
                with the catch-up sweep, the directory base flip and
                override compaction.  ``None`` leaves the directory's
                base untouched (overrides carry the whole change).
            on_done: Called once, with the finished run.
        """
        run = RebalanceRun(self, plan, new_router, on_done)
        run.report.started_at = self._now()
        run._deadline = self.timeout.start(run.report.started_at)
        if self.tracer is not None:
            run._span = self.tracer.start_span(
                "rebalance",
                planned=plan.keys_moved,
                keys_total=plan.keys_total,
            )
        if self.sim is None:
            while not run.done:
                self._tick(run)
        else:
            self.sim.call_soon(lambda: self._tick(run), label="rebalance-batch")
        return run

    # ------------------------------------------------------------------ #
    # Draining
    # ------------------------------------------------------------------ #

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def _tick(self, run: RebalanceRun) -> None:
        """Move one batch, then schedule the next tick (or finish)."""
        if run.done:  # pragma: no cover - defensive: a stray late timer
            return
        if run._deadline.expired(self._now()):
            self._expire(run)
            return
        batch = [run._pending.popleft()
                 for _ in range(min(self.batch_size, len(run._pending)))]
        if batch:
            run.report.batches += 1
            if self._m_batches is not None:
                self._m_batches.inc()
            if self.tracer is not None:
                with self.tracer.resume(run._span.span_id):
                    with self.tracer.span("rebalance.batch", size=len(batch)):
                        for move, attempts in batch:
                            self._attempt(run, move, attempts)
            else:
                for move, attempts in batch:
                    self._attempt(run, move, attempts)
        if self._m_pending is not None:
            self._m_pending.set(run.outstanding)
        if run._pending:
            self._schedule_tick(run, self.batch_interval)
        elif not run._waiting:
            self._finish(run)
        # else: a retry timer will requeue work and re-schedule the tick.

    def _schedule_tick(self, run: RebalanceRun, delay: float) -> None:
        if self.sim is None:
            return  # synchronous mode loops in execute()
        self.sim.schedule(delay, lambda: self._tick(run), label="rebalance-batch")

    def _attempt(self, run: RebalanceRun, move: PlannedMove, attempts: int) -> None:
        source = self.mover.location_of(move.entity_type, move.entity_key)
        if self.gate is not None and not self.gate(source, move.target):
            self._transient(run, move, attempts)
            return
        report = self.mover.move(
            move.entity_type, move.entity_key, move.target,
            mover_id="rebalancer",
        )
        if report.moved or report.reason == "already at target":
            run.report.completed += 1
            if self._m_completed is not None:
                self._m_completed.inc()
        elif report.reason in _TRANSIENT_REASONS:
            self._transient(run, move, attempts)
        else:  # "entity not found at source": deleted since planning
            run.report.skipped += 1

    def _transient(self, run: RebalanceRun, move: PlannedMove, attempts: int) -> None:
        attempts += 1
        if run._deadline.expired(self._now()) or not self.retry.allows_retry(attempts):
            self._give_up(run, move)
            return
        run.report.retried += 1
        if self._m_retried is not None:
            self._m_retried.inc()
        if self.sim is None:
            # No clock to wait on: requeue for the next synchronous pass.
            run._pending.append((move, attempts))
            return
        if self.retry.jitter > 0.0 and self._rng is None:
            self._rng = self.sim.fork_rng()
        delay = self.retry.delay(attempts, rng=self._rng)
        run._waiting.append(move)

        def requeue() -> None:
            if run.done:
                return  # the run expired and already pinned this move
            run._waiting.remove(move)
            run._pending.append((move, attempts))
            self._schedule_tick(run, 0.0)

        self.sim.schedule(delay, requeue, label="rebalance-retry")

    def _give_up(self, run: RebalanceRun, move: PlannedMove) -> None:
        run.report.failed += 1
        if self._m_failed is not None:
            self._m_failed.inc()
        # Record where the entity physically is *now*, while the
        # directory still routes by the old base; the override itself is
        # applied at finish time, after the flip, so compaction against
        # the new base cannot drop it.
        physical = self.mover.location_of(move.entity_type, move.entity_key)
        run._pins.append((move.entity_type, move.entity_key, physical))

    def _expire(self, run: RebalanceRun) -> None:
        run.report.deadline_exceeded = True
        while run._pending:
            move, _ = run._pending.popleft()
            self._give_up(run, move)
        # Moves parked on retry timers are given up too; their timers
        # fire as no-ops (the requeue closure checks ``run.done``).
        for move in run._waiting:
            self._give_up(run, move)
        run._waiting.clear()
        self._finish(run)

    # ------------------------------------------------------------------ #
    # Finish: catch-up sweep, base flip, compaction, pinning
    # ------------------------------------------------------------------ #

    def _finish(self, run: RebalanceRun) -> None:
        directory = self.mover.directory
        if run._new_router is not None:
            # Catch-up sweep: entities created or resurrected while the
            # plan drained still route via the old base; move them now.
            residual = RebalancePlanner(directory, run._new_router).plan_from_units(
                self.mover.units
            )
            already_pinned = {(etype, ekey) for etype, ekey, _ in run._pins}
            for move in residual.moves:
                if (move.entity_type, move.entity_key) in already_pinned:
                    continue  # given up above; stays where it is
                if self.gate is not None and not self.gate(move.source, move.target):
                    self._give_up(run, move)
                    continue
                report = self.mover.move(
                    move.entity_type, move.entity_key, move.target,
                    mover_id="rebalancer",
                )
                if report.moved or report.reason == "already at target":
                    run.report.swept += 1
                elif report.reason in _TRANSIENT_REASONS:
                    self._give_up(run, move)  # one-shot: pin, next pass fixes
                # not-found: nothing to do
            run.report.overrides_compacted = directory.rebase(run._new_router)
        # Pin every given-up entity at its physical unit so the new base
        # router cannot strand it (override wins over base).
        for entity_type, entity_key, physical in run._pins:
            directory.move(entity_type, entity_key, physical)
        run.report.finished_at = self._now()
        run.done = True
        if self._m_pending is not None:
            self._m_pending.set(0)
        if self.tracer is not None and run._span is not None:
            self.tracer.end_span(
                run._span,
                completed=run.report.completed,
                failed=run.report.failed,
            )
        if run._on_done is not None:
            run._on_done(run)
