"""Site-aware shard placement for geo-distributed partial replication.

Full replication ships every write to every site; at WAN prices that is
the dominant cost of running multi-datacenter (and the paper's
geo-distributed schemes, sections 2.7-2.10, never assume it).  Following
the group-based model of Sutra & Shapiro's *Fault-Tolerant Partial
Replication in Large-Scale Database Systems*, a :class:`PlacementPolicy`
carves the key space into ``shards`` hash slices and places ``replicas``
copies of each shard on distinct *sites*, so a site only hosts — and
only receives frames for — the shards placed on it.

Placement extends the PR 4 :class:`~repro.partition.ring.ConsistentHashRing`
construction one level up: every site owns ``vnodes`` pseudo-random arcs
of the same 128-bit MD5 circle, and a shard's replica set is the first
``replicas`` *distinct* sites met walking the circle from the shard's
token — a preference list, exactly the Dynamo construction.  The walk
gives the same exact monotonicity the flat ring has, now per replica
*set*:

* adding a site changes a shard's set only by (possibly) swapping one
  member for the new site — ``new_set <= old_set | {added}``;
* removing a site changes a shard's set only by replacing the removed
  member with the next candidate — ``new_set >= old_set - {removed}``.

Both are asserted as hypothesis properties in
``tests/test_placement_properties.py``.  The preference *order* also
matters: position 0 is the shard's home site (write coordinator and the
strong rung's authority), and failover walks the list left to right.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

from repro.partition.ring import _key_token, _vnode_token

__all__ = ["PlacementPolicy", "diff_placements"]


def _shard_token(shard: int) -> int:
    """A shard's position on the site circle (same digest family as the
    entity ring, namespaced so shard 3 and key "3" never collide)."""
    return _key_token("__shard__", str(shard))


class PlacementPolicy:
    """Places ``replicas`` copies of each of ``shards`` shards across
    sites via a site-level consistent-hash ring.

    The policy is a value: placement depends only on the *set* of site
    names and the (replicas, shards, vnodes) shape, never on history —
    so two policies built from the same membership agree on every
    shard, and membership changes can be diffed offline with
    :func:`diff_placements`.

    Args:
        sites: Site names (order-insensitive; duplicates rejected).
        replicas: Copies of each shard.  Clamped to the site count —
            asking for 3 replicas over 2 sites places 2.
        shards: Hash slices the key space is carved into.  Entities map
            to shards by MD5, shards to sites by the ring walk.
        vnodes: Virtual nodes per site on the placement circle.

    Example:
        >>> policy = PlacementPolicy(["dc1", "dc2", "dc3"], replicas=2)
        >>> shard = policy.shard_of("order", "o-17")
        >>> len(policy.sites_for_shard(shard))
        2
        >>> policy.hosts(policy.home_site(shard), shard)
        True
    """

    def __init__(
        self,
        sites: Sequence[str],
        *,
        replicas: int = 2,
        shards: int = 16,
        vnodes: int = 64,
    ):
        names = list(sites)
        if not names:
            raise ValueError("PlacementPolicy needs at least one site")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate site names in {names!r}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._sites = tuple(sorted(names))
        self.replicas = replicas
        self.shards = shards
        self.vnodes = vnodes
        entries = sorted(
            (_vnode_token(site, replica), site)
            for site in self._sites
            for replica in range(vnodes)
        )
        self._tokens = [token for token, _ in entries]
        self._owners = [owner for _, owner in entries]
        # The preference list of every shard is precomputed once: the
        # read/ship hot paths then cost one tuple lookup, and the lists
        # are what make the policy a comparable value.
        self._preference: tuple[tuple[str, ...], ...] = tuple(
            self._walk(shard) for shard in range(shards)
        )

    def _walk(self, shard: int) -> tuple[str, ...]:
        """First ``min(replicas, M)`` distinct sites at or after the
        shard's token, in circle order — the Dynamo preference list."""
        want = min(self.replicas, len(self._sites))
        start = bisect_right(self._tokens, _shard_token(shard))
        chosen: list[str] = []
        n = len(self._owners)
        for offset in range(n):
            owner = self._owners[(start + offset) % n]
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == want:
                    break
        return tuple(chosen)

    # ------------------------------------------------------------------ #
    # Placement queries
    # ------------------------------------------------------------------ #

    @property
    def sites(self) -> tuple[str, ...]:
        """The site names, sorted."""
        return self._sites

    def shard_of(self, entity_type: str, entity_key: str) -> int:
        """The shard an entity belongs to (MD5 over type/key, mod
        ``shards`` — stable across runs and processes)."""
        return _key_token(entity_type, entity_key) % self.shards

    def sites_for_shard(self, shard: int) -> tuple[str, ...]:
        """The shard's preference list: position 0 is the home site,
        failover walks left to right."""
        return self._preference[shard]

    def sites_for(self, entity_type: str, entity_key: str) -> tuple[str, ...]:
        """Preference list for the shard an entity hashes to."""
        return self._preference[self.shard_of(entity_type, entity_key)]

    def home_site(self, shard: int) -> str:
        """The first site on the shard's preference list."""
        return self._preference[shard][0]

    def hosts(self, site: str, shard: int) -> bool:
        """Whether ``site`` holds a replica of ``shard``."""
        return site in self._preference[shard]

    def shards_of(self, site: str) -> tuple[int, ...]:
        """Every shard hosted by ``site``, ascending."""
        return tuple(
            shard
            for shard in range(self.shards)
            if site in self._preference[shard]
        )

    def spread(self) -> dict[str, int]:
        """Shards hosted per site — the balance diagnostic."""
        counts = {site: 0 for site in self._sites}
        for preference in self._preference:
            for site in preference:
                counts[site] += 1
        return counts

    # ------------------------------------------------------------------ #
    # Membership (value semantics: every change is a new policy)
    # ------------------------------------------------------------------ #

    def with_site(self, site: str) -> "PlacementPolicy":
        """A new policy with ``site`` added."""
        if site in self._sites:
            raise ValueError(f"site {site!r} already placed")
        return PlacementPolicy(
            list(self._sites) + [site],
            replicas=self.replicas,
            shards=self.shards,
            vnodes=self.vnodes,
        )

    def without_site(self, site: str) -> "PlacementPolicy":
        """A new policy with ``site`` removed."""
        if site not in self._sites:
            raise ValueError(f"site {site!r} not placed")
        remaining = [name for name in self._sites if name != site]
        return PlacementPolicy(
            remaining,
            replicas=self.replicas,
            shards=self.shards,
            vnodes=self.vnodes,
        )

    def to_dict(self) -> dict:
        """JSON-friendly view (sorted, deterministic)."""
        return {
            "replicas": self.replicas,
            "shards": {
                str(shard): list(self._preference[shard])
                for shard in range(self.shards)
            },
            "sites": list(self._sites),
            "spread": self.spread(),
            "vnodes": self.vnodes,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlacementPolicy):
            return NotImplemented
        return (
            self._sites == other._sites
            and self.replicas == other.replicas
            and self.shards == other.shards
            and self.vnodes == other.vnodes
        )

    def __hash__(self) -> int:
        return hash((self._sites, self.replicas, self.shards, self.vnodes))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PlacementPolicy({list(self._sites)!r}, "
            f"replicas={self.replicas}, shards={self.shards})"
        )


def diff_placements(
    old: PlacementPolicy, new: PlacementPolicy
) -> dict[int, tuple[tuple[str, ...], tuple[str, ...]]]:
    """Per-shard ``(added_sites, removed_sites)`` between two policies.

    Only shards whose replica set changed appear; the planner-minimality
    property says a one-site membership change yields at most one added
    and at most one removed site per shard.
    """
    if old.shards != new.shards:
        raise ValueError(
            f"policies shard differently ({old.shards} vs {new.shards})"
        )
    moves: dict[int, tuple[tuple[str, ...], tuple[str, ...]]] = {}
    for shard in range(old.shards):
        before = set(old.sites_for_shard(shard))
        after = set(new.sites_for_shard(shard))
        if before != after:
            moves[shard] = (
                tuple(sorted(after - before)),
                tuple(sorted(before - after)),
            )
    return moves
