"""The elasticity harness: staged scale-out under live traffic + chaos.

The end-to-end experiment behind principle 2.5's dynamic entity
location: a cluster of serialization units on a consistent-hash ring
serves a seeded open-loop write workload and pinned read sessions
while the membership grows one unit at a time (e.g. 4 -> 8), each step
a planned, batched, retried bulk rebalance — optionally with a
:class:`~repro.chaos.engine.ChaosEngine` crashing and partitioning the
unit hosts the whole time.

What it measures:

* **churn** — keys the ring actually relocates across the staged
  scale-out, against the keys the old mod-N ``HashRouter`` would have
  reshuffled over the same membership steps (the whole argument for
  consistent hashing, as a number);
* **relocation throughput** — completed handoffs per virtual time unit
  while the rebalance window was open;
* **availability** — the fraction of session reads and workload writes
  that succeeded *during* the rebalance window (a scale-out that takes
  the data offline is not elastic);
* **safety** — the chaos subsystem's invariant checkers, re-aimed at a
  partitioned world: convergence (the directory and the final ring
  agree on where everything lives, and it all lives there),
  no-lost-acknowledged-writes (every acked write is readable through
  the directory afterwards) and monotonic reads per session.

Determinism contract: everything draws from streams forked off the one
simulator seed, so :func:`run_elastic_scaleout` twice with the same
config yields byte-identical :func:`elasticity_report_json` — asserted
in ``tests/test_elasticity_chaos.py`` and the CI smoke step.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.bench.workloads import open_loop_arrivals
from repro.chaos.invariants import (
    InvariantReport,
    check_convergence,
    check_monotonic_reads,
    check_no_lost_acked_writes,
)
from repro.cluster import Cluster
from repro.core.policy import RetryPolicy, TimeoutPolicy
from repro.merge.deltas import Delta
from repro.partition.ring import RebalancePlanner
from repro.partition.router import HashRouter
from repro.sim.network import Node

__all__ = [
    "ElasticityConfig",
    "run_elastic_scaleout",
    "elasticity_report_json",
]

ENTITY_TYPE = "counter"


@dataclass(frozen=True)
class ElasticityConfig:
    """Parameters of one staged scale-out run."""

    seed: int = 0
    start_units: int = 4
    end_units: int = 8
    vnodes: int = 64
    keys: int = 96
    duration: float = 800.0  # workload (and chaos) window
    quiesce_grace: float = 400.0  # quiet drain time after the window
    write_rate: float = 0.5  # mean writes per virtual time unit
    key_skew: float = 0.6
    sessions: int = 4
    read_interval: float = 11.0
    scale_start: float = 120.0  # when the first unit is added
    scale_gap: float = 30.0  # pause between staged additions
    batch_size: int = 8
    batch_interval: float = 2.0
    network_latency: float = 2.0
    profile: Optional[str] = None  # chaos profile name; None = no chaos

    def unit_names(self) -> list[str]:
        return [f"u{index}" for index in range(1, self.end_units + 1)]

    def to_dict(self) -> dict[str, Any]:
        return {
            "batch_size": self.batch_size,
            "duration": self.duration,
            "end_units": self.end_units,
            "keys": self.keys,
            "profile": self.profile or "none",
            "scale_start": self.scale_start,
            "seed": self.seed,
            "start_units": self.start_units,
            "vnodes": self.vnodes,
            "write_rate": self.write_rate,
        }


class _PlacementView:
    """Adapts a router's view of the partitioned data to the replica
    interface the chaos invariant checkers expect (``node_id`` +
    ``observable_state``): the state of every live entity, read at the
    unit the router claims owns it.  Two views converge exactly when
    the routing function and the physical placement agree everywhere.
    """

    def __init__(self, name: str, router: Any, units: Mapping[str, Any]):
        self.node_id = name
        self._router = router
        self._units = units

    def observable_state(self) -> dict[tuple[str, str], dict[str, Any]]:
        state: dict[tuple[str, str], dict[str, Any]] = {}
        for name in sorted(self._units):
            store = self._units[name].store
            for ref, entity in store.current_state().items():
                if entity.deleted or entity.obsolete:
                    continue
                if self._router.unit_for(*ref) == name:
                    state[ref] = dict(entity.fields)
        return state


def _staged_modn_churn(config: ElasticityConfig, keys: list[str]) -> int:
    """Keys a mod-N ``HashRouter`` would reshuffle over the same staged
    membership growth (the ablation baseline, computed offline)."""
    names = config.unit_names()
    moved = 0
    for count in range(config.start_units, config.end_units):
        old = HashRouter(names[:count])
        new = HashRouter(names[:count + 1])
        moved += sum(
            1
            for key in keys
            if old.unit_for(ENTITY_TYPE, key) != new.unit_for(ENTITY_TYPE, key)
        )
    return moved


def run_elastic_scaleout(config: ElasticityConfig) -> dict[str, Any]:
    """Run one staged scale-out scenario; returns the deterministic
    report dict (see module docstring for what is measured)."""
    start_names = config.unit_names()[: config.start_units]
    added_names = config.unit_names()[config.start_units:]

    builder = (
        Cluster.build(seed=config.seed)
        .with_network(latency=config.network_latency)
        .with_ring(
            *start_names,
            vnodes=config.vnodes,
            batch_size=config.batch_size,
            batch_interval=config.batch_interval,
        )
        .with_policies(
            retry=RetryPolicy.exponential(max_attempts=8, base_delay=4.0),
            timeout=TimeoutPolicy.none(),
        )
    )
    if config.profile is not None:
        builder = builder.with_chaos(profile=config.profile)
    cluster = builder.create()
    sim = cluster.sim

    # Every unit host exists on the network from t=0 (provisioned ahead
    # of the scale-out), so chaos can crash and partition all of them.
    nodes: dict[str, Node] = {
        name: cluster.network.register(Node(name))
        for name in config.unit_names()
    }
    if cluster.rebalancer is not None:
        cluster.rebalancer.gate = lambda source, target: (
            not nodes[source].crashed
            and not nodes[target].crashed
            and not cluster.network.is_partitioned(source, target)
        )

    # ---- recorder ------------------------------------------------------ #
    rec: dict[str, Any] = {
        "acked": 0, "rejected": 0, "denied": 0,
        "reads_ok": 0, "reads_skipped": 0, "reads_missing": 0,
        "window_reads_ok": 0, "window_reads_skipped": 0,
        "window_writes_ok": 0, "window_writes_blocked": 0,
        "expected": {}, "sessions": {}, "overrides_peak": 0,
        "steps": [], "last_done_at": config.scale_start,
    }
    rec["sessions"] = {f"s{index}": [] for index in range(1, config.sessions + 1)}

    def in_window() -> bool:
        return sim.now >= config.scale_start and not (
            len(rec["steps"]) == len(added_names)
            and all(step["done"] for step in rec["steps"])
        )

    # ---- preload: every key exists before the traffic starts ----------- #
    key_names = [f"k{index}" for index in range(config.keys)]
    for key in key_names:
        owner = cluster.directory.unit_for(ENTITY_TYPE, key)
        cluster.units[owner].store.insert(ENTITY_TYPE, key, {"value": 0})
        rec["expected"][(ENTITY_TYPE, key)] = {"value": 0}

    # ---- workload: seeded open-loop deltas through the directory ------- #
    workload_rng = sim.fork_rng()
    arrivals = open_loop_arrivals(
        workload_rng,
        rate=config.write_rate,
        duration=config.duration,
        keys=key_names,
        theta=config.key_skew,
    )

    def do_write(arrival: Any) -> None:
        unit_name = cluster.directory.unit_for(ENTITY_TYPE, arrival.key)
        windowed = in_window()
        if nodes[unit_name].crashed:
            rec["rejected"] += 1
            if windowed:
                rec["window_writes_blocked"] += 1
            return
        unit = cluster.mover.units[unit_name]
        if unit.locks.is_locked(f"{ENTITY_TYPE}/{arrival.key}"):
            # The relocation lock: writers deny during the handoff.
            rec["denied"] += 1
            if windowed:
                rec["window_writes_blocked"] += 1
            return
        amount = 1 + arrival.index % 3
        unit.store.apply_delta(
            ENTITY_TYPE, arrival.key, Delta.add("value", amount)
        )
        rec["acked"] += 1
        if windowed:
            rec["window_writes_ok"] += 1
        sums = rec["expected"][(ENTITY_TYPE, arrival.key)]
        sums["value"] += amount

    for arrival in arrivals:
        sim.schedule_at(arrival.at, lambda a=arrival: do_write(a), label="elastic-write")

    # ---- sessions: repeated reads of a pinned key each ----------------- #
    read_horizon = config.duration + config.quiesce_grace

    def do_read(session_id: str, key: str) -> None:
        unit_name = cluster.directory.unit_for(ENTITY_TYPE, key)
        windowed = in_window()
        if nodes[unit_name].crashed:
            rec["reads_skipped"] += 1
            if windowed:
                rec["window_reads_skipped"] += 1
            return
        state = cluster.mover.units[unit_name].store.get(ENTITY_TYPE, key)
        if state is None or state.deleted:
            rec["reads_missing"] += 1  # an unreachable entity: a bug
            return
        rec["sessions"][session_id].append(state.fields.get("value", 0))
        rec["reads_ok"] += 1
        if windowed:
            rec["window_reads_ok"] += 1

    for index, session_id in enumerate(sorted(rec["sessions"])):
        key = key_names[index % len(key_names)]
        tick = config.read_interval * (1 + index % 2)
        at = tick
        while at < read_horizon:
            sim.schedule_at(
                at,
                lambda s=session_id, k=key: do_read(s, k),
                label="elastic-read",
            )
            at += tick

    # ---- overrides gauge: watch directory memory during the rebalance -- #
    def poll_overrides() -> None:
        rec["overrides_peak"] = max(
            rec["overrides_peak"], cluster.directory.override_count
        )

    at = config.scale_start
    while at <= read_horizon:
        sim.schedule_at(at, poll_overrides, label="elastic-poll")
        at += 5.0

    # ---- staged scale-out: add one unit, wait, add the next ------------ #
    ring_planned = {"total": 0}

    def next_step() -> None:
        if not added_names:
            return
        name = added_names.pop(0)

        def done(run: Any) -> None:
            step["done"] = True
            step["report"] = run.report.to_dict()
            rec["last_done_at"] = max(rec["last_done_at"], sim.now)
            poll_overrides()
            if added_names:
                sim.schedule(config.scale_gap, next_step, label="elastic-scale")

        step = {"unit": name, "started_at": sim.now, "done": False, "report": None}
        rec["steps"].append(step)
        run = cluster.scale_out(name, on_done=done)
        ring_planned["total"] += run.plan.keys_moved

    sim.schedule_at(config.scale_start, next_step, label="elastic-scale")

    # ---- chaos over the whole workload window -------------------------- #
    if cluster.chaos is not None:
        cluster.chaos.inject(config.duration)
        sim.schedule_at(config.duration, cluster.chaos.quiesce, label="elastic-quiesce")

    sim.run(until=read_horizon)
    # Drain any still-retrying rebalance work (chaos may have parked
    # moves on long backoffs past the horizon).
    while any(not step["done"] for step in rec["steps"]) and sim.step():
        pass

    # ---- repair passes: re-plan stragglers the chaos pinned ------------ #
    repair_rounds = 0
    while repair_rounds < 10:
        residual = RebalancePlanner(cluster.directory, cluster.ring).plan_from_units(
            cluster.mover.units
        )
        if not residual.moves:
            break
        repair_rounds += 1
        repair = cluster.rebalancer.execute(residual, new_router=cluster.ring)
        repair.wait()
    poll_overrides()

    # ---- invariants ----------------------------------------------------- #
    directory_view = _PlacementView("directory", cluster.directory, cluster.mover.units)
    ring_view = _PlacementView("ring", cluster.ring, cluster.mover.units)
    invariants = InvariantReport(
        results=[
            check_convergence([directory_view, ring_view]),
            check_no_lost_acked_writes([directory_view], rec["expected"]),
            check_monotonic_reads(rec["sessions"]),
        ]
    )

    # ---- report ---------------------------------------------------------- #
    steps = [
        {"started_at": step["started_at"], "unit": step["unit"], **(step["report"] or {})}
        for step in rec["steps"]
    ]
    moves_completed = sum(step.get("completed", 0) for step in steps)
    moves_failed = sum(step.get("failed", 0) for step in steps)
    window = (config.scale_start, rec["last_done_at"])
    window_span = max(window[1] - window[0], 1e-9)
    modn_moves = _staged_modn_churn(config, key_names)
    churn_ratio = ring_planned["total"] / modn_moves if modn_moves else 0.0
    window_reads = rec["window_reads_ok"] + rec["window_reads_skipped"]
    window_writes = rec["window_writes_ok"] + rec["window_writes_blocked"]
    report = {
        "config": config.to_dict(),
        "elasticity": {
            "churn_ratio": round(churn_ratio, 6),
            "modn_keys_moved": modn_moves,
            "moves_completed": moves_completed,
            "moves_failed": moves_failed,
            "overrides_final": cluster.directory.override_count,
            "overrides_peak": rec["overrides_peak"],
            "relocation_throughput": round(moves_completed / window_span, 6),
            "repair_rounds": repair_rounds,
            "ring_keys_moved": ring_planned["total"],
            "steps": steps,
            "window": list(window),
        },
        "availability": {
            "reads_during_rebalance": round(
                rec["window_reads_ok"] / window_reads, 6
            ) if window_reads else 1.0,
            "writes_during_rebalance": round(
                rec["window_writes_ok"] / window_writes, 6
            ) if window_writes else 1.0,
        },
        "faults": (
            cluster.chaos.schedule_summary() if cluster.chaos is not None else {}
        ),
        "invariants": invariants.to_dict(),
        "workload": {
            "reads_missing": rec["reads_missing"],
            "reads_ok": rec["reads_ok"],
            "reads_skipped": rec["reads_skipped"],
            "writes_acked": rec["acked"],
            "writes_denied_by_handoff": rec["denied"],
            "writes_rejected": rec["rejected"],
        },
        "ok": (
            invariants.ok
            and rec["reads_missing"] == 0
            and cluster.ring.units == config.unit_names()
            and (modn_moves == 0 or churn_ratio <= 0.6)
        ),
    }
    return report


def elasticity_report_json(report: dict[str, Any]) -> str:
    """Canonical JSON rendering — the byte-determinism surface."""
    return json.dumps(report, sort_keys=True, indent=2)
