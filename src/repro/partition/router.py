"""Entity location: key-range and hash routing, plus dynamic placement.

Principle 2.5: "Entity location is determined dynamically, e.g., by key
range partitioning or with a dynamic hash table."  The routers map an
``(entity_type, entity_key)`` reference to a serialization-unit name;
:class:`DynamicDirectory` adds per-entity overrides so entities can be
*moved* between units without changing the base routing function.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Protocol, Sequence

EntityRef = tuple[str, str]


class Router(Protocol):
    """Maps an entity reference to the unit that owns it."""

    def unit_for(self, entity_type: str, entity_key: str) -> str:
        """The owning unit's name."""
        ...


class HashRouter:
    """Stable-hash placement over a fixed unit list.

    Uses MD5 (not Python's ``hash``, which is salted per process) so the
    placement is stable across runs — a determinism requirement.

    Args:
        units: Unit names, in a fixed order.
    """

    def __init__(self, units: Sequence[str]):
        if not units:
            raise ValueError("HashRouter needs at least one unit")
        self._units = list(units)

    def unit_for(self, entity_type: str, entity_key: str) -> str:
        digest = hashlib.md5(f"{entity_type}/{entity_key}".encode()).hexdigest()
        return self._units[int(digest, 16) % len(self._units)]

    @property
    def units(self) -> list[str]:
        """The unit names this router spreads over."""
        return list(self._units)


class RangeRouter:
    """Key-range placement: sorted split points map key prefixes to units.

    Args:
        boundaries: ``[(upper_bound_exclusive, unit), ...]`` sorted by
            bound; keys below the first bound go to the first unit, and
            ``default_unit`` catches keys at or above the last bound.
        default_unit: Owner of the residual range.

    Example:
        >>> router = RangeRouter([("m", "unit-a")], default_unit="unit-b")
        >>> router.unit_for("customer", "alice")
        'unit-a'
        >>> router.unit_for("customer", "zoe")
        'unit-b'
    """

    def __init__(
        self,
        boundaries: Sequence[tuple[str, str]],
        default_unit: str,
    ):
        self._boundaries = sorted(boundaries)
        self.default_unit = default_unit

    def unit_for(self, entity_type: str, entity_key: str) -> str:
        for bound, unit in self._boundaries:
            if entity_key < bound:
                return unit
        return self.default_unit


class DynamicDirectory:
    """A movable-entity directory over a base router.

    Placement lookups check explicit overrides first, then fall back to
    the base router.  :meth:`move` records an override — the mechanism
    behind "entity location is determined dynamically": hot entities can
    be rebalanced without rewriting the routing function.

    Args:
        base: The fallback router.
    """

    def __init__(self, base: Router):
        self.base = base
        self._overrides: dict[EntityRef, str] = {}
        self.moves = 0

    def unit_for(self, entity_type: str, entity_key: str) -> str:
        override = self._overrides.get((entity_type, entity_key))
        return override if override is not None else self.base.unit_for(
            entity_type, entity_key
        )

    def move(self, entity_type: str, entity_key: str, unit: str) -> None:
        """Relocate one entity to ``unit`` (takes effect immediately for
        subsequent lookups; migrating the entity's events between stores
        is the caller's job, typically via a process step).

        An override that merely restates the base router is not stored
        (and any existing one is dropped): before this, every entity a
        bulk rebalance touched kept a directory entry forever, even once
        the base router agreed — O(entities-ever-moved) memory for zero
        routing information.
        """
        if self.base.unit_for(entity_type, entity_key) == unit:
            self._overrides.pop((entity_type, entity_key), None)
        else:
            self._overrides[(entity_type, entity_key)] = unit
        self.moves += 1

    def placement_of(self, entity_type: str, entity_key: str) -> Optional[str]:
        """The explicit override for an entity, if any."""
        return self._overrides.get((entity_type, entity_key))

    def compact_overrides(self) -> int:
        """Drop every override the base router already agrees with.

        Returns the number dropped.  Routing is unchanged — an override
        matching the base answer carries no information, it only costs
        memory (the failure mode of a bulk rebalance, which records one
        override per moved entity and then swaps in a base router that
        agrees with all of them).
        """
        stale = [
            ref
            for ref, unit in self._overrides.items()
            if self.base.unit_for(*ref) == unit
        ]
        for ref in stale:
            del self._overrides[ref]
        return len(stale)

    def rebase(self, base: Router) -> int:
        """Swap the base router and compact the overrides it absorbs.

        The bulk-rebalance finale: per-entity moves accumulated one
        override each; the new base (e.g. the grown
        :class:`~repro.partition.ring.ConsistentHashRing`) now gives the
        same answers, so those overrides evaporate.  Overrides the new
        base *disagrees* with stay — they are real placement decisions
        (pinned entities, hot-key moves).  Returns the number dropped.
        """
        self.base = base
        return self.compact_overrides()

    @property
    def override_count(self) -> int:
        """How many entities have explicit placements."""
        return len(self._overrides)
