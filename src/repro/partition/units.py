"""Serialization units: partitions with separate logs.

Principle 2.5: "A single organization may partition data by entity type
and key, where partitions are managed as separate 'serialization units'
with separate logs. [...] Following the focused transaction principle
avoids commits across multiple units, which might be distributed
commits."

A :class:`SerializationUnit` is one such partition: it owns an
:class:`~repro.lsdb.store.LSDBStore` (hence its own log and total order),
a logical lock table, and a local event queue.  There is *no* shared
state between units — anything crossing units travels as messages or as
a two-phase commit (the expensive path experiment E3 measures).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.locks.logical import LogicalLockManager
from repro.lsdb.store import LSDBStore
from repro.queues.reliable import ReliableQueue
from repro.sim.scheduler import Simulator


class SerializationUnit:
    """One partition: a store, its lock table and its local queue.

    Args:
        name: Unit name (also the store's origin id).
        sim: Optional simulator; when given, the unit's store is clocked
            by it and the unit gets a local :class:`ReliableQueue`.
        local_commit_cost: Virtual time one local commit occupies the
            unit's log (serialization: commits on one unit do not
            overlap).  Used by throughput experiments.
        snapshot_interval: Forwarded to the store.
    """

    def __init__(
        self,
        name: str,
        sim: Optional[Simulator] = None,
        local_commit_cost: float = 1.0,
        snapshot_interval: int = 0,
    ):
        self.name = name
        self.sim = sim
        self.local_commit_cost = local_commit_cost
        clock: Callable[[], float] = (lambda: sim.now) if sim else (lambda: 0.0)
        self.store = LSDBStore(
            name=name,
            origin=name,
            clock=clock,
            snapshot_interval=snapshot_interval,
            tracer=sim.tracer if sim else None,
            metrics=sim.metrics if sim else None,
        )
        self.locks = LogicalLockManager(name=f"{name}-locks")
        self.queue = ReliableQueue(sim, name=f"{name}-queue") if sim else None
        self._busy_until = 0.0
        self.commits = 0

    def next_commit_slot(self) -> float:
        """Reserve the unit's log for one commit and return the virtual
        time at which that commit completes.

        Models the serialization property: two commits on one unit never
        overlap, so a commit arriving while the log is busy queues behind
        the previous one.  Callers in simulator-driven workloads use the
        returned time as the commit's completion time.
        """
        now = self.sim.now if self.sim else 0.0
        start = max(now, self._busy_until)
        self._busy_until = start + self.local_commit_cost
        self.commits += 1
        return self._busy_until

    @property
    def busy_until(self) -> float:
        """Virtual time until which the unit's log is occupied."""
        return self._busy_until

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SerializationUnit({self.name!r}, commits={self.commits})"
