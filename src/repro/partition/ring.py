"""Consistent-hash ring routing and rebalance planning.

Principle 2.5 says entity location is determined *dynamically*.  The
:class:`~repro.partition.router.HashRouter` is mod-N over a fixed unit
list — correct, but adding or removing one unit reshuffles nearly every
key, so a cluster built on it cannot actually scale out.  A
:class:`ConsistentHashRing` fixes the churn: every unit owns ``vnodes``
pseudo-random arcs of a 128-bit hash circle, and a key belongs to the
unit owning the first arc token at or after the key's hash.  Membership
changes then move only the keys whose arc changed hands:

* adding one unit to an ``N``-unit ring relocates ~``1/(N+1)`` of the
  keys, and every relocated key moves *to* the new unit;
* removing a unit relocates only that unit's keys, each *to* the unit
  that inherits its arcs.

Both statements are exact (not just expectations) and are asserted as
properties in ``tests/test_partition_ring_properties.py``.

The ring is a pure placement function.  Turning a membership change
into actual data movement is a two-step affair: a
:class:`RebalancePlanner` diffs two routers over the entities that
exist and emits a minimal :class:`RebalancePlan`; the
:class:`~repro.partition.rebalance.Rebalancer` executes the plan over
live units.

Hashing uses MD5 (like :class:`HashRouter`) because Python's ``hash``
is salted per process and would break cross-run determinism.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.partition.router import Router

__all__ = [
    "ConsistentHashRing",
    "PlannedMove",
    "RebalancePlan",
    "RebalancePlanner",
]


def _key_token(entity_type: str, entity_key: str) -> int:
    """A key's position on the hash circle (same digest family as
    :class:`~repro.partition.router.HashRouter`)."""
    digest = hashlib.md5(f"{entity_type}/{entity_key}".encode()).hexdigest()
    return int(digest, 16)


def _vnode_token(unit: str, replica: int) -> int:
    """The position of one of a unit's virtual nodes."""
    digest = hashlib.md5(f"{unit}#{replica}".encode()).hexdigest()
    return int(digest, 16)


class ConsistentHashRing:
    """A deterministic consistent-hash ring with virtual nodes.

    The ring is a value: placement depends only on the *set* of unit
    names and the vnode count, never on insertion order or history, so
    two rings built from the same membership agree on every key — the
    property that lets a planner diff memberships offline.

    Args:
        units: Unit names (order-insensitive; duplicates rejected).
        vnodes: Virtual nodes per unit.  More vnodes spread each unit's
            arcs more evenly (64 keeps the largest/smallest unit load
            ratio near 1 for realistic fleet sizes).

    Example:
        >>> ring = ConsistentHashRing(["u1", "u2", "u3"])
        >>> ring.unit_for("order", "o-17") in {"u1", "u2", "u3"}
        True
        >>> grown = ring.with_unit("u4")
        >>> moved = [k for k in ("a", "b", "c", "d", "e")
        ...          if ring.unit_for("t", k) != grown.unit_for("t", k)]
        >>> all(grown.unit_for("t", k) == "u4" for k in moved)
        True
    """

    def __init__(self, units: Sequence[str], vnodes: int = 64):
        names = list(units)
        if not names:
            raise ValueError("ConsistentHashRing needs at least one unit")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate unit names in {names!r}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._units = sorted(names)
        self._vnodes = vnodes
        entries = sorted(
            (_vnode_token(unit, replica), unit)
            for unit in self._units
            for replica in range(vnodes)
        )
        self._tokens = [token for token, _ in entries]
        self._owners = [owner for _, owner in entries]

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def unit_for(self, entity_type: str, entity_key: str) -> str:
        """The unit owning the first vnode at or after the key's hash
        (wrapping past the top of the circle)."""
        index = bisect_right(self._tokens, _key_token(entity_type, entity_key))
        if index == len(self._tokens):
            index = 0
        return self._owners[index]

    # ------------------------------------------------------------------ #
    # Membership (value semantics: every change is a new ring)
    # ------------------------------------------------------------------ #

    @property
    def units(self) -> list[str]:
        """The member unit names, sorted."""
        return list(self._units)

    @property
    def vnodes(self) -> int:
        """Virtual nodes per unit."""
        return self._vnodes

    def __contains__(self, unit: str) -> bool:
        return unit in self._units

    def __len__(self) -> int:
        return len(self._units)

    def with_unit(self, unit: str) -> "ConsistentHashRing":
        """A new ring with ``unit`` added."""
        if unit in self._units:
            raise ValueError(f"unit {unit!r} already on the ring")
        return ConsistentHashRing([*self._units, unit], vnodes=self._vnodes)

    def without_unit(self, unit: str) -> "ConsistentHashRing":
        """A new ring with ``unit`` removed."""
        if unit not in self._units:
            raise ValueError(f"unit {unit!r} not on the ring")
        if len(self._units) == 1:
            raise ValueError("cannot remove the last unit from the ring")
        return ConsistentHashRing(
            [name for name in self._units if name != unit], vnodes=self._vnodes
        )

    def spread(self, keys: Iterable[tuple[str, str]]) -> dict[str, int]:
        """How many of ``keys`` each unit owns (diagnostic/balance view;
        every member appears, even with zero keys)."""
        counts = {unit: 0 for unit in self._units}
        for entity_type, entity_key in keys:
            counts[self.unit_for(entity_type, entity_key)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ConsistentHashRing({len(self._units)} units x "
            f"{self._vnodes} vnodes)"
        )


# ---------------------------------------------------------------------- #
# Planning
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class PlannedMove:
    """One entity that must change units for the new membership."""

    entity_type: str
    entity_key: str
    source: str
    target: str


@dataclass
class RebalancePlan:
    """The minimal bulk move set for one membership change.

    Attributes:
        moves: Every entity whose owner differs between the old and new
            routing, with its current and target unit.
        keys_total: How many entities the planner examined.
    """

    moves: list[PlannedMove] = field(default_factory=list)
    keys_total: int = 0

    @property
    def keys_moved(self) -> int:
        """How many entities the plan relocates."""
        return len(self.moves)

    @property
    def moved_fraction(self) -> float:
        """Relocated share of the examined entities (0 when none)."""
        return self.keys_moved / self.keys_total if self.keys_total else 0.0

    def batches(self, batch_size: int) -> Iterator[list[PlannedMove]]:
        """The moves in execution batches of at most ``batch_size``."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        for start in range(0, len(self.moves), batch_size):
            yield self.moves[start:start + batch_size]

    def to_dict(self) -> dict[str, object]:
        """A JSON-friendly summary (not the full move list)."""
        per_edge: dict[str, int] = {}
        for move in self.moves:
            edge = f"{move.source}->{move.target}"
            per_edge[edge] = per_edge.get(edge, 0) + 1
        return {
            "keys_moved": self.keys_moved,
            "keys_total": self.keys_total,
            "moved_fraction": round(self.moved_fraction, 6),
            "per_edge": dict(sorted(per_edge.items())),
        }


class RebalancePlanner:
    """Diffs two routings into a minimal move plan.

    The planner is membership-agnostic: ``old`` and ``new`` are any two
    :class:`~repro.partition.router.Router` implementations (two rings,
    a directory and a ring, a mod-N router and a ring during migration
    onto consistent hashing).  An entity is planned for a move exactly
    when the two routers disagree on it — nothing else touches the wire.

    Args:
        old: Where entities live now (usually the current
            :class:`~repro.partition.router.DynamicDirectory`, which by
            construction points at the physical location).
        new: Where entities must live after the change.
    """

    def __init__(self, old: Router, new: Router):
        self.old = old
        self.new = new

    def plan(self, entities: Iterable[tuple[str, str]]) -> RebalancePlan:
        """The move plan over an explicit entity population."""
        plan = RebalancePlan()
        for entity_type, entity_key in entities:
            plan.keys_total += 1
            source = self.old.unit_for(entity_type, entity_key)
            target = self.new.unit_for(entity_type, entity_key)
            if source != target:
                plan.moves.append(
                    PlannedMove(entity_type, entity_key, source, target)
                )
        return plan

    def plan_from_units(
        self, units: Mapping[str, "object"]
    ) -> RebalancePlan:
        """The move plan over every live entity currently stored in
        ``units`` (unit name -> :class:`SerializationUnit`).

        Enumeration order is deterministic: units by name, entities by
        log order within each store.  Tombstoned entities (including
        ``migrated-out`` marks from earlier moves) stay where they are —
        history keeps audit locality.
        """
        def live_entities() -> Iterator[tuple[str, str]]:
            for name in sorted(units):
                store = units[name].store  # type: ignore[attr-defined]
                for ref, state in store.current_state().items():
                    if state.deleted or state.obsolete:
                        continue
                    # Only the physical owner may nominate the entity,
                    # so an entity never appears twice in one plan.
                    if self.old.unit_for(*ref) == name:
                        yield ref
        return self.plan(live_entities())
