"""Partitioning: serialization units with separate logs, dynamic entity
location, elastic membership via consistent-hash rebalancing
(principle 2.5), and site-aware shard placement for geo-distributed
partial replication."""

from repro.partition.placement import PlacementPolicy, diff_placements
from repro.partition.relocation import EntityMover, MoveReport
from repro.partition.ring import (
    ConsistentHashRing,
    PlannedMove,
    RebalancePlan,
    RebalancePlanner,
)
from repro.partition.rebalance import RebalanceReport, RebalanceRun, Rebalancer
from repro.partition.router import (
    DynamicDirectory,
    HashRouter,
    RangeRouter,
    Router,
)
from repro.partition.units import SerializationUnit

__all__ = [
    "ConsistentHashRing",
    "EntityMover",
    "PlacementPolicy",
    "diff_placements",
    "MoveReport",
    "PlannedMove",
    "RebalancePlan",
    "RebalancePlanner",
    "RebalanceReport",
    "RebalanceRun",
    "Rebalancer",
    "DynamicDirectory",
    "HashRouter",
    "RangeRouter",
    "Router",
    "SerializationUnit",
]
