"""Partitioning: serialization units with separate logs and dynamic
entity location (principle 2.5)."""

from repro.partition.relocation import EntityMover, MoveReport
from repro.partition.router import (
    DynamicDirectory,
    HashRouter,
    RangeRouter,
    Router,
)
from repro.partition.units import SerializationUnit

__all__ = [
    "EntityMover",
    "MoveReport",
    "DynamicDirectory",
    "HashRouter",
    "RangeRouter",
    "Router",
    "SerializationUnit",
]
