"""Partitioning: serialization units with separate logs, dynamic entity
location, and elastic membership via consistent-hash rebalancing
(principle 2.5)."""

from repro.partition.relocation import EntityMover, MoveReport
from repro.partition.ring import (
    ConsistentHashRing,
    PlannedMove,
    RebalancePlan,
    RebalancePlanner,
)
from repro.partition.rebalance import RebalanceReport, RebalanceRun, Rebalancer
from repro.partition.router import (
    DynamicDirectory,
    HashRouter,
    RangeRouter,
    Router,
)
from repro.partition.units import SerializationUnit

__all__ = [
    "ConsistentHashRing",
    "EntityMover",
    "MoveReport",
    "PlannedMove",
    "RebalancePlan",
    "RebalancePlanner",
    "RebalanceReport",
    "RebalanceRun",
    "Rebalancer",
    "DynamicDirectory",
    "HashRouter",
    "RangeRouter",
    "Router",
    "SerializationUnit",
]
