"""Online entity relocation between serialization units.

Principle 2.5: "Entity location is determined dynamically."  The
:class:`DynamicDirectory` answers *where* an entity lives; this module
performs the *move* — transferring a live entity's current state from
one unit's store to another's without taking either unit offline.

The protocol is the state-carrying handoff real partitioned systems use
(cf. Helland's entity movement between scale-agnostic buckets):

1. take the entity's logical lock at the source (writers queue/deny);
2. materialise the entity's rolled-up state and write it at the target
   (tagged ``migrated-in`` with provenance);
3. tombstone the entity at the source (tagged ``migrated-out`` — a
   mark, not an erasure, so the source keeps its audit history);
4. flip the directory entry and release the lock.

History stays where it was written (audit locality); the target starts
from the authoritative state snapshot.  A failed move (target write
error) releases the lock with the directory unchanged — the entity is
never unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.errors import EntityNotFound, LockUnavailable
from repro.locks.logical import LockMode
from repro.partition.router import DynamicDirectory
from repro.partition.units import SerializationUnit


@dataclass
class MoveReport:
    """Outcome of one relocation."""

    entity_type: str
    entity_key: str
    source_unit: str
    target_unit: str
    moved: bool
    reason: str = ""
    fields_carried: int = 0


class EntityMover:
    """Relocates entities between serialization units.

    Args:
        units: Unit name -> unit, for every unit the directory can name.
        directory: The dynamic directory whose placements the mover
            updates.

    Example:
        >>> from repro.partition.router import HashRouter
        >>> units = {name: SerializationUnit(name) for name in ("u1", "u2")}
        >>> directory = DynamicDirectory(HashRouter(["u1", "u2"]))
        >>> mover = EntityMover(units, directory)
    """

    def __init__(
        self,
        units: Mapping[str, SerializationUnit],
        directory: DynamicDirectory,
    ):
        self.units = dict(units)
        self.directory = directory
        self.moves_completed = 0
        self.moves_failed = 0

    def location_of(self, entity_type: str, entity_key: str) -> str:
        """The unit currently owning the entity."""
        return self.directory.unit_for(entity_type, entity_key)

    def move(
        self,
        entity_type: str,
        entity_key: str,
        target_unit: str,
        mover_id: str = "entity-mover",
    ) -> MoveReport:
        """Relocate one live entity to ``target_unit``.

        Returns:
            A :class:`MoveReport`; ``moved=False`` (with a reason) when
            the entity is already there, does not exist, or is locked
            by another owner.
        """
        source_name = self.location_of(entity_type, entity_key)
        if target_unit not in self.units:
            raise KeyError(f"unknown target unit {target_unit!r}")
        if source_name == target_unit:
            return MoveReport(
                entity_type, entity_key, source_name, target_unit,
                moved=False, reason="already at target",
            )
        source = self.units[source_name]
        target = self.units[target_unit]
        state = source.store.get(entity_type, entity_key)
        if state is None or state.deleted:
            self.moves_failed += 1
            return MoveReport(
                entity_type, entity_key, source_name, target_unit,
                moved=False, reason="entity not found at source",
            )
        resource = f"{entity_type}/{entity_key}"
        if not source.locks.acquire(resource, mover_id, LockMode.EXCLUSIVE):
            self.moves_failed += 1
            return MoveReport(
                entity_type, entity_key, source_name, target_unit,
                moved=False, reason="entity locked by another owner",
            )
        try:
            target.store.insert(
                entity_type,
                entity_key,
                dict(state.fields),
                tags=("migrated-in", f"from:{source_name}"),
            )
            source.store.tombstone(
                entity_type, entity_key,
                tags=("migrated-out", f"to:{target_unit}"),
            )
            self.directory.move(entity_type, entity_key, target_unit)
        finally:
            source.locks.release(resource, mover_id)
        self.moves_completed += 1
        return MoveReport(
            entity_type, entity_key, source_name, target_unit,
            moved=True, fields_carried=len(state.fields),
        )

    def rebalance_hot_keys(
        self,
        entity_type: str,
        keys: list[str],
        target_unit: str,
    ) -> list[MoveReport]:
        """Move a batch of hot entities to a dedicated unit (the classic
        remedy once a serialization unit becomes a bottleneck)."""
        return [self.move(entity_type, key, target_unit) for key in keys]
