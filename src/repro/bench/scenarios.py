"""Pluggable traffic scenarios: the ROADMAP's skewed, time-varying suite.

A *scenario* is a named, seeded recipe for a realistic traffic shape —
Zipfian hot keys, a flash crowd, a diurnal hot-set rotation — compiled
into one deterministic operation schedule (interleaved reads and writes
with virtual timestamps).  Scenarios register themselves in a module
registry (the step-registry/plugin shape): benchmarks and experiments
look them up by name, and adding a scenario is one decorated factory,
no harness changes.

    >>> from repro.bench import scenarios
    >>> spec = scenarios.get("zipf_hot")
    >>> ops = spec.ops(seed=7)
    >>> ops == spec.ops(seed=7)   # same seed, same schedule — always
    True

Every schedule draws from one :class:`~repro.sim.rng.SeededRNG`, so the
same seed reproduces the same byte-for-byte operation list — the
contract the benchmark determinism checks ride on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Optional, Sequence

from repro.bench.workloads import (
    FlashCrowdChooser,
    KeyChooser,
    RotatingHotSetChooser,
)
from repro.sim.rng import SeededRNG, poisson_arrivals


@dataclass(frozen=True)
class Op:
    """One scheduled operation of a compiled scenario."""

    at: float
    kind: str  # "read" | "write"
    key: str
    index: int = 0


@dataclass(frozen=True)
class Scenario:
    """A named traffic shape, compiled on demand into an op schedule.

    Attributes:
        name: Registry name.
        description: One line for reports.
        entities: Key-population size.
        duration: Schedule length in virtual time.
        write_rate: Mean writes per virtual time unit (Poisson).
        read_rate: Mean reads per virtual time unit (Poisson).
        theta: Zipf skew of both streams.
        hot_set_size: How many keys count as "the hot set" for
            hit-ratio accounting (time-varying scenarios evaluate
            membership at each op's timestamp).
        flash_start: Fraction of ``duration`` at which a flash crowd
            arrives (``None`` = no flash crowd).
        flash_share: Fraction of post-flash draws the star key absorbs.
        rotation_period: Hot-set rotation period (``None`` = static).
        rotation_stride: Ranks shifted per rotation phase.
    """

    name: str
    description: str
    entities: int = 10_000
    duration: float = 400.0
    write_rate: float = 40.0
    read_rate: float = 60.0
    theta: float = 0.99
    hot_set_size: int = 16
    flash_start: Optional[float] = None
    flash_share: float = 0.3
    rotation_period: Optional[float] = None
    rotation_stride: Optional[int] = None

    # -------------------------------------------------------------- #
    # Compilation
    # -------------------------------------------------------------- #

    def keys(self) -> list[str]:
        """The key population (index 0 hottest under the base skew)."""
        return [f"e{index}" for index in range(self.entities)]

    def chooser(self, rng: SeededRNG, keys: Sequence[str]):
        """The key chooser this scenario's shape calls for — any object
        with ``choose(at)`` / ``hot_keys_at(at, k)``."""
        if self.flash_start is not None:
            return FlashCrowdChooser(
                rng,
                keys,
                self.theta,
                star_index=min(len(keys) - 1, self.entities // 2),
                start=self.flash_start * self.duration,
                share=self.flash_share,
            )
        if self.rotation_period is not None:
            return RotatingHotSetChooser(
                rng,
                keys,
                self.theta,
                period=self.rotation_period,
                stride=self.rotation_stride,
            )
        return KeyChooser(rng, keys, self.theta)

    def ops(self, seed: int = 0) -> list[Op]:
        """Compile the scenario into one deterministic op schedule.

        Writes and reads are two Poisson streams over the same
        time-varying chooser (reads chase the same hot set writes
        heat).  The merged list is sorted by time with a stable
        ``(time, stream, index)`` tie-break, so identical seeds yield
        identical schedules.
        """
        rng = SeededRNG(seed)
        keys = self.keys()
        chooser = self.chooser(rng, keys)
        entries: list[tuple[float, int, int, str, str]] = []
        for stream_tag, kind, rate in (
            (0, "write", self.write_rate),
            (1, "read", self.read_rate),
        ):
            for index, at in enumerate(
                poisson_arrivals(rng, rate, self.duration)
            ):
                entries.append((at, stream_tag, index, kind, chooser.choose(at)))
        entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        return [
            Op(at=at, kind=kind, key=key, index=index)
            for index, (at, _tag, _i, kind, key) in enumerate(entries)
        ]

    def hot_keys_at(self, at: float, seed: int = 0) -> tuple[str, ...]:
        """The instantaneous hot set at time ``at`` (for hit-ratio
        accounting).  Pure function of the scenario shape — choosers
        compute membership without consuming randomness."""
        rng = SeededRNG(seed)  # choosers require a stream; unused here
        keys = self.keys()
        return self.chooser(rng, keys).hot_keys_at(at, self.hot_set_size)

    def phase_key(self, at: float) -> Any:
        """A hashable phase identifier: ``hot_keys_at`` is constant
        within one phase, so per-op consumers can memoise the hot set
        by this key instead of rebuilding a chooser per call."""
        if self.flash_start is not None:
            return at >= self.flash_start * self.duration
        if self.rotation_period is not None:
            return int(at / self.rotation_period)
        return 0

    def scaled(self, factor: float) -> "Scenario":
        """A quick-mode variant: same shape, ``factor`` of the volume
        (population and duration shrink together so the skew and the
        time-varying structure survive)."""
        return replace(
            self,
            entities=max(64, int(self.entities * factor)),
            duration=max(50.0, self.duration * factor),
            rotation_period=(
                None
                if self.rotation_period is None
                else max(10.0, self.rotation_period * factor)
            ),
        )


# ------------------------------------------------------------------ #
# Registry
# ------------------------------------------------------------------ #

_REGISTRY: dict[str, Callable[[], Scenario]] = {}


def register(factory: Callable[[], Scenario]) -> Callable[[], Scenario]:
    """Register a scenario factory under its scenario's name (the
    plugin hook: decorate a zero-argument factory)."""
    spec = factory()
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = factory
    return factory


def get(name: str) -> Scenario:
    """Look a scenario up by name.

    Raises:
        KeyError: Unknown name (the message lists what exists).
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {', '.join(names())}"
        )
    return factory()


def names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


# ------------------------------------------------------------------ #
# The stock suite (ROADMAP: Zipfian hot keys, flash crowd, diurnal)
# ------------------------------------------------------------------ #


@register
def zipf_mild() -> Scenario:
    """θ=0.5: noticeable but gentle skew — the cache's worst realistic
    case (traffic spreads wide, hit ratios are earned, not given)."""
    return Scenario(
        name="zipf_mild",
        description="Zipfian keys at theta=0.5 (mild skew)",
        theta=0.5,
    )


@register
def zipf_hot() -> Scenario:
    """θ=0.99: the classic YCSB-style hot-key skew — a handful of
    entities absorb most traffic.  The perf gate's headline scenario."""
    return Scenario(
        name="zipf_hot",
        description="Zipfian keys at theta=0.99 (hot-key skew)",
        theta=0.99,
    )


@register
def flash_crowd() -> Scenario:
    """Mid-run, one previously cold entity jumps to 30% of all traffic
    — the ROADMAP's "one entity suddenly taking 30% of writes"."""
    return Scenario(
        name="flash_crowd",
        description="one cold entity jumps to 30% of traffic mid-run",
        theta=0.99,
        flash_start=0.5,
        flash_share=0.3,
    )


@register
def diurnal() -> Scenario:
    """The hot set rotates through the population on a period — a
    compressed diurnal curve (different entities are hot at different
    times of the virtual day)."""
    return Scenario(
        name="diurnal",
        description="hot set rotates through the population (diurnal curve)",
        theta=0.99,
        rotation_period=100.0,
    )
