"""Measurement utilities for the experiment suite.

Latency percentiles, throughput windows and staleness probes — the
numbers the paper's prose claims are about (response time, availability,
apology rates, convergence time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.obs.metrics import percentile_of


class LatencyRecorder:
    """Collects latency samples and reports percentiles.

    Percentile math is :func:`repro.obs.metrics.percentile_of` — the
    one nearest-rank implementation shared with the observability
    histograms, so a benchmark table and a metrics report computed over
    the same samples can never disagree.

    Example:
        >>> recorder = LatencyRecorder()
        >>> for value in [1.0, 2.0, 3.0, 4.0]:
        ...     recorder.record(value)
        >>> recorder.percentile(50)
        2.0
        >>> recorder.mean
        2.5
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self._samples: list[float] = []
        self._sorted: Optional[list[float]] = None

    def record(self, value: float) -> None:
        """Add one sample."""
        self._samples.append(value)
        self._sorted = None

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        self._samples.extend(other._samples)
        self._sorted = None

    @classmethod
    def merged(
        cls, recorders: Iterable["LatencyRecorder"], name: str = "merged"
    ) -> "LatencyRecorder":
        """A new recorder holding every sample of ``recorders`` (e.g.
        per-node recorders combined into one cluster-wide summary)."""
        result = cls(name=name)
        for recorder in recorders:
            result.merge(recorder)
        return result

    @property
    def count(self) -> int:
        """Number of samples."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0 when empty)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def maximum(self) -> float:
        """Largest sample (0 when empty)."""
        return max(self._samples) if self._samples else 0.0

    def percentile(self, pct: float) -> float:
        """The ``pct``-th percentile (nearest-rank, 0 when empty)."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return percentile_of(self._sorted, pct)

    @property
    def p50(self) -> float:
        """Median."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.percentile(99)

    def summary(self) -> dict[str, float]:
        """``{count, mean, p50, p95, p99, max}`` for table rows."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


@dataclass
class ThroughputWindow:
    """Committed operations over a virtual-time window."""

    start: float
    end: float
    operations: int = 0

    def record(self) -> None:
        """Count one completed operation."""
        self.operations += 1

    @property
    def duration(self) -> float:
        """Window length."""
        return self.end - self.start

    @property
    def per_time_unit(self) -> float:
        """Operations per virtual time unit."""
        if self.duration <= 0:
            return 0.0
        return self.operations / self.duration


@dataclass
class AvailabilityProbe:
    """Success/failure accounting for an operation stream.

    ``attempted``/``succeeded`` counters, with a separate window for
    operations issued during a failure (partition/crash), so a report
    can state availability *during* the failure — the CAP measurement
    of experiment E1.
    """

    attempted: int = 0
    succeeded: int = 0
    attempted_during_failure: int = 0
    succeeded_during_failure: int = 0

    def record(self, ok: bool, during_failure: bool = False) -> None:
        """Count one operation outcome."""
        self.attempted += 1
        if ok:
            self.succeeded += 1
        if during_failure:
            self.attempted_during_failure += 1
            if ok:
                self.succeeded_during_failure += 1

    @property
    def availability(self) -> float:
        """Overall success fraction."""
        return self.succeeded / self.attempted if self.attempted else 1.0

    @property
    def availability_during_failure(self) -> float:
        """Success fraction among operations issued during the failure."""
        if not self.attempted_during_failure:
            return 1.0
        return self.succeeded_during_failure / self.attempted_during_failure
