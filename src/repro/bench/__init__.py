"""Workload generation, metrics and reporting for the experiment suite
(deliverable (d): one bench target per claim, DESIGN.md section 3)."""

from repro.bench.metrics import AvailabilityProbe, LatencyRecorder, ThroughputWindow
from repro.bench.report import ExperimentReport, format_table
from repro.bench.workloads import (
    Arrival,
    FlashCrowdChooser,
    KeyChooser,
    MixChooser,
    RotatingHotSetChooser,
    open_loop_arrivals,
    shuffled_within_window,
)

__all__ = [
    "AvailabilityProbe",
    "LatencyRecorder",
    "ThroughputWindow",
    "ExperimentReport",
    "format_table",
    "Arrival",
    "FlashCrowdChooser",
    "KeyChooser",
    "MixChooser",
    "RotatingHotSetChooser",
    "open_loop_arrivals",
    "shuffled_within_window",
]
