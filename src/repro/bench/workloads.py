"""Workload generators: arrivals, key skew, operation mixes.

The paper's claims hinge on workload properties — contention (hot
entities, principle 2.10), arrival disorder (principle 2.2), demand
versus supply (principle 2.9) — so the generators parameterise exactly
those.  Everything draws from seeded streams: the same seed reproduces
the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, TypeVar

from repro.sim.rng import SeededRNG, ZipfGenerator, poisson_arrivals

T = TypeVar("T")


@dataclass(frozen=True)
class Arrival:
    """One scheduled workload operation."""

    at: float
    key: str
    kind: str = "op"
    index: int = 0


class KeyChooser:
    """Zipf-skewed choice over a key population.

    Args:
        rng: Random stream.
        keys: The key population (index 0 is the hottest).
        theta: Zipf skew (0 = uniform).
    """

    def __init__(self, rng: SeededRNG, keys: Sequence[str], theta: float = 0.99):
        self._keys = list(keys)
        self._zipf = ZipfGenerator(rng, len(self._keys), theta)

    def choose(self, at: float = 0.0) -> str:
        """One skewed draw.  ``at`` (the arrival time) is accepted for
        interface compatibility with the time-varying choosers and
        ignored — a plain Zipf distribution does not shift."""
        return self._keys[self._zipf.draw()]

    def hot_keys_at(self, at: float, k: int) -> tuple[str, ...]:
        """The ``k`` hottest keys at time ``at`` (constant for Zipf:
        rank order is the key order)."""
        return tuple(self._keys[: min(k, len(self._keys))])


class FlashCrowdChooser:
    """Zipf choice with a flash crowd: from ``start`` onward, one key
    (the *star*) absorbs an extra ``share`` of all draws.

    The paper's hot-entity contention (principle 2.10) in its most
    violent form — "one entity suddenly taking 30% of writes" (ROADMAP).
    Before ``start`` the distribution is plain Zipf; after it, each
    draw first flips a seeded coin for the star, then falls back to the
    base Zipf.  Determinism contract: the same seed and the same
    sequence of ``choose(at)`` calls reproduce the same keys (one or
    two RNG draws per call, decided purely by ``at`` and the coin).

    Args:
        rng: Random stream.
        keys: Key population (index 0 hottest in the base skew).
        theta: Base Zipf skew.
        star_index: Which key becomes the flash-crowd star.
        start: Time at which the crowd arrives.
        share: Fraction of post-``start`` draws the star absorbs.
    """

    def __init__(
        self,
        rng: SeededRNG,
        keys: Sequence[str],
        theta: float = 0.99,
        *,
        star_index: int = 0,
        start: float = 0.0,
        share: float = 0.3,
    ):
        if not 0.0 <= share <= 1.0:
            raise ValueError(f"share must be in [0, 1], got {share}")
        self._keys = list(keys)
        self._rng = rng
        self._zipf = ZipfGenerator(rng, len(self._keys), theta)
        self._star = self._keys[star_index]
        self._start = start
        self._share = share

    def choose(self, at: float = 0.0) -> str:
        """One draw at time ``at``."""
        if at >= self._start and self._rng.random() < self._share:
            return self._star
        return self._keys[self._zipf.draw()]

    def hot_keys_at(self, at: float, k: int) -> tuple[str, ...]:
        """Top-``k`` hottest keys at ``at``: the star leads once the
        crowd has arrived."""
        base = [key for key in self._keys[:k + 1] if key != self._star]
        if at >= self._start:
            return tuple([self._star] + base[: max(0, k - 1)])
        return tuple(self._keys[: min(k, len(self._keys))])


class RotatingHotSetChooser:
    """Zipf choice whose rank-to-key mapping rotates on a period — a
    diurnal curve: the hot set drifts through the population as the
    (virtual) day advances.

    At time ``at`` the phase is ``int(at / period)`` and Zipf rank
    ``r`` maps to key ``(r + phase * stride) % n``: same skew, shifting
    identity.  Same determinism contract as the other choosers — the
    phase is a pure function of ``at``, one RNG draw per choice.

    Args:
        rng: Random stream.
        keys: Key population.
        theta: Zipf skew within each phase.
        period: Virtual-time length of one phase.
        stride: How many ranks the mapping shifts per phase (defaults
            to an eighth of the population, at least 1).
    """

    def __init__(
        self,
        rng: SeededRNG,
        keys: Sequence[str],
        theta: float = 0.99,
        *,
        period: float = 100.0,
        stride: Optional[int] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._keys = list(keys)
        self._zipf = ZipfGenerator(rng, len(self._keys), theta)
        self._period = period
        self._stride = (
            stride if stride is not None else max(1, len(self._keys) // 8)
        )

    def phase_at(self, at: float) -> int:
        """Which rotation phase time ``at`` falls in."""
        return int(at / self._period)

    def choose(self, at: float = 0.0) -> str:
        """One draw at time ``at``."""
        rank = self._zipf.draw()
        offset = self.phase_at(at) * self._stride
        return self._keys[(rank + offset) % len(self._keys)]

    def hot_keys_at(self, at: float, k: int) -> tuple[str, ...]:
        """Top-``k`` hottest keys during ``at``'s phase."""
        n = len(self._keys)
        offset = self.phase_at(at) * self._stride
        return tuple(self._keys[(rank + offset) % n] for rank in range(min(k, n)))


class MixChooser:
    """Weighted choice among operation kinds.

    Example:
        >>> rng = SeededRNG(1)
        >>> mix = MixChooser(rng, {"read": 0.9, "write": 0.1})
        >>> mix.choose() in ("read", "write")
        True
    """

    def __init__(self, rng: SeededRNG, weights: dict[str, float]):
        if not weights:
            raise ValueError("MixChooser needs at least one kind")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._rng = rng
        self._cumulative: list[tuple[float, str]] = []
        acc = 0.0
        for kind, weight in weights.items():
            acc += weight / total
            self._cumulative.append((acc, kind))

    def choose(self) -> str:
        """One weighted draw."""
        draw = self._rng.random()
        for bound, kind in self._cumulative:
            if draw < bound:
                return kind
        return self._cumulative[-1][1]


def open_loop_arrivals(
    rng: SeededRNG,
    rate: float,
    duration: float,
    keys: Sequence[str],
    theta: float = 0.0,
    kinds: Optional[dict[str, float]] = None,
    start: float = 0.0,
    chooser: Optional[Any] = None,
) -> list[Arrival]:
    """An open-loop (Poisson) arrival schedule over skewed keys.

    Args:
        rng: Random stream.
        rate: Mean arrivals per time unit.
        duration: Window length.
        keys: Key population.
        theta: Zipf skew of key choice.
        kinds: Optional operation mix weights.
        start: Window start time.
        chooser: Optional pre-built key chooser (any object with
            ``choose(at)``) — how the time-varying choosers
            (:class:`FlashCrowdChooser`, :class:`RotatingHotSetChooser`)
            plug in; ``theta`` is ignored when given.  The default
            builds a plain :class:`KeyChooser` from ``rng``/``theta``,
            so existing seeded streams are unchanged.

    Returns:
        Arrivals sorted by time.
    """
    if chooser is None:
        chooser = KeyChooser(rng, keys, theta)
    mix = MixChooser(rng, kinds) if kinds else None
    arrivals = []
    for index, at in enumerate(poisson_arrivals(rng, rate, duration, start=start)):
        arrivals.append(
            Arrival(
                at=at,
                key=chooser.choose(at),
                kind=mix.choose() if mix else "op",
                index=index,
            )
        )
    return arrivals


def shuffled_within_window(
    rng: SeededRNG, items: list[T], window: int
) -> list[T]:
    """Disorder a sequence by shuffling within sliding windows.

    ``window = 1`` leaves the order intact; larger windows let items
    arrive up to ``window - 1`` positions early/late — the arrival
    disorder of experiment E9 (out-of-order data entry).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1:
        return list(items)
    result: list[T] = []
    for offset in range(0, len(items), window):
        chunk = list(items[offset : offset + window])
        rng.shuffle(chunk)
        result.extend(chunk)
    return result
