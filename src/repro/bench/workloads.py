"""Workload generators: arrivals, key skew, operation mixes.

The paper's claims hinge on workload properties — contention (hot
entities, principle 2.10), arrival disorder (principle 2.2), demand
versus supply (principle 2.9) — so the generators parameterise exactly
those.  Everything draws from seeded streams: the same seed reproduces
the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TypeVar

from repro.sim.rng import SeededRNG, ZipfGenerator, poisson_arrivals

T = TypeVar("T")


@dataclass(frozen=True)
class Arrival:
    """One scheduled workload operation."""

    at: float
    key: str
    kind: str = "op"
    index: int = 0


class KeyChooser:
    """Zipf-skewed choice over a key population.

    Args:
        rng: Random stream.
        keys: The key population (index 0 is the hottest).
        theta: Zipf skew (0 = uniform).
    """

    def __init__(self, rng: SeededRNG, keys: Sequence[str], theta: float = 0.99):
        self._keys = list(keys)
        self._zipf = ZipfGenerator(rng, len(self._keys), theta)

    def choose(self) -> str:
        """One skewed draw."""
        return self._keys[self._zipf.draw()]


class MixChooser:
    """Weighted choice among operation kinds.

    Example:
        >>> rng = SeededRNG(1)
        >>> mix = MixChooser(rng, {"read": 0.9, "write": 0.1})
        >>> mix.choose() in ("read", "write")
        True
    """

    def __init__(self, rng: SeededRNG, weights: dict[str, float]):
        if not weights:
            raise ValueError("MixChooser needs at least one kind")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._rng = rng
        self._cumulative: list[tuple[float, str]] = []
        acc = 0.0
        for kind, weight in weights.items():
            acc += weight / total
            self._cumulative.append((acc, kind))

    def choose(self) -> str:
        """One weighted draw."""
        draw = self._rng.random()
        for bound, kind in self._cumulative:
            if draw < bound:
                return kind
        return self._cumulative[-1][1]


def open_loop_arrivals(
    rng: SeededRNG,
    rate: float,
    duration: float,
    keys: Sequence[str],
    theta: float = 0.0,
    kinds: Optional[dict[str, float]] = None,
    start: float = 0.0,
) -> list[Arrival]:
    """An open-loop (Poisson) arrival schedule over skewed keys.

    Args:
        rng: Random stream.
        rate: Mean arrivals per time unit.
        duration: Window length.
        keys: Key population.
        theta: Zipf skew of key choice.
        kinds: Optional operation mix weights.
        start: Window start time.

    Returns:
        Arrivals sorted by time.
    """
    chooser = KeyChooser(rng, keys, theta)
    mix = MixChooser(rng, kinds) if kinds else None
    arrivals = []
    for index, at in enumerate(poisson_arrivals(rng, rate, duration, start=start)):
        arrivals.append(
            Arrival(
                at=at,
                key=chooser.choose(),
                kind=mix.choose() if mix else "op",
                index=index,
            )
        )
    return arrivals


def shuffled_within_window(
    rng: SeededRNG, items: list[T], window: int
) -> list[T]:
    """Disorder a sequence by shuffling within sliding windows.

    ``window = 1`` leaves the order intact; larger windows let items
    arrive up to ``window - 1`` positions early/late — the arrival
    disorder of experiment E9 (out-of-order data entry).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1:
        return list(items)
    result: list[T] = []
    for offset in range(0, len(items), window):
        chunk = list(items[offset : offset + window])
        rng.shuffle(chunk)
        result.extend(chunk)
    return result
