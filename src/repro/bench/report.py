"""Plain-text experiment reports.

Every bench target prints the same artefact: a titled table of sweep
rows (one per parameter setting) plus the claim it tests, so
EXPERIMENTS.md can be assembled by running ``benchmarks/run_all.py``
and reading the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def format_cell(value: Any) -> str:
    """Human formatting: floats to 3 significant places, rest as str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[col]) for row in rendered)) if rendered else len(header)
        for col, header in enumerate(headers)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(cells))

    separator = "  ".join("-" * width for width in widths)
    body = [line(headers), separator]
    body.extend(line(row) for row in rendered)
    return "\n".join(body)


@dataclass
class ExperimentReport:
    """A complete experiment artefact: id, claim, table, reading."""

    experiment_id: str
    title: str
    claim: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells: Any) -> None:
        """Append one sweep row."""
        self.rows.append(list(cells))

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly representation (``run_all.py --json-out``)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
        }

    def render(self) -> str:
        """The printable report."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"claim: {self.claim}",
            "",
            format_table(self.headers, self.rows),
        ]
        if self.notes:
            parts.extend(["", f"reading: {self.notes}"])
        return "\n".join(parts)

    def print(self) -> None:  # noqa: A003 - deliberate, reads naturally
        """Print the report to stdout."""
        print(self.render())
        print()
