"""Strict two-phase locking — the pessimistic baseline.

Principle 2.10 argues that solipsistic transactions avoid the costs of
pessimistic concurrency control, "which can cause waits, timeouts,
deadlocks".  To measure that claim (experiment E4) we need the
pessimistic baseline itself: a strict 2PL lock manager with FIFO wait
queues and wait-for-graph deadlock detection.

The manager is callback-based so it composes with the discrete-event
simulator: a request that cannot be granted now is queued and its
``on_grant`` callback fires when the conflicting holders release.  A
request that would close a cycle in the wait-for graph raises
:class:`~repro.errors.DeadlockDetected` immediately (the requester is
the victim — a deterministic policy that keeps runs reproducible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import DeadlockDetected
from repro.locks.logical import LockMode


@dataclass
class _WaitingRequest:
    """A queued lock request."""

    tx_id: str
    mode: LockMode
    on_grant: Callable[[], None]


@dataclass
class _ResourceLock:
    """Holders and waiters for one resource."""

    mode: Optional[LockMode] = None
    holders: set[str] = field(default_factory=set)
    waiters: list[_WaitingRequest] = field(default_factory=list)


class LockManager2PL:
    """Strict two-phase locking with deadlock detection.

    Locks are held until :meth:`release_all` (strictness — no early
    release), waits are FIFO, and every blocked request adds wait-for
    edges that are checked for cycles before queueing.

    Example:
        >>> manager = LockManager2PL()
        >>> manager.acquire("t1", "x", LockMode.EXCLUSIVE)
        True
        >>> granted = []
        >>> manager.acquire("t2", "x", LockMode.EXCLUSIVE,
        ...                 on_grant=lambda: granted.append("t2"))
        False
        >>> _ = manager.release_all("t1")
        >>> granted
        ['t2']
    """

    def __init__(self):
        self._locks: dict[str, _ResourceLock] = {}
        self._held_by_tx: dict[str, set[str]] = {}
        self._waiting_for: dict[str, set[str]] = {}  # tx -> txs it waits on
        self.deadlocks = 0
        self.waits = 0
        self.immediate_grants = 0

    # ------------------------------------------------------------------ #
    # Acquisition
    # ------------------------------------------------------------------ #

    def acquire(
        self,
        tx_id: str,
        resource: str,
        mode: LockMode = LockMode.EXCLUSIVE,
        on_grant: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Request ``resource`` in ``mode`` for transaction ``tx_id``.

        Returns:
            ``True`` if granted immediately.  ``False`` if queued; the
            ``on_grant`` callback fires on grant (required in that case).

        Raises:
            DeadlockDetected: If waiting would create a cycle in the
                wait-for graph; the requester is the victim and should
                release its locks and retry.
        """
        lock = self._locks.setdefault(resource, _ResourceLock())
        if self._compatible(lock, tx_id, mode):
            self._grant(lock, tx_id, mode, resource)
            self.immediate_grants += 1
            return True
        blockers = {holder for holder in lock.holders if holder != tx_id}
        blockers.update(
            waiter.tx_id for waiter in lock.waiters if waiter.tx_id != tx_id
        )
        if self._would_deadlock(tx_id, blockers):
            self.deadlocks += 1
            raise DeadlockDetected(
                f"{tx_id} waiting on {resource} would close a wait cycle"
            )
        if on_grant is None:
            raise ValueError("queued acquire requires an on_grant callback")
        self._waiting_for.setdefault(tx_id, set()).update(blockers)
        lock.waiters.append(_WaitingRequest(tx_id, mode, on_grant))
        self.waits += 1
        return False

    def _compatible(self, lock: _ResourceLock, tx_id: str, mode: LockMode) -> bool:
        if not lock.holders:
            # An empty lock is only free if no earlier waiter is queued
            # (FIFO fairness: never jump the queue).
            return not lock.waiters
        if lock.holders == {tx_id}:
            return True  # re-entrant; upgrade handled in _grant
        if lock.mode is LockMode.SHARED and mode is LockMode.SHARED:
            return not any(
                waiter.mode is LockMode.EXCLUSIVE for waiter in lock.waiters
            )
        return False

    def _grant(
        self, lock: _ResourceLock, tx_id: str, mode: LockMode, resource: str
    ) -> None:
        if lock.holders == {tx_id} and mode is LockMode.EXCLUSIVE:
            lock.mode = LockMode.EXCLUSIVE
        elif not lock.holders:
            lock.mode = mode
        lock.holders.add(tx_id)
        if lock.mode is None:
            lock.mode = mode
        self._held_by_tx.setdefault(tx_id, set()).add(resource)

    def _would_deadlock(self, tx_id: str, new_blockers: set[str]) -> bool:
        """Would adding edges ``tx_id -> new_blockers`` close a cycle?"""
        stack = list(new_blockers)
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current == tx_id:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._waiting_for.get(current, ()))
        return False

    # ------------------------------------------------------------------ #
    # Release
    # ------------------------------------------------------------------ #

    def release_all(self, tx_id: str) -> int:
        """Release every lock and queued wait of ``tx_id`` and grant any
        now-compatible waiters (their callbacks run synchronously, in
        FIFO order).

        Returns the number of resources released.
        """
        resources = self._held_by_tx.pop(tx_id, set())
        self._waiting_for.pop(tx_id, None)
        for lock in self._locks.values():
            lock.waiters = [
                waiter for waiter in lock.waiters if waiter.tx_id != tx_id
            ]
        for blockers in self._waiting_for.values():
            blockers.discard(tx_id)
        released = 0
        # Sorted: set iteration order varies across processes (hash
        # randomization) and grant order must be reproducible.
        for resource in sorted(resources):
            lock = self._locks.get(resource)
            if lock is None:
                continue
            lock.holders.discard(tx_id)
            if not lock.holders:
                lock.mode = None
            released += 1
            self._promote_waiters(resource, lock)
            if not lock.holders and not lock.waiters:
                self._locks.pop(resource, None)
        return released

    def _promote_waiters(self, resource: str, lock: _ResourceLock) -> None:
        while lock.waiters:
            head = lock.waiters[0]
            if lock.holders and not (
                lock.mode is LockMode.SHARED and head.mode is LockMode.SHARED
            ) and lock.holders != {head.tx_id}:
                break
            lock.waiters.pop(0)
            self._grant(lock, head.tx_id, head.mode, resource)
            waiting = self._waiting_for.get(head.tx_id)
            if waiting is not None:
                waiting.clear()
            head.on_grant()
            if lock.mode is LockMode.EXCLUSIVE:
                break

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def holders(self, resource: str) -> set[str]:
        """Transactions currently holding ``resource``."""
        lock = self._locks.get(resource)
        return set(lock.holders) if lock else set()

    def waiting_count(self, resource: str) -> int:
        """Queued waiters on ``resource``."""
        lock = self._locks.get(resource)
        return len(lock.waiters) if lock else 0

    def locks_held(self, tx_id: str) -> set[str]:
        """Resources held by ``tx_id``."""
        return set(self._held_by_tx.get(tx_id, set()))
