"""SAP-style logical locks.

Paper principle 2.3 and section 3.1: SAP avoids database bottlenecks
with *logical locks* — coarse-grained, named locks managed outside the
database transaction, held until deferred actions complete.  Crucially,
"these prevent access by other users, not the user who performed the
transaction": the owner can keep working (and re-acquire) while the
infrastructure finishes the asynchronous updates on their behalf.

:class:`LogicalLockManager` implements that model: non-blocking
acquisition, shared/exclusive modes, re-entrant for the same owner, and
explicit release when the deferred work completes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class LockMode(enum.Enum):
    """Lock compatibility modes."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class _LockEntry:
    """Current holders of one named lock."""

    mode: LockMode
    owners: set[str] = field(default_factory=set)


class LogicalLockManager:
    """Coarse-grained, owner-scoped, non-blocking logical locks.

    Args:
        name: Diagnostic name (e.g. the enqueue-server this stands for).

    Example:
        >>> locks = LogicalLockManager()
        >>> locks.acquire("order/o1", "alice", LockMode.EXCLUSIVE)
        True
        >>> locks.acquire("order/o1", "bob", LockMode.EXCLUSIVE)
        False
        >>> locks.acquire("order/o1", "alice", LockMode.EXCLUSIVE)  # re-entrant
        True
        >>> locks.release_all("alice")
        1
        >>> locks.acquire("order/o1", "bob", LockMode.EXCLUSIVE)
        True
    """

    def __init__(self, name: str = "logical-locks"):
        self.name = name
        self._table: dict[str, _LockEntry] = {}
        self.denied = 0
        self.granted = 0

    def acquire(
        self,
        resource: str,
        owner: str,
        mode: LockMode = LockMode.EXCLUSIVE,
    ) -> bool:
        """Try to take ``resource`` in ``mode`` for ``owner``.

        Returns ``True`` on success (including when ``owner`` already
        holds the lock — the owner is never blocked by their own pending
        work).  Never blocks; a ``False`` means the caller should retry
        later or surface "object locked by another user" to the user, as
        SAP systems do.
        """
        entry = self._table.get(resource)
        if entry is None:
            self._table[resource] = _LockEntry(mode=mode, owners={owner})
            self.granted += 1
            return True
        if owner in entry.owners:
            if mode is LockMode.EXCLUSIVE and (
                entry.mode is LockMode.SHARED and len(entry.owners) > 1
            ):
                self.denied += 1
                return False
            if mode is LockMode.EXCLUSIVE:
                entry.mode = LockMode.EXCLUSIVE
            self.granted += 1
            return True
        if entry.mode is LockMode.SHARED and mode is LockMode.SHARED:
            entry.owners.add(owner)
            self.granted += 1
            return True
        self.denied += 1
        return False

    def release(self, resource: str, owner: str) -> bool:
        """Release ``owner``'s hold on ``resource``.

        Returns ``True`` if something was released.
        """
        entry = self._table.get(resource)
        if entry is None or owner not in entry.owners:
            return False
        entry.owners.discard(owner)
        if not entry.owners:
            del self._table[resource]
        return True

    def release_all(self, owner: str) -> int:
        """Release every lock held by ``owner`` (called when the
        deferred actions of their transaction have completed).

        Returns the number of locks released.
        """
        released = 0
        for resource in list(self._table):
            if self.release(resource, owner):
                released += 1
        return released

    def holder_of(self, resource: str) -> Optional[set[str]]:
        """Current owners of ``resource`` (``None`` if unlocked)."""
        entry = self._table.get(resource)
        return set(entry.owners) if entry else None

    def is_locked(self, resource: str) -> bool:
        """Whether anyone holds ``resource``."""
        return resource in self._table

    @property
    def held_count(self) -> int:
        """Number of currently locked resources."""
        return len(self._table)
