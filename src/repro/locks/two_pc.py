"""Two-phase commit over the simulated network — the distributed baseline.

Principle 2.5: "When entities from two different organizational units
are accessed in the same transaction, a distributed (two-phase commit)
transaction is required, which impacts performance and availability."
This module supplies that baseline so experiment E3 can measure the
impact: a textbook presumed-abort 2PC with a coordinator and voting
participants exchanging messages over :class:`~repro.sim.network.Network`.

The two costs the paper alludes to are both observable here:

* **performance** — a distributed commit takes two network round trips
  versus zero for a single-entity local commit;
* **availability** — a participant that voted yes is *in doubt* until it
  hears the decision; if the coordinator crashes in that window the
  participant stays blocked, holding its locks (``in_doubt`` exposes
  this set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.sim.network import Network, Node


@dataclass
class TwoPCResult:
    """Outcome of one distributed transaction."""

    tx_id: str
    decision: str  # "commit" | "abort"
    started_at: float
    decided_at: float
    completed_at: float  # all acks received

    @property
    def decision_latency(self) -> float:
        """Time from start until the coordinator decided."""
        return self.decided_at - self.started_at

    @property
    def total_latency(self) -> float:
        """Time from start until every participant acknowledged."""
        return self.completed_at - self.started_at


@dataclass
class _PendingCommit:
    """Coordinator-side state for one in-flight 2PC round."""

    tx_id: str
    participants: set[str]
    on_complete: Callable[[TwoPCResult], None]
    started_at: float
    votes: dict[str, bool] = field(default_factory=dict)
    acks: set[str] = field(default_factory=set)
    decision: Optional[str] = None
    decided_at: float = 0.0
    timeout_handle: Any = None


class TwoPCParticipant(Node):
    """A resource manager voting in two-phase commit.

    Args:
        node_id: Network id.
        can_commit: Predicate deciding the vote for a transaction id
            (e.g. "are my local constraints satisfiable?").
        on_commit: Callback applying the transaction locally on a
            commit decision.
        on_abort: Callback rolling back on an abort decision.
    """

    def __init__(
        self,
        node_id: str,
        can_commit: Callable[[str], bool] = lambda _tx: True,
        on_commit: Optional[Callable[[str], None]] = None,
        on_abort: Optional[Callable[[str], None]] = None,
    ):
        super().__init__(node_id)
        self.can_commit = can_commit
        self.on_commit = on_commit
        self.on_abort = on_abort
        self.in_doubt: dict[str, float] = {}  # tx -> time it became in doubt
        self.blocked_time_total = 0.0
        self.committed: list[str] = []
        self.aborted: list[str] = []

    def handle_message(self, source: str, message: Mapping[str, Any]) -> None:
        kind = message.get("type")
        tx_id = message.get("tx", "")
        if kind == "prepare":
            vote = bool(self.can_commit(tx_id))
            if vote:
                self.in_doubt[tx_id] = self._now()
            self.send(source, {"type": "vote", "tx": tx_id, "yes": vote})
        elif kind in ("commit", "abort"):
            became_in_doubt = self.in_doubt.pop(tx_id, None)
            if became_in_doubt is not None:
                self.blocked_time_total += self._now() - became_in_doubt
            if kind == "commit":
                self.committed.append(tx_id)
                if self.on_commit:
                    self.on_commit(tx_id)
            else:
                self.aborted.append(tx_id)
                if self.on_abort:
                    self.on_abort(tx_id)
            self.send(source, {"type": "ack", "tx": tx_id})

    def _now(self) -> float:
        assert self.network is not None
        return self.network.sim.now


class TwoPCCoordinator(Node):
    """Presumed-abort two-phase commit coordinator.

    Args:
        node_id: Network id.
        vote_timeout: Virtual time to wait for votes before unilaterally
            aborting (covers lost messages and partitioned participants
            — the availability hit principle 2.5 warns about).
    """

    def __init__(self, node_id: str, vote_timeout: float = 100.0):
        super().__init__(node_id)
        self.vote_timeout = vote_timeout
        self._pending: dict[str, _PendingCommit] = {}
        self.results: list[TwoPCResult] = []

    def begin(
        self,
        tx_id: str,
        participants: list[str],
        on_complete: Optional[Callable[[TwoPCResult], None]] = None,
    ) -> None:
        """Start a 2PC round across ``participants``.

        ``on_complete`` fires when every participant acknowledged the
        decision; the result is also appended to :attr:`results`.
        """
        assert self.network is not None
        if tx_id in self._pending:
            raise ValueError(f"transaction {tx_id!r} already running")
        pending = _PendingCommit(
            tx_id=tx_id,
            participants=set(participants),
            on_complete=on_complete or (lambda _result: None),
            started_at=self.network.sim.now,
        )
        self._pending[tx_id] = pending
        pending.timeout_handle = self.network.sim.schedule(
            self.vote_timeout,
            lambda: self._on_vote_timeout(tx_id),
            label=f"2pc-timeout:{tx_id}",
        )
        for participant in participants:
            self.send(participant, {"type": "prepare", "tx": tx_id})

    def handle_message(self, source: str, message: Mapping[str, Any]) -> None:
        kind = message.get("type")
        tx_id = message.get("tx", "")
        pending = self._pending.get(tx_id)
        if pending is None:
            return
        if kind == "vote" and pending.decision is None:
            pending.votes[source] = bool(message.get("yes"))
            if not message.get("yes"):
                self._decide(pending, "abort")
            elif set(pending.votes) == pending.participants:
                self._decide(pending, "commit")
        elif kind == "ack" and pending.decision is not None:
            pending.acks.add(source)
            if pending.acks == pending.participants:
                self._complete(pending)

    def _on_vote_timeout(self, tx_id: str) -> None:
        pending = self._pending.get(tx_id)
        if pending is not None and pending.decision is None:
            self._decide(pending, "abort")

    def _decide(self, pending: _PendingCommit, decision: str) -> None:
        assert self.network is not None
        pending.decision = decision
        pending.decided_at = self.network.sim.now
        if pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        for participant in pending.participants:
            self.send(participant, {"type": decision, "tx": pending.tx_id})

    def _complete(self, pending: _PendingCommit) -> None:
        assert self.network is not None
        result = TwoPCResult(
            tx_id=pending.tx_id,
            decision=pending.decision or "abort",
            started_at=pending.started_at,
            decided_at=pending.decided_at,
            completed_at=self.network.sim.now,
        )
        self.results.append(result)
        del self._pending[pending.tx_id]
        pending.on_complete(result)

    @property
    def in_flight(self) -> int:
        """2PC rounds started but not yet fully acknowledged."""
        return len(self._pending)
