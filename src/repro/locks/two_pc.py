"""Two-phase commit over the simulated network — the distributed baseline.

Principle 2.5: "When entities from two different organizational units
are accessed in the same transaction, a distributed (two-phase commit)
transaction is required, which impacts performance and availability."
This module supplies that baseline so experiment E3 can measure the
impact: a textbook presumed-abort 2PC with a coordinator and voting
participants exchanging messages over :class:`~repro.sim.network.Network`.

The two costs the paper alludes to are both observable here:

* **performance** — a distributed commit takes two network round trips
  versus zero for a single-entity local commit;
* **availability** — a participant that voted yes is *in doubt* until it
  hears the decision; if the coordinator crashes in that window the
  participant stays blocked, holding its locks (``in_doubt`` exposes
  this set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.core.policy import Deadline, RetryPolicy, TimeoutPolicy
from repro.errors import CommitInDoubt
from repro.sim.network import Network, Node


@dataclass
class TwoPCResult:
    """Outcome of one distributed transaction."""

    tx_id: str
    decision: str  # "commit" | "abort"
    started_at: float
    decided_at: float
    completed_at: float  # all acks received

    @property
    def decision_latency(self) -> float:
        """Time from start until the coordinator decided."""
        return self.decided_at - self.started_at

    @property
    def total_latency(self) -> float:
        """Time from start until every participant acknowledged."""
        return self.completed_at - self.started_at


@dataclass
class _PendingCommit:
    """Coordinator-side state for one in-flight 2PC round."""

    tx_id: str
    participants: set[str]
    on_complete: Callable[[TwoPCResult], None]
    started_at: float
    votes: dict[str, bool] = field(default_factory=dict)
    acks: set[str] = field(default_factory=set)
    decision: Optional[str] = None
    decided_at: float = 0.0
    timeout_handle: Any = None
    attempts: int = 1
    deadline: Deadline = field(default_factory=Deadline)


class TwoPCParticipant(Node):
    """A resource manager voting in two-phase commit.

    Args:
        node_id: Network id.
        can_commit: Predicate deciding the vote for a transaction id
            (e.g. "are my local constraints satisfiable?").
        on_commit: Callback applying the transaction locally on a
            commit decision.
        on_abort: Callback rolling back on an abort decision.
    """

    def __init__(
        self,
        node_id: str,
        can_commit: Callable[[str], bool] = lambda _tx: True,
        on_commit: Optional[Callable[[str], None]] = None,
        on_abort: Optional[Callable[[str], None]] = None,
    ):
        super().__init__(node_id)
        self.can_commit = can_commit
        self.on_commit = on_commit
        self.on_abort = on_abort
        self.in_doubt: dict[str, float] = {}  # tx -> time it became in doubt
        self.blocked_time_total = 0.0
        self.committed: list[str] = []
        self.aborted: list[str] = []

    def handle_message(self, source: str, message: Mapping[str, Any]) -> None:
        kind = message.get("type")
        tx_id = message.get("tx", "")
        if kind == "prepare":
            vote = bool(self.can_commit(tx_id))
            if vote:
                # Re-prepares (coordinator retries after a lost vote)
                # must not reset the in-doubt clock: the blocking window
                # started at the *first* yes vote.
                self.in_doubt.setdefault(tx_id, self._now())
            self.send(source, {"type": "vote", "tx": tx_id, "yes": vote})
        elif kind in ("commit", "abort"):
            became_in_doubt = self.in_doubt.pop(tx_id, None)
            if became_in_doubt is not None:
                self.blocked_time_total += self._now() - became_in_doubt
            if kind == "commit":
                self.committed.append(tx_id)
                if self.on_commit:
                    self.on_commit(tx_id)
            else:
                self.aborted.append(tx_id)
                if self.on_abort:
                    self.on_abort(tx_id)
            self.send(source, {"type": "ack", "tx": tx_id})

    def _now(self) -> float:
        assert self.network is not None
        return self.network.sim.now

    def check_in_doubt(self, tx_id: str) -> None:
        """Raise :class:`~repro.errors.CommitInDoubt` if this
        participant voted yes on ``tx_id`` and is still awaiting the
        decision — the coordinator-crash blocking window of principle
        2.5, surfaced through the unified fault hierarchy."""
        since = self.in_doubt.get(tx_id)
        if since is not None:
            raise CommitInDoubt(tx_id=tx_id, since=since)


class TwoPCCoordinator(Node):
    """Presumed-abort two-phase commit coordinator.

    Args:
        node_id: Network id.
        timeout: A :class:`~repro.core.policy.TimeoutPolicy` — each
            prepare round waits ``per_attempt`` for votes; ``overall``
            bounds the whole voting phase across retries.  Exhaustion
            means a unilateral abort (covers lost messages and
            partitioned participants — the availability hit principle
            2.5 warns about).
        retry: A :class:`~repro.core.policy.RetryPolicy` re-sending
            ``prepare`` to participants whose votes are missing before
            giving up.  Default: one round, the pre-policy behaviour.

    The pre-policy ``vote_timeout`` kwarg, deprecated in PR 3, has
    completed its cycle and was removed; the read-only property of that
    name remains.
    """

    #: The historical single-round vote timeout.
    DEFAULT_TIMEOUT = TimeoutPolicy(per_attempt=100.0)

    def __init__(
        self,
        node_id: str,
        timeout: Optional[TimeoutPolicy] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__(node_id)
        self.timeout_policy = timeout if timeout is not None else self.DEFAULT_TIMEOUT
        self.retry_policy = retry if retry is not None else RetryPolicy.none()
        self.retries = 0
        self._rng = None  # forked lazily from the network's simulator
        self._pending: dict[str, _PendingCommit] = {}
        self.results: list[TwoPCResult] = []

    @property
    def vote_timeout(self) -> float:
        """The per-round vote timeout (legacy name for introspection)."""
        per_attempt = self.timeout_policy.per_attempt
        return per_attempt if per_attempt is not None else float("inf")

    def begin(
        self,
        tx_id: str,
        participants: list[str],
        on_complete: Optional[Callable[[TwoPCResult], None]] = None,
    ) -> None:
        """Start a 2PC round across ``participants``.

        ``on_complete`` fires when every participant acknowledged the
        decision; the result is also appended to :attr:`results`.
        """
        assert self.network is not None
        if tx_id in self._pending:
            raise ValueError(f"transaction {tx_id!r} already running")
        sim = self.network.sim
        if self._rng is None:
            self._rng = sim.fork_rng()
        pending = _PendingCommit(
            tx_id=tx_id,
            participants=set(participants),
            on_complete=on_complete or (lambda _result: None),
            started_at=sim.now,
            deadline=self.timeout_policy.start(sim.now),
        )
        self._pending[tx_id] = pending
        self._send_prepares(pending)

    def _send_prepares(self, pending: _PendingCommit) -> None:
        """One prepare round: solicit the votes still missing and arm
        the round's timeout."""
        assert self.network is not None
        sim = self.network.sim
        wait = self.timeout_policy.attempt_timeout(pending.deadline, sim.now)
        if wait is not None:
            pending.timeout_handle = sim.schedule(
                wait,
                lambda: self._on_vote_timeout(pending.tx_id),
                label=f"2pc-timeout:{pending.tx_id}",
            )
        for participant in pending.participants:
            if participant not in pending.votes:
                self.send(participant, {"type": "prepare", "tx": pending.tx_id})

    def handle_message(self, source: str, message: Mapping[str, Any]) -> None:
        kind = message.get("type")
        tx_id = message.get("tx", "")
        pending = self._pending.get(tx_id)
        if pending is None:
            return
        if kind == "vote" and pending.decision is None:
            pending.votes[source] = bool(message.get("yes"))
            if not message.get("yes"):
                self._decide(pending, "abort")
            elif set(pending.votes) == pending.participants:
                self._decide(pending, "commit")
        elif kind == "ack" and pending.decision is not None:
            pending.acks.add(source)
            if pending.acks == pending.participants:
                self._complete(pending)

    def _on_vote_timeout(self, tx_id: str) -> None:
        pending = self._pending.get(tx_id)
        if pending is None or pending.decision is not None:
            return
        assert self.network is not None
        sim = self.network.sim
        if (
            pending.deadline.remaining(sim.now) <= 0
            or not self.retry_policy.allows_retry(pending.attempts)
        ):
            self._decide(pending, "abort")
            return
        delay = self.retry_policy.delay(pending.attempts, self._rng)
        pending.attempts += 1
        self.retries += 1
        if sim.metrics is not None:
            sim.metrics.counter("twopc.retries").inc()
        sim.schedule(
            delay,
            lambda: self._retry_prepare(tx_id),
            label=f"2pc-retry:{tx_id}",
        )

    def _retry_prepare(self, tx_id: str) -> None:
        pending = self._pending.get(tx_id)
        if pending is not None and pending.decision is None:
            self._send_prepares(pending)

    def _decide(self, pending: _PendingCommit, decision: str) -> None:
        assert self.network is not None
        pending.decision = decision
        pending.decided_at = self.network.sim.now
        if pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        for participant in pending.participants:
            self.send(participant, {"type": decision, "tx": pending.tx_id})

    def _complete(self, pending: _PendingCommit) -> None:
        assert self.network is not None
        result = TwoPCResult(
            tx_id=pending.tx_id,
            decision=pending.decision or "abort",
            started_at=pending.started_at,
            decided_at=pending.decided_at,
            completed_at=self.network.sim.now,
        )
        self.results.append(result)
        del self._pending[pending.tx_id]
        pending.on_complete(result)

    @property
    def in_flight(self) -> int:
        """2PC rounds started but not yet fully acknowledged."""
        return len(self._pending)
