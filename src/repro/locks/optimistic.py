"""Optimistic concurrency control — the abort/retry baseline.

Principle 2.10's other foil: optimistic concurrency control "can cause
rollback if data changed since it was read".  :class:`OCCValidator`
implements classic backward validation: a committing transaction fails
if any transaction that committed after it began wrote an item it read.
Experiment E4 measures the resulting abort/retry rate against 2PL waits
and solipsistic no-conflict commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import ValidationFailed


@dataclass
class _ActiveTransaction:
    """Bookkeeping for a transaction between begin and commit/abort."""

    tx_id: str
    begin_serial: int


@dataclass
class _CommittedRecord:
    """The write footprint of a committed transaction."""

    serial: int
    write_set: frozenset[str]


class OCCValidator:
    """Backward-validation optimistic concurrency control.

    Serial numbers stand in for commit timestamps: ``begin`` snapshots
    the current serial, and validation checks the write sets of every
    transaction committed since.

    Example:
        >>> occ = OCCValidator()
        >>> occ.begin("t1"); occ.begin("t2")
        >>> occ.commit("t1", read_set=["x"], write_set=["x"])
        1
        >>> occ.commit("t2", read_set=["x"], write_set=["x"])
        Traceback (most recent call last):
        ...
        repro.errors.ValidationFailed: t2 read {'x'} written by a ...
    """

    def __init__(self, history_limit: int = 10_000):
        self._serial = 0
        self._active: dict[str, _ActiveTransaction] = {}
        self._committed: list[_CommittedRecord] = []
        self._history_limit = history_limit
        self.commits = 0
        self.aborts = 0

    def begin(self, tx_id: str) -> None:
        """Start a transaction (snapshot the current commit serial)."""
        if tx_id in self._active:
            raise ValueError(f"transaction {tx_id!r} already active")
        self._active[tx_id] = _ActiveTransaction(tx_id, self._serial)

    def commit(
        self,
        tx_id: str,
        read_set: Iterable[str],
        write_set: Iterable[str],
    ) -> int:
        """Validate and commit.

        Args:
            tx_id: The committing transaction.
            read_set: Items the transaction read.
            write_set: Items it intends to write.

        Returns:
            The commit serial number.

        Raises:
            ValidationFailed: If a concurrent committer wrote something
                in ``read_set``; the caller rolls back and retries.
        """
        active = self._require_active(tx_id)
        reads = frozenset(read_set)
        conflict = self._conflicting_writes(active.begin_serial, reads)
        if conflict:
            self.aborts += 1
            del self._active[tx_id]
            raise ValidationFailed(
                f"{tx_id} read {set(conflict)!r} written by a concurrent committer"
            )
        self._serial += 1
        self._committed.append(
            _CommittedRecord(self._serial, frozenset(write_set))
        )
        if len(self._committed) > self._history_limit:
            self._committed = self._committed[-self._history_limit :]
        del self._active[tx_id]
        self.commits += 1
        return self._serial

    def abort(self, tx_id: str) -> None:
        """Abandon a transaction without validating."""
        self._require_active(tx_id)
        del self._active[tx_id]
        self.aborts += 1

    def _conflicting_writes(
        self, begin_serial: int, reads: frozenset[str]
    ) -> frozenset[str]:
        conflicts: set[str] = set()
        for record in reversed(self._committed):
            if record.serial <= begin_serial:
                break
            conflicts.update(record.write_set & reads)
        return frozenset(conflicts)

    def _require_active(self, tx_id: str) -> _ActiveTransaction:
        active = self._active.get(tx_id)
        if active is None:
            raise ValueError(f"transaction {tx_id!r} is not active")
        return active

    @property
    def active_count(self) -> int:
        """Transactions begun but not yet committed/aborted."""
        return len(self._active)

    @property
    def abort_rate(self) -> float:
        """Aborts as a fraction of finished transactions."""
        finished = self.commits + self.aborts
        return self.aborts / finished if finished else 0.0
