"""Concurrency control: SAP-style logical locks plus the classical
baselines the paper's principles are measured against.

* :class:`LogicalLockManager` — coarse, non-blocking, owner-scoped locks
  held across deferred updates (principle 2.3, section 3.1).
* :class:`LockManager2PL` — strict two-phase locking with deadlock
  detection (the pessimistic foil of principle 2.10).
* :class:`OCCValidator` — backward-validation optimistic concurrency
  control (the abort/retry foil of principle 2.10).
* :class:`TwoPCCoordinator` / :class:`TwoPCParticipant` — distributed
  two-phase commit (the cross-entity transaction cost of principle 2.5).
"""

from repro.locks.logical import LockMode, LogicalLockManager
from repro.locks.optimistic import OCCValidator
from repro.locks.two_pc import TwoPCCoordinator, TwoPCParticipant, TwoPCResult
from repro.locks.two_phase import LockManager2PL

__all__ = [
    "LockMode",
    "LogicalLockManager",
    "OCCValidator",
    "TwoPCCoordinator",
    "TwoPCParticipant",
    "TwoPCResult",
    "LockManager2PL",
]
