"""The single end-to-end conflict-handling mechanism.

Principle 2.10: "The crux of this principle is to have a single
'end-to-end' conflict-handling mechanism that deals with single and
multiple replicas, rather than having different mechanisms for each
case."

The mechanism here is a per-``(entity_type, field)`` strategy registry.
When candidate writes to the same field collide — whether they came
from two solipsistic transactions on one replica or from two replicas
merging — the resolver applies the registered strategy:

* ``COMMUTATIVE`` — compose the candidates as deltas (no loser; the
  paper's preferred outcome, enabled by recording operations, 2.8);
* ``LWW`` — keep the latest ``(timestamp, origin)`` write and count the
  rest as overwritten (cheap, but loses updates — experiment E11
  measures exactly how many);
* ``ESCALATE`` — neither composable nor safely overwritable: hand the
  case to a business-level handler (typically
  :meth:`~repro.core.compensation.CompensationManager.apologize`).
* ``CUSTOM`` — a caller-supplied merge function.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.merge.deltas import Delta, compose


class Strategy(enum.Enum):
    """How conflicting writes to one field are reconciled."""

    COMMUTATIVE = "commutative"
    LWW = "lww"
    ESCALATE = "escalate"
    CUSTOM = "custom"


@dataclass(frozen=True)
class CandidateWrite:
    """One side of a conflict.

    Either ``value`` (a proposed new field value, for LWW/custom) or
    ``delta`` (a proposed adjustment, for commutative composition) is
    set, stamped with where and when it happened.
    """

    timestamp: float
    origin: str
    tx_id: str = ""
    value: Any = None
    delta: Optional[Delta] = None

    @property
    def stamp(self) -> tuple[float, str]:
        """The LWW ordering key."""
        return (self.timestamp, self.origin)


@dataclass
class Resolution:
    """Outcome of resolving one conflict case."""

    strategy: Strategy
    value: Any = None
    delta: Optional[Delta] = None
    winner: Optional[CandidateWrite] = None
    losers: list[CandidateWrite] = field(default_factory=list)
    escalated: bool = False

    @property
    def lost_updates(self) -> int:
        """Candidates whose effect was discarded."""
        return len(self.losers)


MergeFunction = Callable[[list[CandidateWrite]], Any]
EscalationHandler = Callable[[str, str, list[CandidateWrite]], None]


class ConflictResolver:
    """Field-level conflict resolution with pluggable strategies.

    Args:
        default_strategy: Used for fields with no explicit registration
            (``LWW``, matching the generic rollup's behaviour).
        on_escalate: Called as ``(entity_type, field_name, candidates)``
            when an ``ESCALATE`` case fires; wire this to the
            compensation manager so escalations become apologies.

    Example:
        >>> resolver = ConflictResolver()
        >>> resolver.register("stock", "on_hand", Strategy.COMMUTATIVE)
        >>> a = CandidateWrite(1.0, "r1", delta=Delta.add("on_hand", -2))
        >>> b = CandidateWrite(1.0, "r2", delta=Delta.add("on_hand", -3))
        >>> resolution = resolver.resolve("stock", "on_hand", [a, b])
        >>> resolution.delta.numeric["on_hand"]
        -5
        >>> resolution.lost_updates
        0
    """

    def __init__(
        self,
        default_strategy: Strategy = Strategy.LWW,
        on_escalate: Optional[EscalationHandler] = None,
    ):
        self.default_strategy = default_strategy
        self.on_escalate = on_escalate
        self._strategies: dict[tuple[str, str], Strategy] = {}
        self._custom: dict[tuple[str, str], MergeFunction] = {}
        self.stats: dict[str, int] = {
            "commutative": 0,
            "lww": 0,
            "escalated": 0,
            "custom": 0,
            "lost_updates": 0,
        }

    def register(
        self,
        entity_type: str,
        field_name: str,
        strategy: Strategy,
        merge_function: Optional[MergeFunction] = None,
    ) -> None:
        """Declare how conflicts on one field are resolved.

        Args:
            entity_type: The entity type.
            field_name: The field.
            strategy: The resolution strategy.
            merge_function: Required for ``Strategy.CUSTOM``.
        """
        if strategy is Strategy.CUSTOM and merge_function is None:
            raise ValueError("CUSTOM strategy requires a merge_function")
        self._strategies[(entity_type, field_name)] = strategy
        if merge_function is not None:
            self._custom[(entity_type, field_name)] = merge_function

    def strategy_for(self, entity_type: str, field_name: str) -> Strategy:
        """The strategy that would resolve conflicts on this field."""
        return self._strategies.get((entity_type, field_name), self.default_strategy)

    def resolve(
        self,
        entity_type: str,
        field_name: str,
        candidates: list[CandidateWrite],
    ) -> Resolution:
        """Reconcile concurrent candidate writes to one field.

        The same call serves both conflict sources (one replica's
        solipsistic transactions, or divergent replicas) — that sameness
        is the point of principle 2.10.
        """
        if not candidates:
            raise ValueError("resolve requires at least one candidate")
        strategy = self.strategy_for(entity_type, field_name)
        if strategy is Strategy.COMMUTATIVE:
            return self._resolve_commutative(candidates)
        if strategy is Strategy.LWW:
            return self._resolve_lww(candidates)
        if strategy is Strategy.CUSTOM:
            return self._resolve_custom(entity_type, field_name, candidates)
        return self._resolve_escalate(entity_type, field_name, candidates)

    # ------------------------------------------------------------------ #

    def _resolve_commutative(self, candidates: list[CandidateWrite]) -> Resolution:
        deltas = [c.delta for c in candidates if c.delta is not None]
        if len(deltas) != len(candidates):
            raise ValueError(
                "COMMUTATIVE strategy requires every candidate to carry a delta"
            )
        self.stats["commutative"] += 1
        return Resolution(strategy=Strategy.COMMUTATIVE, delta=compose(deltas))

    def _resolve_lww(self, candidates: list[CandidateWrite]) -> Resolution:
        ordered = sorted(candidates, key=lambda c: c.stamp)
        winner = ordered[-1]
        losers = ordered[:-1]
        self.stats["lww"] += 1
        self.stats["lost_updates"] += len(losers)
        return Resolution(
            strategy=Strategy.LWW,
            value=winner.value,
            winner=winner,
            losers=losers,
        )

    def _resolve_custom(
        self, entity_type: str, field_name: str, candidates: list[CandidateWrite]
    ) -> Resolution:
        merge_function = self._custom[(entity_type, field_name)]
        self.stats["custom"] += 1
        return Resolution(
            strategy=Strategy.CUSTOM, value=merge_function(list(candidates))
        )

    def _resolve_escalate(
        self, entity_type: str, field_name: str, candidates: list[CandidateWrite]
    ) -> Resolution:
        self.stats["escalated"] += 1
        if self.on_escalate is not None:
            self.on_escalate(entity_type, field_name, list(candidates))
        return Resolution(
            strategy=Strategy.ESCALATE, losers=list(candidates), escalated=True
        )
