"""Hierarchical business entities and their catalog.

Principle 2.5 defines the unit of work: "An entity is a business object,
frequently hierarchical, such as an order and its lineitems."  In this
library an entity is identified by ``(entity_type, entity_key)``; child
objects (line items, responsibilities, offer lines) are entities of a
child type whose keys extend the parent key (``order/o1`` →
``order/o1/line/2``), so one hierarchical entity — parent plus children
— lives in one serialization unit and can be updated in one focused
transaction.

Validation follows principle 2.2 ("Out-of-order works"): by default the
catalog reports problems as *advisories* rather than rejecting entry —
"especially in the early stages of the data lifecycle, the DMS should
not bureaucratically prevent data entry."  Strict validation is
available for the data classes that need it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import SchemaViolation, UnknownEntityType

#: Python types accepted for each declared field kind.
_KIND_CHECKS: dict[str, tuple[type, ...]] = {
    "str": (str,),
    "int": (int,),
    "float": (int, float),
    "bool": (bool,),
    "set": (set, frozenset),
    "any": (object,),
}


@dataclass(frozen=True)
class FieldSpec:
    """Declaration of one entity field.

    Attributes:
        name: Field name.
        kind: One of ``str``, ``int``, ``float``, ``bool``, ``set``,
            ``any``.
        required: Whether a *complete* entity must carry the field.
            Incomplete entry is still permitted in advisory mode — the
            missing field becomes a reported problem, not a rejection.
        reference: Optional name of the entity type this field refers to
            (a foreign key); the referential constraint machinery in
            :mod:`repro.core.constraints` reads this.
    """

    name: str
    kind: str = "any"
    required: bool = False
    reference: Optional[str] = None

    def problems_with(self, value: Any) -> list[str]:
        """Advisory problems for one value (empty if acceptable)."""
        if self.kind not in _KIND_CHECKS:
            return [f"field {self.name!r} has unknown kind {self.kind!r}"]
        expected = _KIND_CHECKS[self.kind]
        if value is None:
            return []
        # bool is an int subclass; don't let booleans pass as numbers.
        if self.kind in ("int", "float") and isinstance(value, bool):
            return [f"field {self.name!r}: expected {self.kind}, got bool"]
        if not isinstance(value, expected):
            return [
                f"field {self.name!r}: expected {self.kind}, "
                f"got {type(value).__name__}"
            ]
        return []


@dataclass(frozen=True)
class EntityType:
    """Declaration of one business-object type.

    Attributes:
        name: Catalog name (e.g. ``"order"``).
        fields: Field declarations by name.
        parent: Name of the parent type for hierarchical children
            (``"order_line"`` has parent ``"order"``).
        schema_version: Monotone version; events record the version they
            were written under and readers must tolerate older ones.
        description: Human documentation.
    """

    name: str
    fields: Mapping[str, FieldSpec] = field(default_factory=dict)
    parent: Optional[str] = None
    schema_version: int = 1
    description: str = ""

    @staticmethod
    def define(
        name: str,
        field_specs: list[FieldSpec],
        parent: Optional[str] = None,
        schema_version: int = 1,
        description: str = "",
    ) -> "EntityType":
        """Convenience constructor from a spec list."""
        return EntityType(
            name=name,
            fields={spec.name: spec for spec in field_specs},
            parent=parent,
            schema_version=schema_version,
            description=description,
        )

    def problems_with(
        self, payload: Mapping[str, Any], complete: bool = False
    ) -> list[str]:
        """Advisory validation of a payload.

        Args:
            payload: Field values to check.
            complete: Whether to also report missing required fields
                (entry-stage data is allowed to be incomplete —
                principle 2.2 — so this defaults to ``False``).

        Returns:
            Problem descriptions; empty means acceptable.
        """
        problems: list[str] = []
        for name, value in payload.items():
            spec = self.fields.get(name)
            if spec is None:
                problems.append(f"unknown field {name!r} on {self.name!r}")
            else:
                problems.extend(spec.problems_with(value))
        if complete:
            for name, spec in self.fields.items():
                if spec.required and payload.get(name) is None:
                    problems.append(f"missing required field {name!r}")
        return problems

    def validate_strict(
        self, payload: Mapping[str, Any], complete: bool = False
    ) -> None:
        """Raise :class:`SchemaViolation` on any advisory problem.

        For the data classes where prevention *is* appropriate
        (section 4: "consistency is a critical consideration for certain
        business applications").
        """
        problems = self.problems_with(payload, complete=complete)
        if problems:
            raise SchemaViolation("; ".join(problems))

    def references(self) -> dict[str, str]:
        """Foreign-key fields: ``{field_name: referenced_type}``."""
        return {
            name: spec.reference
            for name, spec in self.fields.items()
            if spec.reference
        }


class EntityCatalog:
    """The registry of entity types.

    Example:
        >>> catalog = EntityCatalog()
        >>> _ = catalog.register(EntityType.define(
        ...     "order", [FieldSpec("total", "float", required=True)]))
        >>> catalog.get("order").name
        'order'
        >>> catalog.get("order").problems_with({"total": "oops"})
        ["field 'total': expected float, got str"]
    """

    def __init__(self):
        self._types: dict[str, EntityType] = {}

    def register(self, entity_type: EntityType) -> EntityType:
        """Add (or replace, for schema evolution) a type declaration.

        Replacing requires a strictly newer ``schema_version`` — the
        "only supportable changes can be permitted" rule of section 3.1.
        """
        existing = self._types.get(entity_type.name)
        if existing is not None and entity_type.schema_version <= existing.schema_version:
            raise SchemaViolation(
                f"cannot replace {entity_type.name!r} schema v{existing.schema_version} "
                f"with v{entity_type.schema_version}; bump schema_version"
            )
        self._types[entity_type.name] = entity_type
        return entity_type

    def get(self, name: str) -> EntityType:
        """Look up a type declaration.

        Raises:
            UnknownEntityType: If the name is not registered.
        """
        entity_type = self._types.get(name)
        if entity_type is None:
            raise UnknownEntityType(name)
        return entity_type

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def names(self) -> list[str]:
        """All registered type names."""
        return sorted(self._types)

    def children_of(self, parent_name: str) -> list[EntityType]:
        """Types declaring ``parent_name`` as their parent."""
        return [
            entity_type
            for entity_type in self._types.values()
            if entity_type.parent == parent_name
        ]


def child_key(parent_key: str, child_suffix: str) -> str:
    """The hierarchical key of a child under ``parent_key``.

    The suffix must be a single path segment (no ``/``) so that
    :func:`parent_key` can strip exactly one level; use dashes inside a
    segment, e.g. ``child_key("order/o1", "line-2")``.
    """
    if "/" in child_suffix:
        raise ValueError(f"child suffix may not contain '/': {child_suffix!r}")
    return f"{parent_key}/{child_suffix}"


def parent_key(key: str) -> Optional[str]:
    """The parent portion of a hierarchical key (``None`` for roots)."""
    if "/" not in key:
        return None
    return key.rsplit("/", 1)[0]


def is_descendant(key: str, ancestor_key: str) -> bool:
    """Whether ``key`` lies under ``ancestor_key`` in the hierarchy."""
    return key.startswith(ancestor_key + "/")
