"""Metadata-driven consistency: the "single infrastructure" question.

Sections 2.9 and 3.1 ask "whether a single infrastructure can deliver
different levels of consistency for different data and different
applications", and section 3.2 sketches the answer this module builds:
"a system that takes business application requirements and automatically
delivers appropriate consistency levels based on metadata (describing
data, applications, customer expectations, etc.)".

:class:`ConsistencyPolicy` is that metadata — per data class, a level
and a rationale.  :class:`PolicyRouter` binds each level to a concrete
scheme (an active/active group, a master, a quorum group, a warehouse
extract...) and routes every read/write by the entity type's policy.
The mixed-consistency bookstore of experiment E10 and the
``examples/mixed_consistency.py`` scenario run on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ConsistencyPolicyError


class ConsistencyLevel(enum.Enum):
    """The spectrum of guarantees the infrastructure can deliver.

    Ordered strongest to weakest:

    * ``STRONG`` — single-copy semantics (master writes, quorum ops);
      unapologetic, pays latency/availability.
    * ``BOUNDED_STALENESS`` — reads may lag by a declared bound
      (slave reads behind a shipping interval).
    * ``EVENTUAL`` — subjective reads/writes, convergence later;
      apologies possible.
    * ``TENTATIVE`` — operations are explicitly revocable commitments
      (reservations/offers) managed by the compensation machinery.
    * ``EXTRACT`` — read-only analytics over a periodic extract.
    """

    STRONG = "strong"
    BOUNDED_STALENESS = "bounded_staleness"
    EVENTUAL = "eventual"
    TENTATIVE = "tentative"
    EXTRACT = "extract"


@dataclass(frozen=True)
class ConsistencyPolicy:
    """The metadata record binding a data class to a level.

    Attributes:
        entity_type: The data class this policy governs.
        level: Required consistency level.
        rationale: Why — the business justification ("fulfilment must
            not oversell", "order entry must always accept").  Required:
            unexplained policies are how foolish consistency creeps in.
        max_staleness: For ``BOUNDED_STALENESS``, the tolerated lag.
    """

    entity_type: str
    level: ConsistencyLevel
    rationale: str
    max_staleness: Optional[float] = None


@dataclass
class SchemeBinding:
    """The concrete handlers implementing one consistency level.

    Attributes:
        write: ``(entity_type, *args, **kwargs)`` write handler.
        read: ``(entity_type, entity_key)`` read handler.  When
            ``reads_typed`` is set, the router instead calls
            ``read(entity_type, entity_key, request=ReadRequest(...))``
            and expects a :class:`~repro.core.readpath.ReadResult`
            stamped with delivered level and staleness back.
        describe: Human-readable scheme description for reports.
        reads_typed: Whether ``read`` speaks the typed
            request/result protocol.  Defaults ``False`` so existing
            lambda bindings keep their exact call shape.
    """

    write: Callable[..., Any]
    read: Callable[..., Any]
    describe: str = ""
    reads_typed: bool = False


class PolicyRouter:
    """Routes operations to schemes according to policy metadata.

    Args:
        default_level: Level applied to entity types with no explicit
            policy (``None`` means unpolicied access is an error — the
            strict posture).

    Example:
        >>> router = PolicyRouter(default_level=ConsistencyLevel.EVENTUAL)
        >>> router.bind(ConsistencyLevel.EVENTUAL, SchemeBinding(
        ...     write=lambda *a, **k: "eventual-write",
        ...     read=lambda *a, **k: "eventual-read"))
        >>> router.add_policy(ConsistencyPolicy(
        ...     "order", ConsistencyLevel.EVENTUAL,
        ...     rationale="order entry must always accept"))
        >>> router.write("order", "o1", {})
        'eventual-write'
    """

    def __init__(
        self,
        default_level: Optional[ConsistencyLevel] = None,
        metrics: Any = None,
    ):
        self.default_level = default_level
        self.metrics = metrics
        self._policies: dict[str, ConsistencyPolicy] = {}
        self._bindings: dict[ConsistencyLevel, SchemeBinding] = {}
        self.routed: dict[ConsistencyLevel, int] = {}

    def add_policy(self, policy: ConsistencyPolicy) -> None:
        """Register the policy for one data class."""
        if not policy.rationale:
            raise ConsistencyPolicyError(
                f"policy for {policy.entity_type!r} needs a rationale"
            )
        self._policies[policy.entity_type] = policy

    def bind(self, level: ConsistencyLevel, binding: SchemeBinding) -> None:
        """Attach the concrete scheme implementing ``level``."""
        self._bindings[level] = binding

    def policy_for(self, entity_type: str) -> ConsistencyPolicy:
        """The effective policy of a data class.

        Raises:
            ConsistencyPolicyError: If no policy exists and there is no
                default level.
        """
        policy = self._policies.get(entity_type)
        if policy is not None:
            return policy
        if self.default_level is None:
            raise ConsistencyPolicyError(
                f"no consistency policy for {entity_type!r} and no default"
            )
        return ConsistencyPolicy(
            entity_type=entity_type,
            level=self.default_level,
            rationale="library default",
        )

    def level_for(self, entity_type: str) -> ConsistencyLevel:
        """The effective level of a data class."""
        return self.policy_for(entity_type).level

    def _binding_for(self, entity_type: str) -> SchemeBinding:
        level = self.level_for(entity_type)
        binding = self._bindings.get(level)
        if binding is None:
            raise ConsistencyPolicyError(
                f"{entity_type!r} requires {level.value} but no scheme is bound"
            )
        self.routed[level] = self.routed.get(level, 0) + 1
        return binding

    def write(self, entity_type: str, *args: Any, **kwargs: Any) -> Any:
        """Route a write through the data class's scheme."""
        return self._binding_for(entity_type).write(entity_type, *args, **kwargs)

    def read(self, entity_type: str, *args: Any, **kwargs: Any) -> Any:
        """Route a read through the data class's scheme.

        For a binding on the typed protocol (``reads_typed=True``) the
        router builds the :class:`~repro.core.readpath.ReadRequest`
        from the entity type's policy metadata — level *and*
        ``max_staleness`` — unless the caller passed ``request=``
        explicitly.  The declared bound is therefore enforced on every
        routed read, including the EVENTUAL/EXTRACT paths that
        historically ignored it; violations increment
        ``read.staleness_violations`` on :attr:`metrics`.
        """
        policy = self.policy_for(entity_type)
        binding = self._binding_for(entity_type)
        if not binding.reads_typed:
            return binding.read(entity_type, *args, **kwargs)
        from repro.core.readpath import ReadRequest, ReadResult

        request = kwargs.pop("request", None)
        if request is None:
            request = ReadRequest(
                level=policy.level, max_staleness=policy.max_staleness
            )
        result = binding.read(entity_type, *args, request=request, **kwargs)
        if (
            isinstance(result, ReadResult)
            and self.metrics is not None
            and not result.bound_violated
            and request.max_staleness is not None
            and result.staleness is not None
            and result.staleness > request.max_staleness
        ):
            result.bound_violated = True
            self.metrics.counter(
                "read.staleness_violations",
                level=(
                    result.delivered_level.value
                    if result.delivered_level
                    else "unknown"
                ),
            ).inc()
        return result

    def policies(self) -> list[ConsistencyPolicy]:
        """All registered policies (the metadata table, for reports)."""
        return sorted(self._policies.values(), key=lambda p: p.entity_type)
