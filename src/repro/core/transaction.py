"""Transactions: solipsistic commits and principled procrastination.

This module implements the paper's transaction model:

* **Solipsistic mode** (principle 2.10): a transaction acts on its local
  view "without considering other local transactions" — no locks, no
  validation, commit always succeeds; conflicts are left to the
  end-to-end resolution infrastructure (:mod:`repro.core.conflict`,
  convergent rollup, compensation).
* **Optimistic / try-lock modes**: the classical baselines (backward
  validation; non-blocking logical-lock acquisition) so experiments can
  measure what solipsism buys.
* **The SAP deferred-update model** (principle 2.3): "a transaction
  [completes] when a descriptor listing pending actions has been
  committed to the database; the actions themselves are performed after
  control has returned to the user.  Logical locks are held until the
  actions have completed, but these prevent access by other users, not
  the user who performed the transaction."  Commit appends the primary
  events plus a durable descriptor entity, acknowledges the user, then
  runs the deferred actions asynchronously under logical locks.
  ``UpdateMode.SYNCHRONOUS`` is the alternative the paper also supports:
  actions run before the acknowledgement — slower, but no
  read-your-writes staleness window.
* **The isolation spectrum** (:class:`IsolationLevel`): the middle
  ground the paper argues for.  Between solipsistic commits and
  serializable OCC sit *snapshot isolation* (``SNAPSHOT``: a consistent
  snapshot at ``begin()``, first-committer-wins write-write validation
  at commit) and *non-monotonic snapshot isolation* (``NMSI``, after
  Ardekani/Sutra/Preguiça/Shapiro): snapshots lose monotonicity —
  a transaction beginning at one site sees site-local commits
  immediately but remote commits only after ``propagation_lag`` —
  while commit-time validation is still global, so independent
  transactions may observe long-fork snapshots yet lost updates remain
  impossible.  Snapshots are expressed as vector clocks over per-site
  commit sequences (:mod:`repro.merge.clock`), so "two transactions
  observed incomparable states" is literally
  ``VectorClock.concurrent_with``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.core.constraints import ConstraintManager, Violation
from repro.core.ops import PendingOp, preview_state
from repro.errors import LockUnavailable, TransactionAborted, ValidationFailed
from repro.locks.logical import LockMode, LogicalLockManager
from repro.locks.optimistic import OCCValidator
from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.rollup import EntityState
from repro.lsdb.store import LSDBStore
from repro.merge.clock import VectorClock, VersionVector
from repro.merge.deltas import Delta
from repro.queues.reliable import ReliableQueue
from repro.queues.transactional import TransactionalOutbox
from repro.sim.scheduler import Simulator

#: Entity type of the durable pending-actions descriptor (the SAP model's
#: commit record).
DESCRIPTOR_TYPE = "__tx_descriptor__"


class CCMode(enum.Enum):
    """Concurrency-control discipline of a transaction."""

    SOLIPSISTIC = "solipsistic"
    OPTIMISTIC = "optimistic"
    TRY_LOCK = "try_lock"


class UpdateMode(enum.Enum):
    """When deferred actions run relative to the user acknowledgement."""

    DEFERRED = "deferred"
    SYNCHRONOUS = "synchronous"


class IsolationLevel(enum.Enum):
    """A point on the consistency spectrum a transaction runs at.

    Ordered weakest to strongest (see :data:`ISOLATION_SPECTRUM`):

    * ``SOLIPSISTIC`` — live reads, no validation; commits always
      succeed (principle 2.10).  Admits lost updates.
    * ``NMSI`` — snapshot reads with per-site visibility: a commit is
      visible at its own site immediately and elsewhere only after the
      manager's ``propagation_lag``; write-write validation is global.
      Admits long forks and non-monotonic snapshots, forbids lost
      updates.
    * ``SNAPSHOT`` — classic SI: a consistent snapshot of everything
      committed at ``begin()``, first-committer-wins write-write
      validation.  Admits write skew, forbids lost updates and long
      forks.
    * ``SERIALIZABLE`` — OCC backward validation over the read set;
      admits no anomaly the harness knows.
    """

    SOLIPSISTIC = "solipsistic"
    NMSI = "nmsi"
    SNAPSHOT = "snapshot"
    SERIALIZABLE = "serializable"

    @property
    def rank(self) -> int:
        """Position on the spectrum (0 = weakest)."""
        return ISOLATION_SPECTRUM.index(self)

    def at_least(self, other: "IsolationLevel") -> bool:
        """Whether this level is at least as strong as ``other``."""
        return self.rank >= other.rank


#: The mode lattice, weakest to strongest.  On a single serialization
#: unit this is a chain; the interesting structure is which anomalies
#: each rung admits (see ``repro.isolation.scorecard.THEORY``).
ISOLATION_SPECTRUM: tuple[IsolationLevel, ...] = (
    IsolationLevel.SOLIPSISTIC,
    IsolationLevel.NMSI,
    IsolationLevel.SNAPSHOT,
    IsolationLevel.SERIALIZABLE,
)

#: Levels whose reads come from a begin-time snapshot instead of the
#: live rollup.
SNAPSHOT_LEVELS = frozenset({IsolationLevel.SNAPSHOT, IsolationLevel.NMSI})

#: IsolationLevel -> the concurrency-control discipline implementing it.
#: Snapshot levels run lock-free (their validation is first-committer-
#: wins at commit); serializable rides the OCC validator.
_CC_FOR_LEVEL = {
    IsolationLevel.SOLIPSISTIC: CCMode.SOLIPSISTIC,
    IsolationLevel.NMSI: CCMode.SOLIPSISTIC,
    IsolationLevel.SNAPSHOT: CCMode.SOLIPSISTIC,
    IsolationLevel.SERIALIZABLE: CCMode.OPTIMISTIC,
}


@dataclass(frozen=True)
class CommittedTx:
    """The commit record the isolation machinery keeps per transaction.

    Attributes:
        tx_id: The committed transaction.
        site: Where it committed (visibility origin for NMSI).
        seq: Its position in the site's commit sequence (the component
            the site's entry in a snapshot vector counts up to).
        committed_at: Virtual commit time (drives NMSI propagation).
        write_refs: Entity refs it wrote (first-committer-wins input).
    """

    tx_id: str
    site: str
    seq: int
    committed_at: float
    write_refs: frozenset[tuple[str, str]]


@dataclass
class DeferredAction:
    """A secondary update performed after (or at) commit.

    Attributes:
        name: Diagnostic name, recorded in the descriptor.
        run: Callable applying the action to the store (update an
            aggregate, refresh an index, ...).
        cost: Virtual time the action occupies.
    """

    name: str
    run: Callable[[LSDBStore], None]
    cost: float = 1.0


@dataclass
class CommitReceipt:
    """What the user learns from a commit attempt.

    Attributes:
        tx_id: The transaction id.
        committed: Whether the transaction committed.
        reason: Abort reason ("" when committed).
        submitted_at: Virtual time ``commit()`` was called.
        acked_at: Virtual time control returns to the user.  In deferred
            mode this precedes :attr:`actions_done_at`; the gap is the
            read-your-writes staleness window experiment E2 measures.
        actions_done_at: Virtual time the last deferred action applied.
        events: Log events the transaction appended.
        violations: Managed constraint violations recorded at commit.
        isolation: The :class:`IsolationLevel` value the transaction ran
            at ("" for plain :class:`CCMode` transactions).
        site: The site the transaction ran at ("" when untracked).
        began_at: Virtual time ``begin()`` was called.
        snapshot_lsn: Store head LSN the snapshot was taken at (-1 when
            the transaction did not run at an isolation level).
        snapshot_txids: Committed transactions visible in the snapshot,
            sorted (empty for live-read levels and plain transactions).
        snapshot_vector: Per-site commit-sequence vector of the snapshot
            (``None`` when not tracked).  Two receipts with
            ``concurrent_with`` vectors witnessed a long fork.
    """

    tx_id: str
    committed: bool
    reason: str = ""
    submitted_at: float = 0.0
    acked_at: float = 0.0
    actions_done_at: float = 0.0
    events: list[LogEvent] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    isolation: str = ""
    site: str = ""
    began_at: float = 0.0
    snapshot_lsn: int = -1
    snapshot_txids: tuple[str, ...] = ()
    snapshot_vector: Optional[VectorClock] = None

    @property
    def response_time(self) -> float:
        """User-perceived latency of the commit."""
        return self.acked_at - self.submitted_at

    @property
    def staleness_window(self) -> float:
        """How long committed-but-unapplied secondary updates linger."""
        return max(0.0, self.actions_done_at - self.acked_at)

    @property
    def snapshot_age(self) -> float:
        """How old the begin-time snapshot was when commit was
        submitted — the window another transaction had to sneak a
        conflicting write in (0 for plain transactions)."""
        return max(0.0, self.submitted_at - self.began_at)


class Transaction:
    """One open transaction: buffered ops, reads, events, actions.

    Obtained from :meth:`TransactionManager.begin`; not constructed
    directly.
    """

    def __init__(
        self,
        manager: "TransactionManager",
        tx_id: str,
        mode: CCMode,
        isolation: Optional[IsolationLevel] = None,
        site: str = "",
    ):
        self.manager = manager
        self.tx_id = tx_id
        self.mode = mode
        self.isolation = isolation
        self.site = site or manager.default_site
        self.ops: list[PendingOp] = []
        self.actions: list[DeferredAction] = []
        self.read_set: set[str] = set()
        self.outbox: Optional[TransactionalOutbox] = (
            TransactionalOutbox(manager.queue, tx_id) if manager.queue else None
        )
        self.begun_at = manager.now()
        self.finished = False
        #: Snapshot metadata (populated for any isolation level, so
        #: receipts are uniform across the spectrum; only snapshot
        #: levels *read* through it).
        self.snapshot_lsn = -1
        self.snapshot_txids: frozenset[str] = frozenset()
        self.snapshot_vector: Optional[VectorClock] = None
        if isolation is not None:
            self.snapshot_lsn = manager.store.log.head_lsn
            self.snapshot_txids, self.snapshot_vector = manager._snapshot_for(
                self.site, self.begun_at, isolation
            )
        if mode is CCMode.OPTIMISTIC:
            manager.occ.begin(tx_id)

    # ------------------------------------------------------------------ #
    # Reads (read-your-writes within the transaction)
    # ------------------------------------------------------------------ #

    def read(self, entity_type: str, entity_key: str) -> Optional[EntityState]:
        """Read an entity, overlaying this transaction's pending writes.

        Records the read for optimistic validation.  At a snapshot
        level the answer comes from the begin-time snapshot (the
        visible prefix of the entity's history); otherwise it is the
        *local replica's* current state, nothing more — the subjective
        framing of paper section 1.
        """
        self._check_open()
        self.read_set.add(f"{entity_type}/{entity_key}")
        if self.isolation in SNAPSHOT_LEVELS:
            base = self.manager._snapshot_read(self, entity_type, entity_key)
        else:
            base = self.manager.store.get(entity_type, entity_key)
        own_ops = [op for op in self.ops if op.entity_ref == (entity_type, entity_key)]
        if not own_ops:
            return base
        return preview_state(base, own_ops)

    # ------------------------------------------------------------------ #
    # Writes (buffered until commit)
    # ------------------------------------------------------------------ #

    def insert(
        self,
        entity_type: str,
        entity_key: str,
        fields: Mapping[str, Any],
        tags: Iterable[str] = (),
    ) -> None:
        """Buffer an insert (a new entity version)."""
        self._buffer(EventKind.INSERT, entity_type, entity_key, dict(fields), tags)

    def apply_delta(
        self,
        entity_type: str,
        entity_key: str,
        delta: Delta,
        tags: Iterable[str] = (),
    ) -> None:
        """Buffer a commutative delta (record the operation, 2.8)."""
        self._buffer(EventKind.DELTA, entity_type, entity_key, delta.to_payload(), tags)

    def set_fields(
        self,
        entity_type: str,
        entity_key: str,
        fields: Mapping[str, Any],
        tags: Iterable[str] = (),
    ) -> None:
        """Buffer a field overwrite (prefer deltas where possible)."""
        self._buffer(EventKind.SET_FIELDS, entity_type, entity_key, dict(fields), tags)

    def tombstone(self, entity_type: str, entity_key: str) -> None:
        """Buffer a deletion mark."""
        self._buffer(EventKind.TOMBSTONE, entity_type, entity_key, {}, ())

    def mark_obsolete(self, entity_type: str, entity_key: str) -> None:
        """Buffer an obsolescence mark (tentative data superseded)."""
        self._buffer(EventKind.OBSOLETE, entity_type, entity_key, {}, ())

    def _buffer(
        self,
        kind: EventKind,
        entity_type: str,
        entity_key: str,
        payload: dict[str, Any],
        tags: Iterable[str],
    ) -> None:
        self._check_open()
        self.ops.append(
            PendingOp(
                kind=kind,
                entity_type=entity_type,
                entity_key=entity_key,
                payload=payload,
                tags=frozenset(tags),
            )
        )

    # ------------------------------------------------------------------ #
    # Side channels
    # ------------------------------------------------------------------ #

    def defer(
        self,
        name: str,
        run: Callable[[LSDBStore], None],
        cost: float = 1.0,
    ) -> None:
        """Register a deferred action (secondary update, principle 2.3).

        The action becomes part of the committed descriptor and runs
        after the acknowledgement (deferred mode) or before it
        (synchronous mode).
        """
        self._check_open()
        self.actions.append(DeferredAction(name=name, run=run, cost=cost))

    def enqueue(self, topic: str, payload: Mapping[str, Any]) -> Optional[str]:
        """Buffer an event for publication at commit (transactional
        outbox — failed transactions leak no events, principle 2.4)."""
        self._check_open()
        if self.outbox is None:
            return None
        return self.outbox.enqueue(topic, payload)

    def enqueue_on_abort(self, topic: str, payload: Mapping[str, Any]) -> Optional[str]:
        """Buffer an infrastructure compensation event published only if
        this transaction aborts (post-rollback actions, 2.4)."""
        self._check_open()
        if self.outbox is None:
            return None
        return self.outbox.enqueue_on_abort(topic, payload)

    # ------------------------------------------------------------------ #
    # Outcome
    # ------------------------------------------------------------------ #

    def touched_entities(self) -> set[tuple[str, str]]:
        """Entity refs this transaction writes."""
        return {op.entity_ref for op in self.ops}

    def commit(self) -> CommitReceipt:
        """Attempt to commit; see :class:`CommitReceipt`.

        Never raises for concurrency or managed-constraint outcomes —
        the receipt carries success/failure so simulator-driven clients
        can branch without exception plumbing.
        """
        self._check_open()
        return self.manager._commit(self)

    def abort(self, reason: str = "explicit rollback") -> CommitReceipt:
        """Roll back: buffered ops are discarded, abort-bound
        compensation events publish, locks/validators release."""
        self._check_open()
        return self.manager._abort(self, reason)

    def _check_open(self) -> None:
        if self.finished:
            raise TransactionAborted(f"transaction {self.tx_id} already finished")


class TransactionManager:
    """Factory and commit engine for transactions over one store.

    Args:
        store: The serialization unit's store.
        sim: Optional simulator; without it, deferred actions run inline
            and all receipt times collapse to the store clock.
        queue: Optional queue backing transactional outboxes.
        constraints: Optional constraint manager consulted at commit.
        cc_mode: Default concurrency-control mode for new transactions.
        update_mode: Deferred (SAP default) or synchronous secondary
            updates.
        commit_cost: Virtual time to durably commit the descriptor.
        defer_lag: Virtual time between user ack and the first deferred
            action starting (queueing/dispatch delay).
        locks: Logical lock manager; required for ``TRY_LOCK`` mode and
            used to hold entity locks while deferred actions run.
        isolation: Default :class:`IsolationLevel` for new transactions
            (``None`` keeps the plain :class:`CCMode` behaviour; an
            explicit ``mode=`` to :meth:`begin` always wins).
        propagation_lag: Virtual time an NMSI commit takes to become
            visible at *other* sites (its own site sees it at once).
        default_site: Site attributed to transactions that do not pass
            one to :meth:`begin`.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; commits
            and aborts count into ``tx.commits``/``tx.aborts`` (labelled
            by mode) and snapshot transactions record their begin-to-
            commit ``tx.snapshot_age``.
    """

    def __init__(
        self,
        store: LSDBStore,
        sim: Optional[Simulator] = None,
        queue: Optional[ReliableQueue] = None,
        constraints: Optional[ConstraintManager] = None,
        cc_mode: CCMode = CCMode.SOLIPSISTIC,
        update_mode: UpdateMode = UpdateMode.DEFERRED,
        commit_cost: float = 1.0,
        defer_lag: float = 1.0,
        locks: Optional[LogicalLockManager] = None,
        isolation: Optional[IsolationLevel] = None,
        propagation_lag: float = 0.0,
        default_site: str = "local",
        metrics=None,
    ):
        self.store = store
        self.sim = sim
        self.queue = queue
        self.constraints = constraints
        self.cc_mode = cc_mode
        self.update_mode = update_mode
        self.commit_cost = commit_cost
        self.defer_lag = defer_lag
        self.locks = locks or LogicalLockManager()
        self.occ = OCCValidator()
        self.isolation = isolation
        self.propagation_lag = propagation_lag
        self.default_site = default_site
        self.metrics = metrics
        self._tx_ids = itertools.count(1)
        self.commits = 0
        self.aborts = 0
        self.abort_reasons: dict[str, int] = {}
        #: Commit history the isolation levels validate against: commit
        #: order, per-tx records, and the per-site commit sequence
        #: vector snapshots are cut from.
        self._commit_order: list[CommittedTx] = []
        self._committed: dict[str, CommittedTx] = {}
        self._site_vector = VersionVector()

    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now if self.sim else 0.0

    def begin(
        self,
        mode: Optional[CCMode] = None,
        tx_id: str = "",
        isolation: Optional[IsolationLevel] = None,
        site: str = "",
    ) -> Transaction:
        """Open a transaction (one per process step — principle 2.4).

        Args:
            mode: Explicit concurrency-control mode.  Passing one opts
                out of the isolation spectrum entirely (the plain
                pre-spectrum behaviour).
            tx_id: Optional explicit id.
            isolation: Level on the spectrum; defaults to the manager's
                ``isolation`` (``None`` means plain ``cc_mode``).
            site: Site the transaction runs at (NMSI visibility origin).
        """
        resolved = isolation if mode is None else None
        if resolved is None and mode is None:
            resolved = self.isolation
        return Transaction(
            self,
            tx_id or f"tx-{next(self._tx_ids)}",
            _CC_FOR_LEVEL[resolved] if resolved is not None else (mode or self.cc_mode),
            isolation=resolved,
            site=site,
        )

    # ------------------------------------------------------------------ #
    # Snapshot machinery (SNAPSHOT / NMSI)
    # ------------------------------------------------------------------ #

    def _snapshot_for(
        self, site: str, now: float, isolation: IsolationLevel
    ) -> tuple[frozenset[str], VectorClock]:
        """The committed transactions visible to a transaction beginning
        now at ``site``, plus the per-site commit-sequence vector of
        that visible set.

        Every level except NMSI sees the full committed prefix —
        snapshots are monotonic by construction.  NMSI sees site-local
        commits immediately and remote commits only once
        ``propagation_lag`` has elapsed since they committed; because a
        site's commits propagate in commit order, the visible set is a
        per-site prefix and the vector representation is exact.
        """
        if isolation is IsolationLevel.NMSI:
            visible = [
                record
                for record in self._commit_order
                if record.site == site
                or record.committed_at + self.propagation_lag <= now
            ]
        else:
            visible = self._commit_order
        counts: dict[str, int] = {}
        for record in visible:
            if record.seq > counts.get(record.site, 0):
                counts[record.site] = record.seq
        return (
            frozenset(record.tx_id for record in visible),
            VectorClock(counts),
        )

    def _event_visible(self, event: LogEvent, tx: Transaction) -> bool:
        """Whether a committed log event belongs in ``tx``'s snapshot.

        Events from tracked transactions follow the snapshot's visible
        set; everything else (direct store writes, deferred actions,
        foreign managers) counts as committed-at-append and is visible
        iff it predates the snapshot LSN.
        """
        if event.tx_id and event.tx_id in self._committed:
            return event.tx_id in tx.snapshot_txids
        return event.lsn <= tx.snapshot_lsn

    def _snapshot_read(
        self, tx: Transaction, entity_type: str, entity_key: str
    ) -> Optional[EntityState]:
        """Fold the visible prefix of one entity's history — the
        snapshot levels' read path.  O(entity history), which is the
        price of reading the past out of an insert-only log without a
        multi-version cache."""
        events = [
            event
            for event in self.store.history(entity_type, entity_key)
            if self._event_visible(event, tx)
        ]
        if not events:
            return None
        return self.store.rollup.fold(events).get((entity_type, entity_key))

    def _first_committer_conflict(self, tx: Transaction) -> str:
        """First-committer-wins validation: a write-write conflict
        exists when any committed event on a ref this transaction
        writes is *outside* its snapshot.  Returns the abort reason
        ("" when the transaction may commit).

        For SNAPSHOT the invisible writers are exactly those that
        committed after ``begin()``; for NMSI they additionally include
        remote commits still inside the propagation window, which is
        the conservative reading that keeps lost updates impossible
        even though the snapshot itself may be stale.
        """
        for ref in sorted(tx.touched_entities()):
            for event in self.store.history(*ref):
                if event.tx_id == tx.tx_id:
                    continue
                if not self._event_visible(event, tx):
                    writer = event.tx_id or f"non-transactional lsn {event.lsn}"
                    return (
                        f"write-write conflict on {ref[0]}/{ref[1]} "
                        f"with {writer}"
                    )
        return ""

    def _register_commit(self, tx: Transaction) -> None:
        """Record a tracked commit in the site-sequenced history."""
        record = CommittedTx(
            tx_id=tx.tx_id,
            site=tx.site,
            seq=self._site_vector.advance(tx.site),
            committed_at=self.now(),
            write_refs=frozenset(tx.touched_entities()),
        )
        self._commit_order.append(record)
        self._committed[tx.tx_id] = record

    def _count_outcome(self, tx: Transaction, committed: bool) -> None:
        if self.metrics is None:
            return
        label = tx.isolation.value if tx.isolation is not None else tx.mode.value
        name = "tx.commits" if committed else "tx.aborts"
        self.metrics.counter(name, mode=label).inc()
        if committed and tx.isolation is not None:
            self.metrics.histogram("tx.snapshot_age", mode=label).record(
                max(0.0, self.now() - tx.begun_at)
            )

    # ------------------------------------------------------------------ #
    # Commit path
    # ------------------------------------------------------------------ #

    def _commit(self, tx: Transaction) -> CommitReceipt:
        submitted_at = self.now()
        # 1. Concurrency control.  Solipsists skip straight through.
        if tx.isolation in SNAPSHOT_LEVELS:
            conflict = self._first_committer_conflict(tx)
            if conflict:
                return self._abort(tx, conflict, occ_done=True)
        if tx.mode is CCMode.OPTIMISTIC:
            write_keys = [f"{ref[0]}/{ref[1]}" for ref in tx.touched_entities()]
            try:
                self.occ.commit(tx.tx_id, tx.read_set, write_keys)
            except ValidationFailed as error:
                return self._abort(tx, str(error), occ_done=True)
        elif tx.mode is CCMode.TRY_LOCK:
            acquired: list[str] = []
            for ref in sorted(tx.touched_entities()):
                resource = f"{ref[0]}/{ref[1]}"
                if self.locks.acquire(resource, tx.tx_id, LockMode.EXCLUSIVE):
                    acquired.append(resource)
                else:
                    for resource_name in acquired:
                        self.locks.release(resource_name, tx.tx_id)
                    return self._abort(
                        tx, f"lock unavailable on {resource}", occ_done=True
                    )
        # 2. Constraints (managed violations record; PREVENT blocks).
        violations: list[Violation] = []
        if self.constraints is not None and tx.ops:
            outcome = self.constraints.check_ops(tx.ops, tx_id=tx.tx_id)
            if outcome.blocking:
                if tx.mode is CCMode.TRY_LOCK:
                    self.locks.release_all(tx.tx_id)
                return self._abort(tx, "blocking constraint violation", occ_done=True)
            violations = outcome.violations
        # 3. Make the primary events durable.
        events = [self._append_op(op, tx.tx_id) for op in tx.ops]
        if tx.isolation is not None:
            self._register_commit(tx)
        # 4. Commit the descriptor listing pending actions (the SAP
        #    model's durable to-do list).
        if tx.actions:
            self.store.insert(
                DESCRIPTOR_TYPE,
                tx.tx_id,
                {
                    "status": "pending",
                    "actions": [action.name for action in tx.actions],
                },
            )
        # 5. Hold logical locks on touched entities until the deferred
        #    actions complete (they exclude *other* lock-respecting
        #    users, never the owner).
        if tx.actions:
            for ref in sorted(tx.touched_entities()):
                self.locks.acquire(f"{ref[0]}/{ref[1]}", tx.tx_id, LockMode.EXCLUSIVE)
        # 6. Publish the outbox (events exist only for committed work).
        if tx.outbox is not None:
            tx.outbox.publish_on_commit()
        # 7. Schedule the deferred actions and compute the timeline.
        acked_at, actions_done_at = self._schedule_actions(tx, submitted_at)
        if not tx.actions:
            # No deferred work: nothing justifies holding locks past
            # the commit itself.
            self.locks.release_all(tx.tx_id)
        tx.finished = True
        self.commits += 1
        self._count_outcome(tx, committed=True)
        return CommitReceipt(
            tx_id=tx.tx_id,
            committed=True,
            submitted_at=submitted_at,
            acked_at=acked_at,
            actions_done_at=actions_done_at,
            events=events,
            violations=violations,
            **self._receipt_tracking(tx),
        )

    def _append_op(self, op: PendingOp, tx_id: str) -> LogEvent:
        if op.kind is EventKind.INSERT:
            return self.store.insert(
                op.entity_type, op.entity_key, dict(op.payload), tx_id, op.tags
            )
        if op.kind is EventKind.DELTA:
            return self.store.apply_delta(
                op.entity_type,
                op.entity_key,
                Delta.from_payload(op.payload),
                tx_id,
                op.tags,
            )
        if op.kind is EventKind.SET_FIELDS:
            return self.store.set_fields(
                op.entity_type, op.entity_key, dict(op.payload), tx_id, op.tags
            )
        if op.kind is EventKind.TOMBSTONE:
            return self.store.tombstone(op.entity_type, op.entity_key, tx_id, op.tags)
        return self.store.mark_obsolete(op.entity_type, op.entity_key, tx_id, op.tags)

    def _schedule_actions(
        self, tx: Transaction, submitted_at: float
    ) -> tuple[float, float]:
        """Returns ``(acked_at, actions_done_at)`` and arranges for each
        action to apply at its completion time."""
        commit_done = submitted_at + self.commit_cost
        total_action_cost = sum(action.cost for action in tx.actions)
        if not tx.actions:
            return commit_done, commit_done
        if self.update_mode is UpdateMode.SYNCHRONOUS:
            start = commit_done
            acked_at = commit_done + total_action_cost
            done_at = acked_at
        else:
            acked_at = commit_done
            start = commit_done + self.defer_lag
            done_at = start + total_action_cost
        if self.sim is None:
            for action in tx.actions:
                action.run(self.store)
            self._finish_actions(tx)
            return acked_at, done_at
        cursor = start
        for action in tx.actions:
            cursor += action.cost
            self.sim.schedule_at(
                cursor,
                (lambda bound_action=action: bound_action.run(self.store)),
                label=f"deferred:{tx.tx_id}:{action.name}",
            )
        self.sim.schedule_at(
            done_at, lambda: self._finish_actions(tx), label=f"tx-done:{tx.tx_id}"
        )
        return acked_at, done_at

    def _finish_actions(self, tx: Transaction) -> None:
        """Mark the descriptor done and drop the logical locks."""
        self.store.set_fields(DESCRIPTOR_TYPE, tx.tx_id, {"status": "done"})
        self.locks.release_all(tx.tx_id)

    # ------------------------------------------------------------------ #
    # Abort path
    # ------------------------------------------------------------------ #

    def _abort(
        self, tx: Transaction, reason: str, occ_done: bool = False
    ) -> CommitReceipt:
        if tx.mode is CCMode.OPTIMISTIC and not occ_done:
            self.occ.abort(tx.tx_id)
        if tx.outbox is not None:
            tx.outbox.discard_on_abort()
        tx.finished = True
        self.aborts += 1
        self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1
        self._count_outcome(tx, committed=False)
        now = self.now()
        return CommitReceipt(
            tx_id=tx.tx_id,
            committed=False,
            reason=reason,
            submitted_at=now,
            acked_at=now,
            actions_done_at=now,
            **self._receipt_tracking(tx),
        )

    def _receipt_tracking(self, tx: Transaction) -> dict[str, Any]:
        """The isolation-tracking receipt fields (uniform across
        commit and abort)."""
        if tx.isolation is None:
            return {"began_at": tx.begun_at}
        return {
            "isolation": tx.isolation.value,
            "site": tx.site,
            "began_at": tx.begun_at,
            "snapshot_lsn": tx.snapshot_lsn,
            "snapshot_txids": tuple(sorted(tx.snapshot_txids)),
            "snapshot_vector": tx.snapshot_vector,
        }

    @property
    def abort_rate(self) -> float:
        """Aborts as a fraction of finished transactions."""
        finished = self.commits + self.aborts
        return self.aborts / finished if finished else 0.0
