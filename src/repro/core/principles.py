"""The eleven principles, as machine-readable metadata.

The paper's contribution is the principles themselves; this module
records them verbatim (number, title, one-line statement) together with
the modules that mechanise each one and the experiments that measure it.
Tests in ``tests/test_principles.py`` assert that every referenced
module imports and every referenced experiment has a bench file — a
living table of contents that keeps code and paper aligned.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Principle:
    """One principle from paper section 2.

    Attributes:
        number: Subsection number within section 2 (1..11).
        slug: Short stable identifier.
        title: The paper's heading.
        statement: The paper's italicised one-line statement.
        mechanisms: Importable module paths implementing the principle.
        experiments: Experiment ids (see DESIGN.md section 3) measuring
            the tradeoff the principle asserts.
    """

    number: int
    slug: str
    title: str
    statement: str
    mechanisms: tuple[str, ...]
    experiments: tuple[str, ...]


PRINCIPLES: tuple[Principle, ...] = (
    Principle(
        number=1,
        slug="reality-is-real",
        title="Reality is real",
        statement=(
            "Business data may not always correctly reflect the state of "
            "the world or the business."
        ),
        mechanisms=(
            "repro.core.constraints",
            "repro.apps.inventory",
        ),
        experiments=("E9",),
    ),
    Principle(
        number=2,
        slug="out-of-order-works",
        title="Out-of-order works",
        statement=(
            "Transactions and events sometimes happen in unexpected "
            "sequences, temporarily violating integrity constraints."
        ),
        mechanisms=(
            "repro.core.constraints",
            "repro.apps.crm",
        ),
        experiments=("E9",),
    ),
    Principle(
        number=3,
        slug="ill-do-it-eventually",
        title="I'll do it eventually",
        statement="Secondary data need not be updated with primary data.",
        mechanisms=(
            "repro.core.transaction",
            "repro.lsdb.index",
            "repro.locks.logical",
        ),
        experiments=("E2",),
    ),
    Principle(
        number=4,
        slug="focused-process-steps",
        title="Process steps should focus",
        statement=(
            "Processes should be made up of process steps, connected by "
            "events; a process step should contain at most one "
            "transaction, which commits at the end of the step."
        ),
        mechanisms=(
            "repro.core.process",
            "repro.queues",
        ),
        experiments=("E7",),
    ),
    Principle(
        number=5,
        slug="focused-transactions",
        title="Transactions should focus",
        statement=(
            "Whenever possible, update only a single (frequently "
            "hierarchical) entity within a transaction."
        ),
        mechanisms=(
            "repro.core.entity",
            "repro.partition",
            "repro.locks.two_pc",
        ),
        experiments=("E3",),
    ),
    Principle(
        number=6,
        slug="soups",
        title="Single Object Update per Process Step: SOUPS on",
        statement=(
            "Each process step consists of at most one transaction, "
            "updating exactly one data object, possibly also generating "
            "reliable and/or transactional events."
        ),
        mechanisms=(
            "repro.core.process",
            "repro.queues.transactional",
        ),
        experiments=("E3", "E7"),
    ),
    Principle(
        number=7,
        slug="i-remember-it-well",
        title="I remember it well",
        statement=(
            "Handle (almost all) updates as inserts of new data, and "
            "handle deletes by marking data as deleted, rather than "
            "actually deleting."
        ),
        mechanisms=(
            "repro.lsdb",
            "repro.merge.deltas",
        ),
        experiments=("E8",),
    ),
    Principle(
        number=8,
        slug="beware-the-consequences",
        title="Beware the consequences",
        statement=(
            "Data written in transactions should describe what the "
            "transactions do, not just transaction consequences."
        ),
        mechanisms=(
            "repro.merge.deltas",
            "repro.apps.banking",
        ),
        experiments=("E11",),
    ),
    Principle(
        number=9,
        slug="i-think-i-can",
        title="I think I can",
        statement=(
            "Process steps and user experience should be designed to "
            "support tentative operations and apology-oriented computing."
        ),
        mechanisms=(
            "repro.core.compensation",
            "repro.apps.bookstore",
            "repro.apps.scm",
        ),
        experiments=("E5", "E10"),
    ),
    Principle(
        number=10,
        slug="solipsists-get-things-done",
        title="Solipsists get things done quickly",
        statement=(
            "Each transaction acts based on its local view of the data, "
            "without considering other local transactions."
        ),
        mechanisms=(
            "repro.core.transaction",
            "repro.core.conflict",
            "repro.locks.two_phase",
            "repro.locks.optimistic",
        ),
        experiments=("E4",),
    ),
    Principle(
        number=11,
        slug="the-show-must-go-on",
        title="The show must go on",
        statement="Business services should always be available.",
        mechanisms=(
            "repro.replication.active_active",
            "repro.replication.quorum",
            "repro.sim.failure",
        ),
        experiments=("E1", "E12"),
    ),
)


def get_principle(number: int) -> Principle:
    """Look up a principle by its section-2 subsection number.

    Raises:
        KeyError: If ``number`` is not in 1..11.
    """
    for principle in PRINCIPLES:
        if principle.number == number:
            return principle
    raise KeyError(f"no principle {number}; valid numbers are 1..11")


def principles_for_experiment(experiment_id: str) -> list[Principle]:
    """Principles measured by a given experiment id (e.g. ``"E4"``)."""
    return [
        principle
        for principle in PRINCIPLES
        if experiment_id in principle.experiments
    ]
