"""Pending operations: the buffered writes of an open transaction.

A transaction does not touch the log until commit; until then its
writes are :class:`PendingOp` records.  Constraints preview them
(:mod:`repro.core.constraints`), the transaction applies them at commit,
and read-your-writes overlays them onto store state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.lsdb.events import EventKind
from repro.lsdb.rollup import EntityState
from repro.merge.deltas import Delta, apply_delta


@dataclass(frozen=True)
class PendingOp:
    """One buffered write.

    Attributes:
        kind: The event kind this op will become at commit.
        entity_type: Target entity type.
        entity_key: Target entity key.
        payload: Field values (``INSERT``/``SET_FIELDS``) or a
            serialized delta (``DELTA``); empty for marks.
        tags: Tags to stamp on the resulting event.
    """

    kind: EventKind
    entity_type: str
    entity_key: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    tags: frozenset[str] = frozenset()

    @property
    def entity_ref(self) -> tuple[str, str]:
        """``(entity_type, entity_key)``."""
        return (self.entity_type, self.entity_key)


def preview_state(base: EntityState | None, ops: list[PendingOp]) -> EntityState:
    """The state an entity would have after applying ``ops``.

    Used for constraint checks and read-your-writes before anything is
    durable.  ``base`` is the current store state (``None`` if the
    entity does not exist yet).
    """
    if base is None:
        first = ops[0]
        state = EntityState(first.entity_type, first.entity_key)
    else:
        state = base.copy()
    for op in ops:
        if op.kind is EventKind.INSERT:
            state.fields.update(op.payload)
            state.version_count += 1
        elif op.kind is EventKind.DELTA:
            state.fields = apply_delta(state.fields, Delta.from_payload(op.payload))
        elif op.kind is EventKind.SET_FIELDS:
            state.fields.update(op.payload)
        elif op.kind is EventKind.TOMBSTONE:
            state.deleted = True
        elif op.kind is EventKind.OBSOLETE:
            state.obsolete = True
    return state
