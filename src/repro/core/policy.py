"""Shared fault-tolerance policies: retries, backoff, deadlines.

Before this module every subsystem hand-rolled its own give-up logic —
the reliable queue had ``redelivery_timeout``/``max_attempts``, quorum
replication a bare ``timeout``, synchronous replication ``ack_timeout``,
two-phase commit ``vote_timeout`` — four spellings of the same two
questions: *how long do we keep trying?* and *how long may one attempt
(or the whole operation) take?*  The paper frames failure handling as a
first-class design surface (section 2.11, section 3.2), which argues for
one vocabulary:

* :class:`RetryPolicy` — how many attempts, how the delay between them
  grows (fixed / exponential), how much seeded jitter decorrelates
  retry storms, and an optional shared :class:`RetryBudget` that sheds
  retries under overload;
* :class:`TimeoutPolicy` — a per-attempt timeout plus an overall
  deadline, materialised as a :class:`Deadline` that travels with the
  operation (SOUPS process steps propagate it through their emitted
  events).

Both policies are plain descriptions: *consumers* (queue, replication
schemes, 2PC, process engine) read them at construction time and keep
their hot paths exactly as cheap as before when the policy is trivial.
All jitter draws come from simulator-forked RNG streams, so a seeded run
stays byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.errors import (
    DeadlineExceeded,
    RetryBudgetExhausted,
    RetryExhausted,
)

__all__ = [
    "Deadline",
    "RetryBudget",
    "RetryPolicy",
    "TimeoutPolicy",
]


class RetryBudget:
    """A shared pool of retries across many operations.

    Per-operation attempt caps bound the *tail* of one operation; a
    budget bounds the *aggregate* — when many operations fail at once
    (a partition, a crashed backup) unbounded retries amplify the
    outage.  Consumers call :meth:`try_spend` before every retry; a
    ``False`` answer means "give up now even though your own attempt cap
    has room".

    Args:
        total: Number of retries the budget will ever grant.
    """

    def __init__(self, total: int):
        if total < 0:
            raise ValueError(f"budget must be non-negative, got {total}")
        self.total = total
        self.spent = 0

    @property
    def remaining(self) -> int:
        """Retries the budget can still grant."""
        return self.total - self.spent

    def try_spend(self) -> bool:
        """Consume one retry if any remain.  ``False`` means exhausted."""
        if self.spent >= self.total:
            return False
        self.spent += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RetryBudget({self.remaining}/{self.total} left)"


@dataclass(frozen=True)
class RetryPolicy:
    """How an operation is retried after a failed attempt.

    Args:
        max_attempts: Total attempts, counting the first (``1`` means
            "never retry").
        base_delay: Virtual time between attempts (the first retry waits
            this long).
        backoff: ``"fixed"`` keeps ``base_delay`` constant;
            ``"exponential"`` multiplies it by ``multiplier`` per retry.
        multiplier: Growth factor for exponential backoff.
        max_delay: Ceiling on any single delay (``None`` = unbounded).
        jitter: Fraction of the computed delay randomised away: the
            actual delay is uniform in ``[delay * (1 - jitter), delay]``,
            drawn from the consumer's simulator-forked RNG so seeded
            runs reproduce byte-identically.
        budget: Optional shared :class:`RetryBudget`; when it runs dry
            the operation gives up early with
            :class:`~repro.errors.RetryBudgetExhausted` semantics.

    Example:
        >>> policy = RetryPolicy.exponential(max_attempts=4, base_delay=1.0)
        >>> [policy.delay(attempt) for attempt in (1, 2, 3)]
        [1.0, 2.0, 4.0]
    """

    max_attempts: int = 5
    base_delay: float = 10.0
    backoff: str = "fixed"  # "fixed" | "exponential"
    multiplier: float = 2.0
    max_delay: Optional[float] = None
    jitter: float = 0.0
    budget: Optional[RetryBudget] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.backoff not in ("fixed", "exponential"):
            raise ValueError(
                f"backoff must be 'fixed' or 'exponential', got {self.backoff!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single attempt, no retries."""
        return cls(max_attempts=1, base_delay=0.0)

    @classmethod
    def fixed(cls, max_attempts: int = 5, delay: float = 10.0,
              **kwargs: Any) -> "RetryPolicy":
        """Constant delay between attempts (the legacy queue behaviour)."""
        return cls(max_attempts=max_attempts, base_delay=delay,
                   backoff="fixed", **kwargs)

    @classmethod
    def exponential(cls, max_attempts: int = 5, base_delay: float = 1.0,
                    multiplier: float = 2.0, **kwargs: Any) -> "RetryPolicy":
        """Exponentially growing delay between attempts."""
        return cls(max_attempts=max_attempts, base_delay=base_delay,
                   backoff="exponential", multiplier=multiplier, **kwargs)

    def with_budget(self, budget: RetryBudget) -> "RetryPolicy":
        """A copy of this policy drawing from ``budget``."""
        return replace(self, budget=budget)

    def with_jitter(self, jitter: float) -> "RetryPolicy":
        """A copy of this policy with the given jitter fraction."""
        return replace(self, jitter=jitter)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def is_trivial(self) -> bool:
        """Whether consumers may cache ``base_delay`` as a plain float
        (fixed backoff, no jitter, no budget) — the hot-path fast case."""
        return self.backoff == "fixed" and self.jitter == 0.0 and self.budget is None

    def delay(self, attempt: int, rng: Any = None) -> float:
        """Virtual time to wait after failed attempt number ``attempt``
        (1-based) before the next one.

        Args:
            attempt: The attempt that just failed (``1`` = first).
            rng: A :class:`~repro.sim.rng.SeededRNG` for the jitter
                draw; required only when ``jitter > 0``.
        """
        if self.backoff == "exponential":
            value = self.base_delay * (self.multiplier ** (attempt - 1))
        else:
            value = self.base_delay
        if self.max_delay is not None and value > self.max_delay:
            value = self.max_delay
        if self.jitter > 0.0:
            if rng is None:
                raise ValueError("jittered policy needs an rng to draw from")
            value *= 1.0 - self.jitter * rng.random()
        return value

    def allows_retry(self, attempts_so_far: int) -> bool:
        """Whether another attempt may start after ``attempts_so_far``
        attempts have already run, consuming the budget if one is set.

        Budget accounting is intentionally on the *grant* side: asking
        and being told no does not spend.
        """
        if attempts_so_far >= self.max_attempts:
            return False
        if self.budget is not None:
            return self.budget.try_spend()
        return True

    def check_exhausted(self, attempts_so_far: int, reason: str = "") -> None:
        """Raise :class:`~repro.errors.RetryExhausted` (or the budget
        variant) if no further attempt may start; otherwise spend one
        retry grant and return."""
        if attempts_so_far >= self.max_attempts:
            raise RetryExhausted(
                f"gave up after {attempts_so_far} attempts"
                + (f": {reason}" if reason else ""),
                attempts=attempts_so_far, reason=reason,
            )
        if self.budget is not None and not self.budget.try_spend():
            raise RetryBudgetExhausted(attempts=attempts_so_far)


@dataclass(frozen=True)
class TimeoutPolicy:
    """How long an operation — and each attempt of it — may take.

    Args:
        per_attempt: Virtual time one attempt may run before it is
            declared failed (and retried, per the operation's
            :class:`RetryPolicy`).  ``None`` = no per-attempt limit.
        overall: Virtual time the whole operation may take across all
            attempts.  ``None`` = no overall deadline.

    Example:
        >>> policy = TimeoutPolicy(per_attempt=10.0, overall=25.0)
        >>> deadline = policy.start(now=100.0)
        >>> deadline.expired(now=120.0)
        False
        >>> deadline.expired(now=126.0)
        True
    """

    per_attempt: Optional[float] = None
    overall: Optional[float] = None

    def __post_init__(self):
        for name in ("per_attempt", "overall"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @classmethod
    def none(cls) -> "TimeoutPolicy":
        """No limits at all."""
        return cls()

    @classmethod
    def attempt(cls, per_attempt: float) -> "TimeoutPolicy":
        """Only a per-attempt timeout (the legacy single-knob shape)."""
        return cls(per_attempt=per_attempt)

    def start(self, now: float) -> "Deadline":
        """Materialise the overall deadline for an operation starting
        at virtual time ``now``."""
        at = None if self.overall is None else now + self.overall
        return Deadline(at=at)

    def attempt_timeout(self, deadline: Optional["Deadline"],
                        now: float) -> Optional[float]:
        """The wait to schedule for one attempt: the per-attempt limit,
        clamped so it never outlives the overall deadline."""
        timeout = self.per_attempt
        if deadline is not None and deadline.at is not None:
            remaining = deadline.remaining(now)
            if timeout is None or remaining < timeout:
                timeout = max(0.0, remaining)
        return timeout


@dataclass(frozen=True)
class Deadline:
    """An absolute point in virtual time an operation must finish by.

    ``at=None`` means "no deadline" and makes every check a cheap no-op,
    so unset policies stay off the hot path.
    """

    at: Optional[float] = None

    def expired(self, now: float) -> bool:
        """Whether ``now`` is past the deadline."""
        return self.at is not None and now > self.at

    def remaining(self, now: float) -> float:
        """Virtual time left (``inf`` when no deadline)."""
        return float("inf") if self.at is None else self.at - now

    def check(self, now: float, what: str = "operation") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` if expired."""
        if self.at is not None and now > self.at:
            raise DeadlineExceeded(
                f"{what} missed its deadline (t={now} > {self.at})",
                deadline=self.at, now=now,
            )
