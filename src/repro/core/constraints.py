"""Integrity constraints as managed exceptions.

Principles 2.1 and 2.2 reframe integrity enforcement: "The constraint
still exists, but its violations are handled, rather than prevented, so
an 'inconsistent' business state that would have been regarded as
unsound has been transformed into a system-managed exception."

A :class:`Constraint` can run in two modes:

* ``MANAGE`` (the default, and the paper's recommendation for
  entry-stage data): a violating transaction still commits; the
  violation is recorded in a ledger, a ``constraint.violated`` event is
  emitted so a process step can react, and the manager re-checks open
  violations as new data arrives, marking them *repaired* when reality
  catches up (e.g. the referenced customer finally gets entered).
* ``PREVENT``: the classical behaviour — the transaction aborts.  Kept
  for the data classes where inconsistency is intolerable
  (principle 2.9's missiles and air-traffic systems).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol

from repro.core.ops import PendingOp, preview_state
from repro.lsdb.rollup import EntityState
from repro.lsdb.store import LSDBStore
from repro.queues.reliable import ReliableQueue


class ConstraintMode(enum.Enum):
    """How violations of a constraint are treated."""

    MANAGE = "manage"
    PREVENT = "prevent"


@dataclass
class Violation:
    """One recorded constraint violation (a system-managed exception).

    Attributes:
        violation_id: Unique id.
        constraint_name: Which constraint was violated.
        entity_type: The violating entity's type.
        entity_key: The violating entity's key.
        message: Human-readable description.
        tx_id: Transaction that introduced the violation.
        at: Virtual time of detection.
        context: Structured detail (observed value, missing referent,
            ...) for discrepancy accounting (principle 2.1).
        repaired: Whether a later re-check found the constraint
            satisfied again.
        repaired_at: When that happened.
    """

    violation_id: str
    constraint_name: str
    entity_type: str
    entity_key: str
    message: str
    tx_id: str = ""
    at: float = 0.0
    context: dict[str, Any] = field(default_factory=dict)
    repaired: bool = False
    repaired_at: Optional[float] = None

    @property
    def entity_ref(self) -> tuple[str, str]:
        """``(entity_type, entity_key)``."""
        return (self.entity_type, self.entity_key)

    @property
    def open(self) -> bool:
        """Whether the violation is still outstanding."""
        return not self.repaired

    @property
    def time_to_repair(self) -> Optional[float]:
        """Virtual time the violation stayed open (``None`` if open)."""
        if self.repaired_at is None:
            return None
        return self.repaired_at - self.at


class Constraint(Protocol):
    """One declarative integrity rule."""

    name: str

    def check(
        self,
        store: LSDBStore,
        previews: dict[tuple[str, str], EntityState],
    ) -> list[tuple[tuple[str, str], str, dict[str, Any]]]:
        """Evaluate against previewed post-transaction states.

        Args:
            store: The store (for looking up untouched entities).
            previews: Post-op states of the entities the transaction
                touches.

        Returns:
            ``(entity_ref, message, context)`` per violation found.
        """
        ...

    def is_satisfied(self, store: LSDBStore, violation: Violation) -> bool:
        """Whether a previously recorded violation now holds."""
        ...


def _lookup(
    store: LSDBStore,
    previews: dict[tuple[str, str], EntityState],
    entity_type: str,
    entity_key: str,
) -> Optional[EntityState]:
    """Preview-aware entity lookup."""
    preview = previews.get((entity_type, entity_key))
    return preview if preview is not None else store.get(entity_type, entity_key)


class ReferentialConstraint:
    """Foreign-key integrity: child references must resolve to a live
    parent — *eventually* (principle 2.2's leads-before-customers case).

    Args:
        name: Constraint name.
        child_type: Type carrying the reference.
        reference_field: Field holding the referenced key.
        parent_type: Type the reference points at.
    """

    def __init__(
        self,
        name: str,
        child_type: str,
        reference_field: str,
        parent_type: str,
    ):
        self.name = name
        self.child_type = child_type
        self.reference_field = reference_field
        self.parent_type = parent_type

    def check(self, store, previews):
        findings = []
        for ref, state in previews.items():
            if ref[0] != self.child_type or not state.live:
                continue
            target_key = state.get(self.reference_field)
            if target_key is None:
                continue
            parent = _lookup(store, previews, self.parent_type, target_key)
            if parent is None or not parent.live:
                findings.append(
                    (
                        ref,
                        f"{self.child_type}/{ref[1]} references missing "
                        f"{self.parent_type}/{target_key}",
                        {"missing": target_key, "field": self.reference_field},
                    )
                )
        return findings

    def is_satisfied(self, store: LSDBStore, violation: Violation) -> bool:
        child = store.get(violation.entity_type, violation.entity_key)
        if child is None or not child.live:
            return True  # the dangling child itself went away
        target_key = child.get(self.reference_field)
        if target_key is None:
            return True
        parent = store.get(self.parent_type, target_key)
        return parent is not None and parent.live


class NonNegativeConstraint:
    """A numeric field must not go below a floor (default 0).

    The inventory rule of principle 2.1: violations are *expected* when
    a packer knows more than the system, so manage them — the ledger
    plus the entity's event history is the discrepancy account.
    """

    def __init__(self, name: str, entity_type: str, field_name: str, floor: float = 0.0):
        self.name = name
        self.entity_type = entity_type
        self.field_name = field_name
        self.floor = floor

    def check(self, store, previews):
        findings = []
        for ref, state in previews.items():
            if ref[0] != self.entity_type or not state.live:
                continue
            value = state.get(self.field_name)
            if value is not None and value < self.floor:
                findings.append(
                    (
                        ref,
                        f"{self.entity_type}/{ref[1]}.{self.field_name} = "
                        f"{value} below floor {self.floor}",
                        {"observed": value, "floor": self.floor},
                    )
                )
        return findings

    def is_satisfied(self, store: LSDBStore, violation: Violation) -> bool:
        state = store.get(violation.entity_type, violation.entity_key)
        if state is None or not state.live:
            return True
        value = state.get(self.field_name)
        return value is None or value >= self.floor


class PredicateConstraint:
    """An arbitrary per-entity predicate (escape hatch for domain rules).

    Args:
        name: Constraint name.
        entity_type: Type to check.
        predicate: ``state -> bool``; ``False`` is a violation.
        describe: Optional ``state -> str`` message builder.
    """

    def __init__(
        self,
        name: str,
        entity_type: str,
        predicate: Callable[[EntityState], bool],
        describe: Optional[Callable[[EntityState], str]] = None,
    ):
        self.name = name
        self.entity_type = entity_type
        self.predicate = predicate
        self.describe = describe or (
            lambda state: f"{self.name} violated by {entity_type}/{state.entity_key}"
        )

    def check(self, store, previews):
        findings = []
        for ref, state in previews.items():
            if ref[0] != self.entity_type or not state.live:
                continue
            if not self.predicate(state):
                findings.append((ref, self.describe(state), {}))
        return findings

    def is_satisfied(self, store: LSDBStore, violation: Violation) -> bool:
        state = store.get(violation.entity_type, violation.entity_key)
        if state is None or not state.live:
            return True
        return self.predicate(state)


@dataclass
class CheckOutcome:
    """Result of checking one transaction's pending ops."""

    violations: list[Violation]
    blocking: bool

    @property
    def ok(self) -> bool:
        """Whether the transaction may commit."""
        return not self.blocking


class ConstraintManager:
    """The violation ledger and repair loop.

    Args:
        store: The store constraints evaluate against.
        queue: Optional queue receiving ``constraint.violated`` /
            ``constraint.repaired`` events (so repair process steps can
            be scheduled, per principle 2.2).
        clock: Virtual-time source for violation timestamps.
    """

    def __init__(
        self,
        store: LSDBStore,
        queue: Optional[ReliableQueue] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.store = store
        self.queue = queue
        self._clock = clock or (lambda: 0.0)
        self._constraints: list[tuple[Constraint, ConstraintMode]] = []
        self.ledger: list[Violation] = []
        self._ids = itertools.count(1)
        self.blocked_transactions = 0

    def add(
        self,
        constraint: Constraint,
        mode: ConstraintMode = ConstraintMode.MANAGE,
    ) -> None:
        """Register a constraint in the given mode."""
        self._constraints.append((constraint, mode))

    # ------------------------------------------------------------------ #
    # Commit-time checking
    # ------------------------------------------------------------------ #

    def check_ops(self, ops: list[PendingOp], tx_id: str = "") -> CheckOutcome:
        """Preview ``ops`` and evaluate every constraint.

        ``MANAGE``-mode violations are recorded (and announced on the
        queue); a ``PREVENT``-mode violation makes the outcome blocking
        and records nothing (the transaction will abort, leaving no
        violating state behind).
        """
        previews: dict[tuple[str, str], EntityState] = {}
        ops_by_ref: dict[tuple[str, str], list[PendingOp]] = {}
        for op in ops:
            ops_by_ref.setdefault(op.entity_ref, []).append(op)
        for ref, entity_ops in ops_by_ref.items():
            previews[ref] = preview_state(
                self.store.get(ref[0], ref[1]), entity_ops
            )
        managed: list[Violation] = []
        blocking = False
        for constraint, mode in self._constraints:
            findings = constraint.check(self.store, previews)
            if not findings:
                continue
            if mode is ConstraintMode.PREVENT:
                blocking = True
                continue
            for ref, message, context in findings:
                managed.append(
                    self._record(constraint.name, ref, message, context, tx_id)
                )
        if blocking:
            self.blocked_transactions += 1
        return CheckOutcome(violations=managed, blocking=blocking)

    def _record(
        self,
        constraint_name: str,
        ref: tuple[str, str],
        message: str,
        context: dict[str, Any],
        tx_id: str,
    ) -> Violation:
        violation = Violation(
            violation_id=f"v-{next(self._ids)}",
            constraint_name=constraint_name,
            entity_type=ref[0],
            entity_key=ref[1],
            message=message,
            tx_id=tx_id,
            at=self._clock(),
            context=context,
        )
        self.ledger.append(violation)
        if self.queue is not None:
            self.queue.enqueue(
                "constraint.violated",
                {
                    "violation_id": violation.violation_id,
                    "constraint": constraint_name,
                    "entity_type": ref[0],
                    "entity_key": ref[1],
                    "message": message,
                },
                causation_id=tx_id,
            )
        return violation

    # ------------------------------------------------------------------ #
    # Repair loop
    # ------------------------------------------------------------------ #

    def attempt_repairs(self) -> int:
        """Re-check every open managed violation; mark the now-satisfied
        ones repaired (the data cleansing / deferred conflict handling of
        principle 2.8).

        Returns:
            The number of violations repaired by this pass.
        """
        by_name = {constraint.name: constraint for constraint, _ in self._constraints}
        repaired = 0
        for violation in self.ledger:
            if violation.repaired:
                continue
            constraint = by_name.get(violation.constraint_name)
            if constraint is None:
                continue
            if constraint.is_satisfied(self.store, violation):
                violation.repaired = True
                violation.repaired_at = self._clock()
                repaired += 1
                if self.queue is not None:
                    self.queue.enqueue(
                        "constraint.repaired",
                        {
                            "violation_id": violation.violation_id,
                            "constraint": violation.constraint_name,
                            "entity_type": violation.entity_type,
                            "entity_key": violation.entity_key,
                        },
                    )
        return repaired

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def open_violations(self) -> list[Violation]:
        """Violations not yet repaired."""
        return [violation for violation in self.ledger if violation.open]

    def repaired_violations(self) -> list[Violation]:
        """Violations that healed as data caught up."""
        return [violation for violation in self.ledger if violation.repaired]

    def violations_for(self, entity_type: str, entity_key: str) -> list[Violation]:
        """The violation history of one entity."""
        return [
            violation
            for violation in self.ledger
            if violation.entity_ref == (entity_type, entity_key)
        ]

    @property
    def repair_rate(self) -> float:
        """Fraction of recorded violations that have been repaired."""
        if not self.ledger:
            return 1.0
        return len(self.repaired_violations()) / len(self.ledger)
