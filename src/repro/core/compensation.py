"""Tentative operations and apology-oriented computing.

Principle 2.9 ("I think I can"): decisions taken on subjective data are
*tentative*; when reality (or another replica) contradicts them, the
system compensates and apologises.  Section 3.2 adds the user-experience
contract: a tentative change is "visible and durable, but might be
marked as obsolete" — never silently erased.

This module provides:

* :class:`TentativeOperation` — a durable, visible reservation/offer
  with an expiry, stored as an entity in the LSDB (so it survives
  crashes and shows up in history).
* :class:`ApologyLedger` — the record of every apology issued, by
  reason, with its compensation.
* :class:`CompensationManager` — registry of compensating actions per
  operation kind plus the choreography helpers: create/confirm/cancel
  tentative operations and issue apologies (running the registered
  compensator and emitting an ``apology.issued`` event).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.lsdb.store import LSDBStore
from repro.queues.reliable import ReliableQueue

#: Entity type under which tentative operations are stored.
TENTATIVE_TYPE = "tentative_op"


class TentativeStatus(enum.Enum):
    """Lifecycle of a tentative operation."""

    PENDING = "pending"
    CONFIRMED = "confirmed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"


@dataclass
class TentativeOperation:
    """A visible, durable, possibly-revocable business commitment.

    Examples from the paper: an Available-To-Purchase offer from a
    supplier (quantity held at a price until a deadline), or an order
    acceptance awaiting fulfilment.
    """

    op_id: str
    kind: str
    subject_type: str
    subject_key: str
    payload: dict[str, Any]
    created_at: float
    expires_at: Optional[float] = None
    status: TentativeStatus = TentativeStatus.PENDING

    @property
    def open(self) -> bool:
        """Whether the operation can still be confirmed or cancelled."""
        return self.status is TentativeStatus.PENDING


@dataclass
class Apology:
    """One apology, with its compensation.

    Section 3.2 insists apologies be *comprehensible*: the record keeps
    the reason, the party, and what was done about it.
    """

    apology_id: str
    to_party: str
    reason: str
    at: float
    related_op: str = ""
    compensation: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Apology({self.apology_id} to {self.to_party}: {self.reason})"


class ApologyLedger:
    """Append-only record of apologies issued.

    Args:
        metrics: Optional :class:`repro.obs.MetricsRegistry`; every
            recorded apology then increments ``apologies.issued``
            (labelled by reason) so experiments read apology counts
            from the registry instead of scraping the ledger.
    """

    def __init__(self, metrics=None):
        self._apologies: list[Apology] = []
        self._ids = itertools.count(1)
        self.metrics = metrics

    def record(
        self,
        to_party: str,
        reason: str,
        at: float,
        related_op: str = "",
        compensation: str = "",
    ) -> Apology:
        """Append an apology and return it."""
        apology = Apology(
            apology_id=f"apology-{next(self._ids)}",
            to_party=to_party,
            reason=reason,
            at=at,
            related_op=related_op,
            compensation=compensation,
        )
        self._apologies.append(apology)
        if self.metrics is not None:
            self.metrics.counter("apologies.issued", reason=reason).inc()
        return apology

    def all(self) -> list[Apology]:
        """Every apology, in issue order."""
        return list(self._apologies)

    def count(self) -> int:
        """Total apologies issued."""
        return len(self._apologies)

    def by_reason(self) -> dict[str, int]:
        """Apology counts per reason string."""
        counts: dict[str, int] = {}
        for apology in self._apologies:
            counts[apology.reason] = counts.get(apology.reason, 0) + 1
        return counts

    def rate(self, total_operations: int) -> float:
        """Apologies per operation — the user-experience metric of
        experiments E5 and E10 ("preferably rare")."""
        if total_operations <= 0:
            return 0.0
        return len(self._apologies) / total_operations


Compensator = Callable[[Mapping[str, Any]], str]


class CompensationManager:
    """Registry and choreography for tentative ops and compensation.

    Args:
        store: The LSDB where tentative operations are persisted.
        queue: Optional queue receiving ``apology.issued`` and
            ``tentative.*`` events so downstream process steps can react.
        clock: Virtual-time source.
    """

    def __init__(
        self,
        store: LSDBStore,
        queue: Optional[ReliableQueue] = None,
        clock: Optional[Callable[[], float]] = None,
        metrics=None,
    ):
        self.store = store
        self.queue = queue
        self._clock = clock or (lambda: 0.0)
        # The ledger reports into the store's registry unless a
        # dedicated one is passed.
        self.ledger = ApologyLedger(
            metrics=metrics if metrics is not None else store.metrics
        )
        self._compensators: dict[str, Compensator] = {}
        self._operations: dict[str, TentativeOperation] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Compensator registry
    # ------------------------------------------------------------------ #

    def register_compensator(self, kind: str, compensator: Compensator) -> None:
        """Register the compensating action for operations of ``kind``.

        The compensator receives the operation payload/context and
        returns a human-readable description of what it did (refund
        issued, reservation restored, ...), which is stored with the
        apology.
        """
        self._compensators[kind] = compensator

    # ------------------------------------------------------------------ #
    # Tentative operation lifecycle
    # ------------------------------------------------------------------ #

    def open_tentative(
        self,
        kind: str,
        subject_type: str,
        subject_key: str,
        payload: Mapping[str, Any],
        expires_at: Optional[float] = None,
    ) -> TentativeOperation:
        """Record a tentative commitment, durably and visibly."""
        op_id = f"tnt-{next(self._ids)}"
        operation = TentativeOperation(
            op_id=op_id,
            kind=kind,
            subject_type=subject_type,
            subject_key=subject_key,
            payload=dict(payload),
            created_at=self._clock(),
            expires_at=expires_at,
        )
        self._operations[op_id] = operation
        self.store.insert(
            TENTATIVE_TYPE,
            op_id,
            {
                "kind": kind,
                "subject_type": subject_type,
                "subject_key": subject_key,
                "status": TentativeStatus.PENDING.value,
                **{f"payload_{k}": v for k, v in payload.items()},
            },
            tags=("tentative",),
        )
        self._announce("tentative.opened", operation)
        return operation

    def confirm(self, op_id: str) -> TentativeOperation:
        """The commitment became permanent (offer accepted in time)."""
        return self._transition(op_id, TentativeStatus.CONFIRMED, "tentative.confirmed")

    def cancel(self, op_id: str) -> TentativeOperation:
        """The commitment is withdrawn; the stored entity is marked
        obsolete — visible and durable, but no longer current."""
        operation = self._transition(
            op_id, TentativeStatus.CANCELLED, "tentative.cancelled"
        )
        self.store.mark_obsolete(TENTATIVE_TYPE, op_id)
        return operation

    def expire_overdue(self) -> list[TentativeOperation]:
        """Expire every open operation whose deadline has passed."""
        now = self._clock()
        expired = []
        for operation in self._operations.values():
            if (
                operation.open
                and operation.expires_at is not None
                and now >= operation.expires_at
            ):
                operation.status = TentativeStatus.EXPIRED
                self.store.set_fields(
                    TENTATIVE_TYPE,
                    operation.op_id,
                    {"status": TentativeStatus.EXPIRED.value},
                )
                self.store.mark_obsolete(TENTATIVE_TYPE, operation.op_id)
                self._announce("tentative.expired", operation)
                expired.append(operation)
        return expired

    def _transition(
        self, op_id: str, status: TentativeStatus, topic: str
    ) -> TentativeOperation:
        operation = self._operations.get(op_id)
        if operation is None:
            raise KeyError(f"unknown tentative operation {op_id!r}")
        if not operation.open:
            raise ValueError(
                f"operation {op_id!r} is {operation.status.value}, not pending"
            )
        operation.status = status
        self.store.set_fields(TENTATIVE_TYPE, op_id, {"status": status.value})
        self._announce(topic, operation)
        return operation

    def get_operation(self, op_id: str) -> TentativeOperation:
        """Look up a tentative operation by id."""
        return self._operations[op_id]

    def open_operations(self) -> list[TentativeOperation]:
        """All still-pending tentative operations."""
        return [op for op in self._operations.values() if op.open]

    # ------------------------------------------------------------------ #
    # Apologies
    # ------------------------------------------------------------------ #

    def apologize(
        self,
        to_party: str,
        reason: str,
        kind: str = "",
        context: Optional[Mapping[str, Any]] = None,
        related_op: str = "",
    ) -> Apology:
        """Issue an apology, running the registered compensator.

        Args:
            to_party: Who is owed the apology.
            reason: Why (short, stable string — it keys the reports).
            kind: Compensator to run ("" for apology-only).
            context: Passed to the compensator.
            related_op: Tentative-operation id this relates to.

        Returns:
            The recorded :class:`Apology`.
        """
        compensation = ""
        if kind:
            compensator = self._compensators.get(kind)
            if compensator is not None:
                compensation = compensator(dict(context or {}))
        apology = self.ledger.record(
            to_party=to_party,
            reason=reason,
            at=self._clock(),
            related_op=related_op,
            compensation=compensation,
        )
        if self.queue is not None:
            self.queue.enqueue(
                "apology.issued",
                {
                    "apology_id": apology.apology_id,
                    "to": to_party,
                    "reason": reason,
                    "compensation": compensation,
                },
            )
        return apology

    def _announce(self, topic: str, operation: TentativeOperation) -> None:
        if self.queue is not None:
            self.queue.enqueue(
                topic,
                {
                    "op_id": operation.op_id,
                    "kind": operation.kind,
                    "subject_type": operation.subject_type,
                    "subject_key": operation.subject_key,
                    "status": operation.status.value,
                },
            )
