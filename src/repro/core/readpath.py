"""The unified read protocol, now typed.

Historically each surface grew its own read-path name: stores exposed
``get``/``require``, replication groups exposed positional ``read``
variants keyed by node id, warehouses exposed ``get`` over extracts,
indexes exposed ``lookup``.  Call sites could not swap one surface for
another without rewriting every read.

The canonical protocol, implemented by every surface in the library::

    surface.read(entity_type, entity_key)                      # legacy
    surface.read(entity_type, entity_key, request=ReadRequest(...))

* ``entity_type`` / ``entity_key`` name the entity, exactly as in the
  entity catalog.
* ``request`` is a :class:`ReadRequest` carrying everything the caller
  wants the read path to honour: the requested
  :class:`~repro.core.consistency.ConsistencyLevel`, a tolerated
  staleness bound, a deadline, the requesting tenant, and whether the
  caller accepts a degraded (weaker-than-requested) answer.
* With a ``request``, the surface returns a :class:`ReadResult` stamped
  with the consistency *actually delivered* and the staleness it
  measured while serving — delivered-vs-requested is first-class, which
  is what lets the front door degrade reads honestly instead of lying
  about them (paper sections 2.3/2.9: serve and apologize rather than
  block).
* Without a ``request`` the legacy behaviour is unchanged: the raw
  :class:`~repro.lsdb.rollup.EntityState` (or ``None``) comes back.

The loose ``consistency`` keyword argument that predated the typed
protocol completed its one-cycle deprecation and is gone; passing it
now raises ``TypeError`` like any unknown keyword.  ``store.get(...)``
/ ``warehouse.get(...)`` and the three-positional
``group.read(node_id, entity_type, entity_key)`` forms are unaffected
aliases, not scheduled for removal.

:func:`read_from` is the dispatch helper for code that receives an
arbitrary surface (the policy router, the front door, experiment
harnesses).  It is also where :class:`ConsistencyPolicy.max_staleness`
is finally enforced: a delivered staleness above the declared bound
marks the result and increments ``read.staleness_violations``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, runtime_checkable

from repro.core.consistency import ConsistencyLevel
from repro.core.policy import Deadline
from repro.errors import ConsistencyPolicyError


class ConsistencyUnavailable(ConsistencyPolicyError):
    """The surface cannot serve the requested level and the request
    forbids degradation (``allow_degraded=False``)."""


#: Strongest-to-weakest rank used for degradation decisions.  A read is
#: *degraded* when its delivered level ranks strictly weaker than the
#: requested one.
LEVEL_STRENGTH: dict[ConsistencyLevel, int] = {
    ConsistencyLevel.STRONG: 0,
    ConsistencyLevel.BOUNDED_STALENESS: 1,
    ConsistencyLevel.EVENTUAL: 2,
    ConsistencyLevel.TENTATIVE: 3,
    ConsistencyLevel.EXTRACT: 4,
}


def is_weaker(level: ConsistencyLevel, than: ConsistencyLevel) -> bool:
    """Whether ``level`` gives strictly weaker guarantees than ``than``."""
    return LEVEL_STRENGTH[level] > LEVEL_STRENGTH[than]


def replica_level(requested: ConsistencyLevel) -> ConsistencyLevel:
    """The level a lagging replica read actually delivers: the requested
    level, floored at ``BOUNDED_STALENESS`` when the caller asked for
    something stronger than a replica can promise."""
    if LEVEL_STRENGTH[requested] < LEVEL_STRENGTH[
        ConsistencyLevel.BOUNDED_STALENESS
    ]:
        return ConsistencyLevel.BOUNDED_STALENESS
    return requested


@dataclass(frozen=True)
class ReadRequest:
    """Everything a caller declares about one read.

    Attributes:
        level: Requested :class:`ConsistencyLevel`.  Defaults to
            ``STRONG`` — the caller who does not think about
            consistency gets the unapologetic semantics and pays for
            them, exactly the paper's framing of the default.
        max_staleness: Tolerated staleness in simulated time units;
            ``None`` means unbounded.  A surface that measures a larger
            staleness while serving marks the result
            ``bound_violated`` and bumps ``read.staleness_violations``.
        deadline: Optional :class:`~repro.core.policy.Deadline`; the
            front door rejects expired requests instead of serving them.
        tenant: Admission-control identity; empty string is the
            anonymous/default tenant.
        allow_degraded: Whether the caller accepts a weaker-than-
            requested answer.  ``False`` turns degradation into
            :class:`ConsistencyUnavailable` (or a rejection at the
            front door).
    """

    level: ConsistencyLevel = ConsistencyLevel.STRONG
    max_staleness: Optional[float] = None
    deadline: Optional[Deadline] = None
    tenant: str = ""
    allow_degraded: bool = True

    @classmethod
    def strong(cls, **kwargs: Any) -> "ReadRequest":
        return cls(level=ConsistencyLevel.STRONG, **kwargs)

    @classmethod
    def bounded(cls, max_staleness: float, **kwargs: Any) -> "ReadRequest":
        return cls(
            level=ConsistencyLevel.BOUNDED_STALENESS,
            max_staleness=max_staleness,
            **kwargs,
        )

    @classmethod
    def eventual(cls, **kwargs: Any) -> "ReadRequest":
        return cls(level=ConsistencyLevel.EVENTUAL, **kwargs)


class ReadResult:
    """One read's answer plus the truth about how it was served.

    Wraps the raw :class:`~repro.lsdb.rollup.EntityState` (or ``None``)
    and stamps what the infrastructure actually did: the delivered
    level, the staleness measured at serve time, whether the answer is
    degraded below the requested level, which physical unit (and, in a
    geo deployment, which site) served it, and — when the front door had
    to apologize — the apology token.

    The wrapper *unwraps transparently*: it compares equal to its
    value, is falsy when the value is ``None`` (or the read was
    rejected), and forwards attribute access to the value, so seed-era
    call sites reading ``result.fields["qty"]`` or ``result == state``
    keep working unchanged.
    """

    __slots__ = (
        "value",
        "requested_level",
        "delivered_level",
        "staleness",
        "degraded",
        "served_by",
        "site",
        "rejected",
        "reject_reason",
        "bound_violated",
        "apology",
    )

    def __init__(
        self,
        value: Any,
        *,
        requested_level: ConsistencyLevel,
        delivered_level: Optional[ConsistencyLevel],
        staleness: Optional[float] = 0.0,
        degraded: bool = False,
        served_by: str = "",
        site: str = "",
        rejected: bool = False,
        reject_reason: str = "",
        bound_violated: bool = False,
        apology: Any = None,
    ):
        self.value = value
        self.requested_level = requested_level
        self.delivered_level = delivered_level
        self.staleness = staleness
        self.degraded = degraded
        self.served_by = served_by
        self.site = site
        self.rejected = rejected
        self.reject_reason = reject_reason
        self.bound_violated = bound_violated
        self.apology = apology

    # ------------------------------------------------------------------ #
    # Transparent unwrap
    # ------------------------------------------------------------------ #

    def unwrap(self) -> Any:
        """The raw entity state (or ``None``)."""
        return self.value

    @property
    def ok(self) -> bool:
        """Served (possibly degraded) rather than rejected."""
        return not self.rejected

    def __bool__(self) -> bool:
        return self.value is not None and not self.rejected

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ReadResult):
            return self.value == other.value
        return self.value == other

    # EntityState itself is unhashable (mutable dataclass); mirror that.
    __hash__ = None  # type: ignore[assignment]

    def __getattr__(self, name: str) -> Any:
        # Only called for names not in __slots__: forward to the value
        # so ``result.fields`` / ``result.live`` read like the state.
        value = object.__getattribute__(self, "value")
        if value is None:
            raise AttributeError(
                f"ReadResult has no attribute {name!r} (value is None)"
            )
        return getattr(value, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        delivered = self.delivered_level.value if self.delivered_level else None
        flags = []
        if self.degraded:
            flags.append("degraded")
        if self.bound_violated:
            flags.append("bound_violated")
        if self.rejected:
            flags.append(f"rejected:{self.reject_reason}")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return (
            f"ReadResult({self.value!r}, delivered={delivered}, "
            f"staleness={self.staleness}{suffix})"
        )


def deliver(
    value: Any,
    request: ReadRequest,
    delivered_level: ConsistencyLevel,
    *,
    staleness: Optional[float] = 0.0,
    served_by: str = "",
    site: str = "",
    metrics: Any = None,
) -> ReadResult:
    """Stamp one served read into a :class:`ReadResult`.

    Centralizes the two policy checks every surface owes the caller:

    * *degradation* — delivered weaker than requested is marked, and
      raises :class:`ConsistencyUnavailable` when the request forbids it;
    * *staleness bound* — measured staleness above
      ``request.max_staleness`` marks ``bound_violated`` and increments
      the ``read.staleness_violations`` counter (labelled by delivered
      level) on ``metrics``.  This is the enforcement
      :class:`~repro.core.consistency.ConsistencyPolicy.max_staleness`
      always promised and never had.
    """
    degraded = is_weaker(delivered_level, request.level)
    if degraded and not request.allow_degraded:
        raise ConsistencyUnavailable(
            f"read served at {delivered_level.value} but "
            f"{request.level.value} was required and degradation is not allowed"
        )
    result = ReadResult(
        value,
        requested_level=request.level,
        delivered_level=delivered_level,
        staleness=staleness,
        degraded=degraded,
        served_by=served_by,
        site=site,
    )
    if (
        request.max_staleness is not None
        and staleness is not None
        and staleness > request.max_staleness
    ):
        result.bound_violated = True
        if metrics is not None:
            metrics.counter(
                "read.staleness_violations", level=delivered_level.value
            ).inc()
    return result


@runtime_checkable
class ReadSurface(Protocol):
    """Anything that can answer a canonical read."""

    def read(
        self,
        entity_type: str,
        entity_key: str,
        *,
        request: Optional[ReadRequest] = None,
    ) -> Optional[Any]:
        """Current state of one entity; a :class:`ReadResult` when a
        typed request is passed, the raw state otherwise."""
        ...


def read_from(
    surface: Any,
    entity_type: str,
    entity_key: str,
    *,
    request: Optional[ReadRequest] = None,
    policy: Any = None,
    metrics: Any = None,
) -> Any:
    """Read from any surface, old or new.

    Prefers the canonical ``read`` protocol; falls back to a bare
    ``get`` for objects predating it.  With a typed ``request`` the
    answer is a :class:`ReadResult`; surfaces that predate the typed
    protocol get wrapped with an honest "staleness unknown" stamp.

    ``policy`` (a :class:`~repro.core.consistency.ConsistencyPolicy`)
    fills in the request's level and staleness bound when the caller
    has only metadata — this is how the policy router finally enforces
    ``max_staleness`` on EVENTUAL/EXTRACT paths.
    """
    if request is None and policy is not None:
        request = ReadRequest(
            level=policy.level, max_staleness=policy.max_staleness
        )
    elif request is not None and policy is not None:
        if request.max_staleness is None and policy.max_staleness is not None:
            request = ReadRequest(
                level=request.level,
                max_staleness=policy.max_staleness,
                deadline=request.deadline,
                tenant=request.tenant,
                allow_degraded=request.allow_degraded,
            )

    reader = getattr(surface, "read", None)
    if request is None:
        if reader is not None:
            return reader(entity_type, entity_key)
        return surface.get(entity_type, entity_key)

    if reader is not None:
        try:
            result = reader(entity_type, entity_key, request=request)
        except TypeError:
            # Pre-typed surface: serve legacy, wrap with unknown staleness.
            value = reader(entity_type, entity_key)
            result = deliver(
                value, request, request.level, staleness=None, metrics=metrics
            )
        if isinstance(result, ReadResult):
            # Re-check the bound here for surfaces that stamped staleness
            # but had no registry of their own to count violations in.
            if (
                metrics is not None
                and not result.bound_violated
                and request.max_staleness is not None
                and result.staleness is not None
                and result.staleness > request.max_staleness
            ):
                result.bound_violated = True
                metrics.counter(
                    "read.staleness_violations",
                    level=(
                        result.delivered_level.value
                        if result.delivered_level
                        else "unknown"
                    ),
                ).inc()
            return result
        return deliver(result, request, request.level, staleness=None, metrics=metrics)
    value = surface.get(entity_type, entity_key)
    return deliver(value, request, request.level, staleness=None, metrics=metrics)
