"""The unified read protocol.

Historically each surface grew its own read-path name: stores exposed
``get``/``require``, replication groups exposed positional ``read``
variants keyed by node id, warehouses exposed ``get`` over extracts,
indexes exposed ``lookup``.  Call sites could not swap one surface for
another without rewriting every read.

The protocol, implemented by every surface in the library::

    surface.read(entity_type, entity_key, *, consistency=None)

* ``entity_type`` / ``entity_key`` name the entity, exactly as in the
  entity catalog.
* ``consistency`` is an optional
  :class:`~repro.core.consistency.ConsistencyLevel`; surfaces that can
  serve multiple levels route on it (a master/slave group sends
  ``STRONG`` to the master and anything weaker to a slave), surfaces
  with a single level accept and ignore it — the parameter exists so a
  call site can be pointed at a different surface without edits.
* Returns the entity's :class:`~repro.lsdb.rollup.EntityState`, or
  ``None`` when the surface has never seen the entity (which, on a
  stale surface, includes "written but not replicated here yet").

Legacy forms remain as thin aliases and are not scheduled for removal:
``store.get(...)`` and ``warehouse.get(...)`` are the same read without
the consistency parameter, and the three-positional
``group.read(node_id, entity_type, entity_key)`` addresses an explicit
replica.  New code should prefer the canonical form.

:func:`read_from` is the dispatch helper for code that receives an
arbitrary surface (the policy router, experiment harnesses).
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable


@runtime_checkable
class ReadSurface(Protocol):
    """Anything that can answer a canonical read."""

    def read(
        self,
        entity_type: str,
        entity_key: str,
        *,
        consistency: Any = None,
    ) -> Optional[Any]:
        """Current state of one entity at this surface's consistency."""
        ...


def read_from(
    surface: Any,
    entity_type: str,
    entity_key: str,
    *,
    consistency: Any = None,
) -> Optional[Any]:
    """Read from any surface, old or new.

    Prefers the canonical ``read`` protocol; falls back to a bare
    ``get`` for objects predating it.
    """
    reader = getattr(surface, "read", None)
    if reader is not None:
        return reader(entity_type, entity_key, consistency=consistency)
    return surface.get(entity_type, entity_key)
