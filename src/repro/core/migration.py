"""Dynamic schema and application migration with continuous availability.

Paper section 3.1: "a timelessly sustainable application environment
must provide both dynamic schema migration and dynamic application
migration capabilities, with continuous availability.  The
infrastructure environment must proscribe admissible changes to schemas
and applications; not all changes will be supportable, and only
supportable changes can be permitted."

This module supplies the three pieces that sentence demands:

* **Admissibility checking** — :func:`classify_changes` diffs two
  schema versions into typed :class:`SchemaChange` records, and
  :class:`MigrationPlan` partitions them into admissible and proscribed
  (adding fields, widening ``int``→``float`` and relaxing requiredness
  are supportable; removing required fields, narrowing kinds and
  tightening requiredness are not, because committed events exist that
  the new schema could not read).
* **Lazy event upcasting** — events are immutable and stay in the log
  at the version they were written under; a
  :class:`MigratingReducer` upcasts each payload *at fold time* through
  the registered upcast chain, so old data is never rewritten and
  readers tolerate every historical version.
* **Dynamic application migration** — :class:`ApplicationMigrator`
  runs two handler versions side by side and cuts traffic over
  per-entity (deterministic hash split), so a new application version
  ramps from 0% to 100% with no pause in service.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.core.entity import EntityCatalog, EntityType
from repro.errors import SchemaViolation
from repro.lsdb.events import LogEvent
from repro.lsdb.rollup import EntityState, GenericReducer, Reducer

#: Kind-widening lattice: a value written under the key kind can always
#: be read under any kind in the value set.
_WIDENINGS: dict[str, set[str]] = {
    "int": {"int", "float", "any"},
    "float": {"float", "any"},
    "str": {"str", "any"},
    "bool": {"bool", "any"},
    "set": {"set", "any"},
    "any": {"any"},
}


class ChangeKind(enum.Enum):
    """Categories of schema change, per admissibility."""

    ADD_FIELD = "add_field"
    REMOVE_OPTIONAL_FIELD = "remove_optional_field"
    REMOVE_REQUIRED_FIELD = "remove_required_field"
    WIDEN_KIND = "widen_kind"
    NARROW_KIND = "narrow_kind"
    RELAX_REQUIRED = "relax_required"
    TIGHTEN_REQUIRED = "tighten_required"
    CHANGE_REFERENCE = "change_reference"


#: Changes the infrastructure permits (section 3.1's "supportable").
ADMISSIBLE_KINDS: frozenset[ChangeKind] = frozenset(
    {
        ChangeKind.ADD_FIELD,
        ChangeKind.REMOVE_OPTIONAL_FIELD,
        ChangeKind.WIDEN_KIND,
        ChangeKind.RELAX_REQUIRED,
        ChangeKind.CHANGE_REFERENCE,
    }
)


@dataclass(frozen=True)
class SchemaChange:
    """One observed difference between two schema versions."""

    kind: ChangeKind
    field_name: str
    detail: str = ""

    @property
    def admissible(self) -> bool:
        """Whether the infrastructure supports this change."""
        return self.kind in ADMISSIBLE_KINDS


def classify_changes(old: EntityType, new: EntityType) -> list[SchemaChange]:
    """Diff two versions of one entity type into typed changes."""
    if old.name != new.name:
        raise ValueError(f"cannot diff {old.name!r} against {new.name!r}")
    changes: list[SchemaChange] = []
    for name, spec in new.fields.items():
        if name not in old.fields:
            changes.append(SchemaChange(ChangeKind.ADD_FIELD, name, spec.kind))
    for name, old_spec in old.fields.items():
        new_spec = new.fields.get(name)
        if new_spec is None:
            kind = (
                ChangeKind.REMOVE_REQUIRED_FIELD
                if old_spec.required
                else ChangeKind.REMOVE_OPTIONAL_FIELD
            )
            changes.append(SchemaChange(kind, name))
            continue
        if old_spec.kind != new_spec.kind:
            widened = new_spec.kind in _WIDENINGS.get(old_spec.kind, set())
            changes.append(
                SchemaChange(
                    ChangeKind.WIDEN_KIND if widened else ChangeKind.NARROW_KIND,
                    name,
                    f"{old_spec.kind} -> {new_spec.kind}",
                )
            )
        if old_spec.required and not new_spec.required:
            changes.append(SchemaChange(ChangeKind.RELAX_REQUIRED, name))
        elif not old_spec.required and new_spec.required:
            changes.append(SchemaChange(ChangeKind.TIGHTEN_REQUIRED, name))
        if old_spec.reference != new_spec.reference:
            changes.append(
                SchemaChange(
                    ChangeKind.CHANGE_REFERENCE,
                    name,
                    f"{old_spec.reference} -> {new_spec.reference}",
                )
            )
    return changes


@dataclass
class MigrationPlan:
    """The admissibility verdict for a proposed schema version."""

    entity_type: str
    from_version: int
    to_version: int
    changes: list[SchemaChange] = field(default_factory=list)

    @property
    def proscribed(self) -> list[SchemaChange]:
        """Changes the infrastructure refuses."""
        return [change for change in self.changes if not change.admissible]

    @property
    def admissible(self) -> bool:
        """Whether every change is supportable."""
        return not self.proscribed


Upcast = Callable[[dict[str, Any]], dict[str, Any]]


class SchemaMigrationManager:
    """Versioned schema evolution over one catalog.

    Args:
        catalog: The entity catalog holding current type declarations.

    Example:
        >>> from repro.core.entity import FieldSpec
        >>> catalog = EntityCatalog()
        >>> v1 = EntityType.define("order", [FieldSpec("total", "int")])
        >>> _ = catalog.register(v1)
        >>> manager = SchemaMigrationManager(catalog)
        >>> v2 = EntityType.define(
        ...     "order",
        ...     [FieldSpec("total", "float"), FieldSpec("currency", "str")],
        ...     schema_version=2)
        >>> manager.propose(v2).admissible
        True
    """

    def __init__(self, catalog: EntityCatalog):
        self.catalog = catalog
        self._upcasts: dict[tuple[str, int], Upcast] = {}
        self.migrations_applied = 0
        self._attached_stores: list = []

    def attach_store(self, store) -> None:
        """Wire a store into the migration machinery.

        Locally written events get stamped with the catalog's *current*
        schema version for their type, and every registered type folds
        through a :class:`MigratingReducer` (lazy upcasting at read
        time).  Call once per store, before or after migrations; call
        ``store.rebuild_cache()`` after each :meth:`apply` so
        already-folded events re-fold under the new interpretation.
        """
        store.schema_version_source = self._current_version
        for type_name in self.catalog.names():
            store.register_reducer(type_name, MigratingReducer(self))
        self._attached_stores.append(store)

    def _current_version(self, entity_type: str) -> int:
        if entity_type in self.catalog:
            return self.catalog.get(entity_type).schema_version
        return 1

    def propose(self, new_type: EntityType) -> MigrationPlan:
        """Classify the proposed version against the current one."""
        current = self.catalog.get(new_type.name)
        return MigrationPlan(
            entity_type=new_type.name,
            from_version=current.schema_version,
            to_version=new_type.schema_version,
            changes=classify_changes(current, new_type),
        )

    def apply(
        self,
        new_type: EntityType,
        upcast: Optional[Upcast] = None,
    ) -> MigrationPlan:
        """Install a new schema version — only if admissible.

        Args:
            new_type: The proposed version (``schema_version`` must be
                strictly newer).
            upcast: Payload transformer from the *previous* version to
                the new one; defaults to identity (appropriate for pure
                additions).  Stored and applied lazily at read time.

        Returns:
            The applied plan.

        Raises:
            SchemaViolation: If any change is proscribed ("only
                supportable changes can be permitted").
        """
        plan = self.propose(new_type)
        if not plan.admissible:
            details = "; ".join(
                f"{change.kind.value}({change.field_name})"
                for change in plan.proscribed
            )
            raise SchemaViolation(
                f"migration of {new_type.name!r} v{plan.from_version}->"
                f"v{plan.to_version} proscribed: {details}"
            )
        self.catalog.register(new_type)
        self._upcasts[(new_type.name, plan.from_version)] = upcast or (
            lambda payload: payload
        )
        self.migrations_applied += 1
        # The log's interpretation just changed: rollup checkpoints on
        # attached stores froze states folded under the old upcast chain
        # and must not shortcut the post-migration rebuild.
        for store in self._attached_stores:
            manager = getattr(store, "checkpoints", None)
            if manager is not None:
                manager.invalidate()
        return plan

    def upcast_payload(
        self,
        entity_type: str,
        payload: Mapping[str, Any],
        from_version: int,
    ) -> dict[str, Any]:
        """Bring a payload written at ``from_version`` up to the current
        version by chaining registered upcasts."""
        current = self.catalog.get(entity_type).schema_version
        result = dict(payload)
        version = from_version
        while version < current:
            transform = self._upcasts.get((entity_type, version))
            if transform is not None:
                result = dict(transform(result))
            version += 1
        return result


class MigratingReducer:
    """A reducer wrapper that upcasts event payloads at fold time.

    Old events stay in the log untouched (insert-only, principle 2.7);
    the *read path* translates them, so migration requires no data
    rewrite and no downtime.

    Args:
        manager: The schema migration manager holding upcast chains.
        inner: The reducer that implements the type's aggregation
            (defaults to :class:`GenericReducer`).
    """

    def __init__(
        self,
        manager: SchemaMigrationManager,
        inner: Optional[Reducer] = None,
    ):
        self.manager = manager
        self.inner = inner or GenericReducer()

    def apply(self, state: Optional[EntityState], event: LogEvent) -> EntityState:
        return self.inner.apply(state, self._translate(event))

    def fold(self, state: Optional[EntityState], event: LogEvent) -> EntityState:
        """In-place fold (see :class:`~repro.lsdb.rollup.Reducer`):
        upcasting happens per event either way, so the wrapper passes
        the mutation permission straight through to the inner reducer
        when it supports it."""
        inner_fold = getattr(self.inner, "fold", self.inner.apply)
        return inner_fold(state, self._translate(event))

    def _translate(self, event: LogEvent) -> LogEvent:
        current = self.manager.catalog.get(event.entity_type).schema_version
        if event.schema_version >= current or not event.payload:
            return event
        upcasted = self.manager.upcast_payload(
            event.entity_type, event.payload, event.schema_version
        )
        translated = LogEvent(
            lsn=event.lsn,
            timestamp=event.timestamp,
            entity_type=event.entity_type,
            entity_key=event.entity_key,
            kind=event.kind,
            payload=upcasted,
            origin=event.origin,
            origin_seq=event.origin_seq,
            tx_id=event.tx_id,
            schema_version=current,
            tags=event.tags,
        )
        return translated


@dataclass
class CutoverStatus:
    """Progress of an application migration."""

    fraction: float
    routed_to_new: int
    routed_to_old: int

    @property
    def complete(self) -> bool:
        """Whether all traffic goes to the new version."""
        return self.fraction >= 1.0


class ApplicationMigrator:
    """Side-by-side application versions with per-entity cutover.

    The routing split is a deterministic hash of the entity key, so one
    entity always sees one application version at a given fraction —
    the property that keeps per-entity state coherent mid-migration —
    and raising the fraction only ever moves entities old→new.

    Args:
        old_handler: The incumbent version.
        new_handler: The replacement version.
        name: Diagnostic name.
    """

    def __init__(
        self,
        old_handler: Callable[..., Any],
        new_handler: Callable[..., Any],
        name: str = "app-migration",
    ):
        self.old_handler = old_handler
        self.new_handler = new_handler
        self.name = name
        self._fraction = 0.0
        self._routed_new = 0
        self._routed_old = 0

    def set_fraction(self, fraction: float) -> None:
        """Ramp the share of entities served by the new version."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self._fraction = fraction

    def _bucket(self, entity_key: str) -> float:
        digest = hashlib.md5(f"{self.name}/{entity_key}".encode()).hexdigest()
        return int(digest[:8], 16) / 0xFFFFFFFF

    def uses_new(self, entity_key: str) -> bool:
        """Whether ``entity_key`` is served by the new version now."""
        return self._bucket(entity_key) < self._fraction

    def route(self, entity_key: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke whichever version owns ``entity_key``."""
        if self.uses_new(entity_key):
            self._routed_new += 1
            return self.new_handler(entity_key, *args, **kwargs)
        self._routed_old += 1
        return self.old_handler(entity_key, *args, **kwargs)

    def status(self) -> CutoverStatus:
        """Current cutover progress."""
        return CutoverStatus(
            fraction=self._fraction,
            routed_to_new=self._routed_new,
            routed_to_old=self._routed_old,
        )
