"""The paper's primary contribution: the principles engine.

This package mechanises the eleven principles of *Principles for
Inconsistency* (CIDR 2009):

* :mod:`~repro.core.principles` — the principles as metadata.
* :mod:`~repro.core.entity` — hierarchical business entities (2.5).
* :mod:`~repro.core.transaction` — solipsistic transactions and the SAP
  deferred-update model (2.3, 2.10).
* :mod:`~repro.core.process` — SOUPS process steps and collapsing
  (2.4, 2.6, 3.1).
* :mod:`~repro.core.constraints` — violations as managed exceptions
  (2.1, 2.2).
* :mod:`~repro.core.conflict` — the single end-to-end conflict
  mechanism (2.8, 2.10).
* :mod:`~repro.core.compensation` — tentative operations and
  apology-oriented computing (2.9, 3.2).
* :mod:`~repro.core.consistency` — metadata-driven consistency levels
  (3.1, 3.2).
* :mod:`~repro.core.policy` — the unified fault-tolerance policy API
  (retry, timeout, deadline) shared by queues, replication, 2PC and
  the process engine (2.11).
"""

from repro.core.compensation import (
    Apology,
    ApologyLedger,
    CompensationManager,
    TentativeOperation,
    TentativeStatus,
)
from repro.core.conflict import CandidateWrite, ConflictResolver, Resolution, Strategy
from repro.core.consistency import (
    ConsistencyLevel,
    ConsistencyPolicy,
    PolicyRouter,
    SchemeBinding,
)
from repro.core.constraints import (
    ConstraintManager,
    ConstraintMode,
    NonNegativeConstraint,
    PredicateConstraint,
    ReferentialConstraint,
    Violation,
)
from repro.core.entity import (
    EntityCatalog,
    EntityType,
    FieldSpec,
    child_key,
    parent_key,
)
from repro.core.migration import (
    ApplicationMigrator,
    ChangeKind,
    MigratingReducer,
    MigrationPlan,
    SchemaChange,
    SchemaMigrationManager,
    classify_changes,
)
from repro.core.ops import PendingOp, preview_state
from repro.core.policy import Deadline, RetryBudget, RetryPolicy, TimeoutPolicy
from repro.core.principles import PRINCIPLES, Principle, get_principle
from repro.core.readpath import (
    ConsistencyUnavailable,
    ReadRequest,
    ReadResult,
    ReadSurface,
    read_from,
)
from repro.core.process import JoinContext, ProcessEngine, ProcessStep, StepContext
from repro.core.transaction import (
    CCMode,
    CommitReceipt,
    DeferredAction,
    Transaction,
    TransactionManager,
    UpdateMode,
)

__all__ = [
    "Apology",
    "ApologyLedger",
    "CompensationManager",
    "TentativeOperation",
    "TentativeStatus",
    "CandidateWrite",
    "ConflictResolver",
    "Resolution",
    "Strategy",
    "ConsistencyLevel",
    "ConsistencyPolicy",
    "PolicyRouter",
    "SchemeBinding",
    "ConstraintManager",
    "ConstraintMode",
    "NonNegativeConstraint",
    "PredicateConstraint",
    "ReferentialConstraint",
    "Violation",
    "EntityCatalog",
    "EntityType",
    "FieldSpec",
    "child_key",
    "parent_key",
    "ApplicationMigrator",
    "ChangeKind",
    "MigratingReducer",
    "MigrationPlan",
    "SchemaChange",
    "SchemaMigrationManager",
    "classify_changes",
    "PendingOp",
    "preview_state",
    "Deadline",
    "RetryBudget",
    "RetryPolicy",
    "TimeoutPolicy",
    "PRINCIPLES",
    "Principle",
    "get_principle",
    "ConsistencyUnavailable",
    "ReadRequest",
    "ReadResult",
    "ReadSurface",
    "read_from",
    "JoinContext",
    "ProcessEngine",
    "ProcessStep",
    "StepContext",
    "CCMode",
    "CommitReceipt",
    "DeferredAction",
    "Transaction",
    "TransactionManager",
    "UpdateMode",
]
