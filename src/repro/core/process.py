"""The process engine: steps, events, SOUPS, and step collapsing.

Principles 2.4 and 2.6 define the programming model this module
enforces:

* a **process** is a series of **steps** connected by events;
* each step contains **at most one transaction**, which commits at the
  end of the step (there is no application work after commit inside a
  step);
* under **SOUPS** each step's transaction updates **exactly one
  entity** — a :class:`~repro.errors.SoupsViolation` is raised the
  moment a handler touches a second one;
* a committed step may enqueue events that trigger further steps; a
  failed step leaks nothing (transactional outbox) and is retried by
  the queue's at-least-once machinery, with idempotent receivers
  absorbing duplicates.

Section 3.1's performance escape hatches are here too:

* :meth:`ProcessEngine.collapse_vertical` fuses a linear chain of steps
  of one process into a single step running one transaction (fewer
  queue hops, longer transaction);
* :meth:`ProcessEngine.collapse_horizontal` batches several triggering
  events of one step into a single transaction (throughput for
  response time).

Experiment E7 sweeps both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.core.policy import RetryPolicy, TimeoutPolicy
from repro.core.transaction import Transaction, TransactionManager
from repro.errors import SoupsViolation
from repro.lsdb.rollup import EntityState
from repro.merge.deltas import Delta
from repro.queues.idempotence import IdempotentReceiver
from repro.queues.message import Message
from repro.queues.reliable import ReliableQueue


class StepContext:
    """What a step handler may do.

    Wraps the step's transaction with SOUPS enforcement: the first
    entity a handler updates becomes *the* entity of the step; touching
    any other raises :class:`SoupsViolation` (unless the engine was
    built with ``enforce_soups=False``, used by collapsed steps whose
    single transaction legitimately spans local entities).
    """

    def __init__(
        self,
        message: Message,
        tx: Transaction,
        enforce_soups: bool = True,
    ):
        self.message = message
        self.tx = tx
        self.enforce_soups = enforce_soups
        self._pinned: Optional[tuple[str, str]] = None

    # -- reads are unrestricted (SOUPS restricts *updates*) ------------- #

    def read(self, entity_type: str, entity_key: str) -> Optional[EntityState]:
        """Read any entity (subjectively: the local store's view)."""
        return self.tx.read(entity_type, entity_key)

    # -- updates are pinned to one entity -------------------------------- #

    def insert(self, entity_type: str, entity_key: str, fields: Mapping[str, Any]) -> None:
        """Insert the step's entity."""
        self._pin(entity_type, entity_key)
        self.tx.insert(entity_type, entity_key, fields)

    def apply_delta(self, entity_type: str, entity_key: str, delta: Delta) -> None:
        """Adjust the step's entity."""
        self._pin(entity_type, entity_key)
        self.tx.apply_delta(entity_type, entity_key, delta)

    def set_fields(self, entity_type: str, entity_key: str, fields: Mapping[str, Any]) -> None:
        """Overwrite fields of the step's entity."""
        self._pin(entity_type, entity_key)
        self.tx.set_fields(entity_type, entity_key, fields)

    def tombstone(self, entity_type: str, entity_key: str) -> None:
        """Mark the step's entity deleted."""
        self._pin(entity_type, entity_key)
        self.tx.tombstone(entity_type, entity_key)

    def _pin(self, entity_type: str, entity_key: str) -> None:
        ref = (entity_type, entity_key)
        if not self.enforce_soups:
            return
        if self._pinned is None:
            self._pinned = ref
        elif self._pinned != ref:
            raise SoupsViolation(
                f"step already updates {self._pinned[0]}/{self._pinned[1]}; "
                f"cannot also update {entity_type}/{entity_key} "
                "(principle 2.6: one object per step — emit an event instead)"
            )

    # -- events & deferred work ----------------------------------------- #

    def emit(self, topic: str, payload: Mapping[str, Any]) -> None:
        """Enqueue a follow-up event (published only if the step's
        transaction commits)."""
        self.tx.enqueue(topic, payload)

    def defer(self, name: str, run: Callable, cost: float = 1.0) -> None:
        """Register a deferred secondary update (principle 2.3)."""
        self.tx.defer(name, run, cost)

    @property
    def updated_entity(self) -> Optional[tuple[str, str]]:
        """The entity this step updates (``None`` if read-only so far)."""
        return self._pinned


Handler = Callable[[StepContext], None]


@dataclass
class ProcessStep:
    """Declaration of one step: the topic that triggers it and the
    handler that runs inside its transaction."""

    name: str
    topic: str
    handler: Handler


@dataclass
class EngineStats:
    """Counters for the engine's activity."""

    steps_run: int = 0
    steps_committed: int = 0
    steps_aborted: int = 0
    soups_violations: int = 0
    handler_errors: int = 0
    batches_run: int = 0
    deadline_exceeded: int = 0
    giveups: int = 0


class ProcessEngine:
    """Schedules process steps off the event queue.

    Args:
        tx_manager: Transaction factory for the engine's serialization
            unit (one transaction per step).
        queue: The event queue steps subscribe to and emit into.  Must
            be the same queue the transaction manager's outboxes publish
            to.
        enforce_soups: Whether step contexts enforce single-object
            updates (the default; collapsed steps relax it internally).
        retry: Optional :class:`~repro.core.policy.RetryPolicy` capping
            step re-execution *at the engine*, independent of the
            queue's own redelivery cap: once a message's attempts exceed
            it, the engine acknowledges and gives up (counted in
            ``stats.giveups``) instead of burning further redeliveries.
        timeout: Optional :class:`~repro.core.policy.TimeoutPolicy`; its
            ``overall`` limit stamps a deadline on every process started
            via :meth:`start_process`, and steps propagate that deadline
            to the events they emit — a whole SOUPS chain shares one
            deadline, and a step whose triggering message has expired is
            abandoned (``stats.deadline_exceeded``) rather than run.
    """

    def __init__(
        self,
        tx_manager: TransactionManager,
        queue: ReliableQueue,
        enforce_soups: bool = True,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[TimeoutPolicy] = None,
    ):
        self.tx_manager = tx_manager
        self.queue = queue
        self.enforce_soups = enforce_soups
        self.retry_policy = retry
        self.timeout_policy = timeout
        self.stats = EngineStats()
        self._steps: dict[str, ProcessStep] = {}
        metrics = queue.metrics
        if metrics is not None:
            self._m_deadline = metrics.counter("process.deadline_exceeded")
            self._m_giveup = metrics.counter("process.giveup")
        else:
            self._m_deadline = self._m_giveup = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register_step(self, step: ProcessStep) -> None:
        """Subscribe a step to its triggering topic, behind an
        idempotent receiver (at-least-once delivery is a given)."""
        if step.name in self._steps:
            raise ValueError(f"duplicate step name {step.name!r}")
        self._steps[step.name] = step
        receiver = IdempotentReceiver(
            lambda message, bound=step: self._run_step(bound, message),
            name=step.name,
        )
        self.queue.subscribe(step.topic, receiver)

    def step(self, name: str, topic: str) -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`register_step`.

        Example:
            >>> # @engine.step("qualify", "lead.entered")
            >>> # def qualify(ctx): ...
        """

        def decorate(handler: Handler) -> Handler:
            self.register_step(ProcessStep(name=name, topic=topic, handler=handler))
            return handler

        return decorate

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def start_process(
        self,
        topic: str,
        payload: Mapping[str, Any],
        deadline: Optional[float] = None,
    ) -> Message:
        """Kick off a process by publishing its initial event.

        ``deadline`` (absolute virtual time) bounds the whole process;
        unset, the engine's ``timeout.overall`` policy supplies one.
        """
        if deadline is None and self.timeout_policy is not None:
            overall = self.timeout_policy.overall
            if overall is not None:
                deadline = self.queue.sim.now + overall
        return self.queue.enqueue(topic, payload, deadline=deadline)

    def _policy_gate(self, message: Message) -> Optional[bool]:
        """Fault-tolerance gate before a step runs.

        Returns an ack verdict when the step must *not* run (``True``
        acknowledges so the queue stops redelivering), or ``None`` to
        proceed.  No policies configured and no deadline on the message
        means two attribute checks — nothing on the hot path.
        """
        if message.deadline is not None and self.queue.sim.now > message.deadline:
            self.stats.deadline_exceeded += 1
            if self._m_deadline is not None:
                self._m_deadline.inc()
            return True  # the process missed its deadline; stop retrying
        if (
            self.retry_policy is not None
            and message.attempts > self.retry_policy.max_attempts
        ):
            self.stats.giveups += 1
            if self._m_giveup is not None:
                self._m_giveup.inc()
            return True  # engine-level retry cap reached; give up
        return None

    def _run_step(self, step: ProcessStep, message: Message) -> bool:
        """One step = one transaction; ack tracks commit."""
        verdict = self._policy_gate(message)
        if verdict is not None:
            return verdict
        self.stats.steps_run += 1
        tx = self.tx_manager.begin()
        ctx = StepContext(message, tx, enforce_soups=self.enforce_soups)
        # Events emitted by this step (published at commit through the
        # outbox) inherit the triggering message's deadline.
        previous_deadline = self.queue.ambient_deadline
        self.queue.ambient_deadline = message.deadline
        try:
            try:
                step.handler(ctx)
            except SoupsViolation:
                # A SOUPS violation is a deterministic programming error:
                # retrying cannot help, so nack — the queue's retry cap will
                # park the message on the dead-letter list for the operator.
                self.stats.soups_violations += 1
                tx.abort("SOUPS violation")
                self.stats.steps_aborted += 1
                return False
            except Exception:
                self.stats.handler_errors += 1
                tx.abort("handler error")
                self.stats.steps_aborted += 1
                return False  # nack: the queue will redeliver
            receipt = tx.commit()
            if receipt.committed:
                self.stats.steps_committed += 1
            else:
                self.stats.steps_aborted += 1
            return receipt.committed
        finally:
            self.queue.ambient_deadline = previous_deadline

    # ------------------------------------------------------------------ #
    # Collapsing optimizations (section 3.1)
    # ------------------------------------------------------------------ #

    def collapse_vertical(
        self,
        name: str,
        steps: list[ProcessStep],
        trigger_topic: str,
    ) -> ProcessStep:
        """Fuse a linear chain of steps into one step with one
        transaction.

        Events a step emits that trigger the *next* step in the chain
        are consumed internally (no queue round trip); all other emitted
        events publish normally at commit.  The fused transaction may
        update several entities — legal because everything is local to
        this serialization unit ("that single transaction would have to
        address local data only").

        Returns:
            The registered composite step.
        """
        if not steps:
            raise ValueError("collapse_vertical needs at least one step")

        def composite_handler(ctx: StepContext) -> None:
            # The composite shares one transaction; sub-contexts disable
            # SOUPS pinning (multi-entity is the point of the collapse)
            # but capture internal hand-off events.
            current_message = ctx.message
            for position, inner_step in enumerate(steps):
                inner_ctx = _CollectingContext(current_message, ctx.tx)
                inner_step.handler(inner_ctx)
                next_topic = (
                    steps[position + 1].topic if position + 1 < len(steps) else None
                )
                handoff: Optional[Message] = None
                for topic, payload in inner_ctx.collected:
                    if topic == next_topic and handoff is None:
                        handoff = Message(
                            message_id=f"{current_message.message_id}:v{position}",
                            topic=topic,
                            payload=dict(payload),
                        )
                    else:
                        ctx.tx.enqueue(topic, payload)
                if next_topic is None:
                    break
                if handoff is None:
                    break  # the chain chose not to continue
                current_message = handoff

        composite = ProcessStep(
            name=name, topic=trigger_topic, handler=composite_handler
        )
        # Composite steps are inherently multi-entity: register with a
        # context that does not enforce SOUPS.
        self._steps[name] = composite
        receiver = IdempotentReceiver(
            lambda message: self._run_collapsed(composite, message), name=name
        )
        self.queue.subscribe(trigger_topic, receiver)
        return composite

    def _run_collapsed(self, step: ProcessStep, message: Message) -> bool:
        verdict = self._policy_gate(message)
        if verdict is not None:
            return verdict
        self.stats.steps_run += 1
        tx = self.tx_manager.begin()
        ctx = StepContext(message, tx, enforce_soups=False)
        previous_deadline = self.queue.ambient_deadline
        self.queue.ambient_deadline = message.deadline
        try:
            try:
                step.handler(ctx)
            except Exception:
                self.stats.handler_errors += 1
                tx.abort("handler error")
                self.stats.steps_aborted += 1
                return False
            receipt = tx.commit()
            if receipt.committed:
                self.stats.steps_committed += 1
            else:
                self.stats.steps_aborted += 1
            return receipt.committed
        finally:
            self.queue.ambient_deadline = previous_deadline

    def collapse_horizontal(
        self,
        name: str,
        step: ProcessStep,
        batch_size: int,
    ) -> None:
        """Batch ``batch_size`` triggering events of one step into a
        single transaction.

        Messages buffer until the batch fills; the batch then runs as
        one transaction (one commit, one descriptor, one lock round)
        processing every message.  Buffered messages are acknowledged on
        arrival — a modelled simplification: the simulation measures
        throughput/latency shape, and a real implementation would hold
        the acks in the batch transaction.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        buffer: list[Message] = []

        def batched(message: Message) -> bool:
            verdict = self._policy_gate(message)
            if verdict is not None:
                return verdict
            buffer.append(message)
            if len(buffer) < batch_size:
                return True
            batch, buffer[:] = list(buffer), []
            self.stats.batches_run += 1
            self.stats.steps_run += 1
            tx = self.tx_manager.begin()
            # The batch transaction inherits the tightest deadline of its
            # constituent messages.
            deadlines = [m.deadline for m in batch if m.deadline is not None]
            previous_deadline = self.queue.ambient_deadline
            self.queue.ambient_deadline = min(deadlines) if deadlines else None
            try:
                try:
                    for buffered in batch:
                        step.handler(StepContext(buffered, tx, enforce_soups=False))
                except Exception:
                    self.stats.handler_errors += 1
                    tx.abort("handler error")
                    self.stats.steps_aborted += 1
                    return False
                receipt = tx.commit()
                if receipt.committed:
                    self.stats.steps_committed += 1
                else:
                    self.stats.steps_aborted += 1
                return receipt.committed
            finally:
                self.queue.ambient_deadline = previous_deadline

        self.queue.subscribe(step.topic, IdempotentReceiver(batched, name=name))


    # ------------------------------------------------------------------ #
    # Multi-event scheduling (section 3.1)
    # ------------------------------------------------------------------ #

    def register_join(
        self,
        name: str,
        topics: list[str],
        correlate: Callable[[Message], str],
        handler: Callable[["JoinContext"], None],
    ) -> None:
        """Register a step triggered by a *series* of events.

        Section 3.1: "Scheduling for process steps (which may be based
        on a series of events, not just a single event) is handled by
        system infrastructure."  The join step fires once every topic
        in ``topics`` has delivered a message with the same correlation
        key; the handler then runs as one ordinary (SOUPS-checked)
        transaction with all the correlated messages in hand.

        Partial arrivals are acknowledged and buffered by the engine (a
        modelled simplification — a durable implementation would stage
        them in the store; the simulation measures scheduling
        behaviour, not crash recovery of the buffer).

        Args:
            name: Step name.
            topics: The event topics that must all arrive.
            correlate: Extracts the correlation key from a message.
            handler: Runs once per completed join, receiving a
                :class:`JoinContext`.
        """
        if not topics:
            raise ValueError("register_join needs at least one topic")
        if name in self._steps:
            raise ValueError(f"duplicate step name {name!r}")
        self._steps[name] = ProcessStep(name, topics[0], lambda ctx: None)
        pending: dict[str, dict[str, Message]] = {}
        expected = set(topics)

        def arrival(topic: str, message: Message) -> bool:
            verdict = self._policy_gate(message)
            if verdict is not None:
                return verdict
            key = correlate(message)
            bucket = pending.setdefault(key, {})
            bucket[topic] = message
            if set(bucket) != expected:
                return True  # partial join: buffered, acked
            del pending[key]
            self.stats.steps_run += 1
            tx = self.tx_manager.begin()
            ctx = JoinContext(dict(bucket), tx, enforce_soups=self.enforce_soups)
            # The join transaction inherits the tightest deadline of its
            # correlated messages.
            deadlines = [m.deadline for m in bucket.values() if m.deadline is not None]
            previous_deadline = self.queue.ambient_deadline
            self.queue.ambient_deadline = min(deadlines) if deadlines else None
            try:
                try:
                    handler(ctx)
                except SoupsViolation:
                    self.stats.soups_violations += 1
                    tx.abort("SOUPS violation")
                    self.stats.steps_aborted += 1
                    return False
                except Exception:
                    self.stats.handler_errors += 1
                    tx.abort("handler error")
                    self.stats.steps_aborted += 1
                    return False
                receipt = tx.commit()
                if receipt.committed:
                    self.stats.steps_committed += 1
                else:
                    self.stats.steps_aborted += 1
                return receipt.committed
            finally:
                self.queue.ambient_deadline = previous_deadline

        for topic in topics:
            receiver = IdempotentReceiver(
                lambda message, bound_topic=topic: arrival(bound_topic, message),
                name=f"{name}:{topic}",
            )
            self.queue.subscribe(topic, receiver)

class JoinContext(StepContext):
    """Step context for multi-event (join) steps.

    ``messages`` maps each triggering topic to its message; ``message``
    (the base-class attribute) is the first topic's message for
    compatibility with helpers that expect one.
    """

    def __init__(
        self,
        messages: dict[str, Message],
        tx: Transaction,
        enforce_soups: bool = True,
    ):
        first = next(iter(messages.values()))
        super().__init__(first, tx, enforce_soups=enforce_soups)
        self.messages = messages


class _CollectingContext(StepContext):
    """A sub-context for vertical collapsing: records emitted events
    instead of enqueueing them, so the composite can route hand-offs
    internally."""

    def __init__(self, message: Message, tx: Transaction):
        super().__init__(message, tx, enforce_soups=False)
        self.collected: list[tuple[str, dict[str, Any]]] = []

    def emit(self, topic: str, payload: Mapping[str, Any]) -> None:
        self.collected.append((topic, dict(payload)))
