"""The chaos soak harness: workload + faults + invariants, one report.

A soak run is the package's end-to-end experiment:

1. build an active/active replica group (the scheme the paper's
   principles are *for*) on a lossy network;
2. drive a seeded open-loop write workload while the
   :class:`~repro.chaos.engine.ChaosEngine` injects its fault schedule;
3. quiesce — stop the chaos, heal everything, let anti-entropy repair;
4. run the invariant checkers and emit one deterministic report.

Everything draws from streams forked off the one simulator seed, so
``run_soak(SoakConfig(seed=42))`` twice yields byte-identical JSON —
the property the CI chaos step and the determinism tests assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.bench.workloads import open_loop_arrivals
from repro.chaos.engine import ChaosEngine
from repro.chaos.invariants import (
    InvariantReport,
    InvariantResult,
    check_bounded_staleness,
    check_convergence,
    check_monotonic_reads,
    check_no_lost_acked_writes,
)
from repro.chaos.profiles import ChaosProfile, get_profile
from repro.merge.deltas import Delta
from repro.obs.metrics import MetricsRegistry
from repro.replication.active_active import ActiveActiveGroup
from repro.replication.batching import BatchPolicy
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


@dataclass(frozen=True)
class SoakConfig:
    """Parameters of one chaos soak run."""

    seed: int = 0
    profile: str | ChaosProfile = "moderate"
    replicas: int = 4
    duration: float = 2000.0  # chaos + workload window
    quiesce_grace: float = 500.0  # quiet repair time after the chaos stops
    write_rate: float = 0.4  # mean writes per virtual time unit
    keys: int = 8
    key_skew: float = 0.6
    sessions: int = 4
    read_interval: float = 25.0
    poll_interval: float = 20.0  # staleness monitor cadence
    anti_entropy_interval: float = 20.0
    network_latency: float = 2.0
    staleness_bound: Optional[float] = None  # default derived from profile
    # Wire batching for the group's eager propagation.  Soaks run with
    # batching ON by default so the chaos schedule exercises the
    # frame-granular loss/duplication path end to end; set
    # ``max_batch=None`` and ``flush_interval=0`` for the legacy
    # one-event-per-frame wire behaviour.
    max_batch: Optional[int] = 32
    flush_interval: float = 5.0
    # Hot-path knobs.  Deliberately NOT part of the report's ``config``
    # dict: a cache-on soak must produce a report byte-identical to the
    # cache-off run (the cache may change performance, never answers —
    # tests/test_cache_chaos_parity.py pins this).
    read_cache: bool = False
    coalesce_window: float = 0.0

    def resolved_staleness_bound(self) -> float:
        """The bound used when none is given: the longest fault window
        plus repair time, with slack for chained/overlapping faults."""
        if self.staleness_bound is not None:
            return self.staleness_bound
        profile = get_profile(self.profile)
        return 3 * profile.max_window + 10 * self.anti_entropy_interval + 100.0


@dataclass
class _Recorder:
    """Mutable run state shared by the scheduled closures."""

    acked: int = 0
    rejected: int = 0
    reads: int = 0
    skipped_reads: int = 0
    ack_times: dict[tuple[str, int], float] = field(default_factory=dict)
    write_counts: dict[str, int] = field(default_factory=dict)
    expected: dict[tuple[str, str], dict[str, float]] = field(default_factory=dict)
    sessions: dict[str, list[float]] = field(default_factory=dict)
    staleness: list[float] = field(default_factory=list)
    vv_seen: dict[str, dict[str, int]] = field(default_factory=dict)


def run_soak(config: SoakConfig) -> dict[str, Any]:
    """Run one chaos soak and return the deterministic report dict."""
    metrics = MetricsRegistry()
    sim = Simulator(seed=config.seed, metrics=metrics)
    network = Network(sim, latency=config.network_latency)
    replica_ids = [f"r{index}" for index in range(1, config.replicas + 1)]
    group = ActiveActiveGroup(
        sim,
        network,
        replica_ids,
        anti_entropy_interval=config.anti_entropy_interval,
        gossip_fanout=2,
        batching=BatchPolicy(
            max_batch=config.max_batch, flush_interval=config.flush_interval
        ),
    )
    chaos = ChaosEngine(sim, network, group.replica_list(), profile=config.profile)
    if config.read_cache or config.coalesce_window > 0:
        from repro.lsdb.readcache import ReadCache

        for replica in group.replica_list():
            if config.read_cache:
                ReadCache.over_store(replica.store, metrics=metrics)
            if config.coalesce_window > 0:
                replica.store.enable_coalescing(window=config.coalesce_window)
    recorder = _Recorder()
    recorder.sessions = {f"s{index}": [] for index in range(1, config.sessions + 1)}

    # ---- workload: seeded open-loop writes, round-robin over replicas -- #
    workload_rng = sim.fork_rng()
    key_names = [f"k{index}" for index in range(config.keys)]
    arrivals = open_loop_arrivals(
        workload_rng,
        rate=config.write_rate,
        duration=config.duration,
        keys=key_names,
        theta=config.key_skew,
    )

    def do_write(arrival) -> None:
        replica_id = replica_ids[arrival.index % len(replica_ids)]
        replica = group.replicas[replica_id]
        if replica.crashed:
            # A real client cannot reach a crashed node: no ack, no write.
            recorder.rejected += 1
            return
        amount = 1 + arrival.index % 3  # deterministic, non-uniform amounts
        group.write_delta(
            replica_id, "counter", arrival.key, Delta.add("value", amount)
        )
        recorder.acked += 1
        count = recorder.write_counts.get(replica_id, 0) + 1
        recorder.write_counts[replica_id] = count
        recorder.ack_times[(replica_id, count)] = sim.now
        sums = recorder.expected.setdefault(("counter", arrival.key), {})
        sums["value"] = sums.get("value", 0) + amount

    for arrival in arrivals:
        sim.schedule_at(arrival.at, lambda a=arrival: do_write(a), label="soak-write")

    # ---- sessions: pinned reads of the hottest key --------------------- #
    hot_key = key_names[0]

    def do_read(session_id: str, replica_id: str) -> None:
        replica = group.replicas[replica_id]
        if replica.crashed:
            recorder.skipped_reads += 1
            return
        cache = replica.store.read_cache
        if cache is not None:
            # Revalidating lookup: watermark-equal hits only, so the
            # values a cached soak observes are the values an uncached
            # soak observes — byte parity by construction, while the
            # hit/miss machinery is still fully exercised under chaos.
            state, _ = cache.lookup("counter", hot_key, revalidate=True)
        else:
            state = replica.store.get("counter", hot_key)
        value = state.fields.get("value", 0) if state is not None else 0
        recorder.sessions[session_id].append(value)
        recorder.reads += 1

    read_horizon = config.duration + config.quiesce_grace
    for index, session_id in enumerate(sorted(recorder.sessions)):
        replica_id = replica_ids[index % len(replica_ids)]
        tick = config.read_interval * (1 + index % 2)  # desynchronised cadences
        at = tick
        while at < read_horizon:
            sim.schedule_at(
                at,
                lambda s=session_id, r=replica_id: do_read(s, r),
                label="soak-read",
            )
            at += tick

    # ---- staleness monitor: watch version vectors advance -------------- #
    def poll_staleness() -> None:
        now = sim.now
        for replica in group.replica_list():
            seen = recorder.vv_seen.setdefault(replica.node_id, {})
            vector = replica.store.version_vector.to_dict()
            for origin, covered in vector.items():
                last = seen.get(origin, 0)
                for seq in range(last + 1, covered + 1):
                    acked_at = recorder.ack_times.get((origin, seq))
                    if acked_at is not None:
                        recorder.staleness.append(now - acked_at)
                seen[origin] = max(last, covered)

    at = config.poll_interval
    while at <= read_horizon:
        sim.schedule_at(at, poll_staleness, label="soak-poll")
        at += config.poll_interval

    # ---- chaos, then quiesce ------------------------------------------- #
    chaos.inject(config.duration)
    sim.schedule_at(config.duration, chaos.quiesce, label="soak-quiesce")
    sim.run(until=read_horizon)

    # Give anti-entropy extra rounds if the grace period was not enough.
    repair_rounds = 0
    while not group.is_converged() and repair_rounds < 40:
        sim.run(until=sim.now + 5 * config.anti_entropy_interval)
        repair_rounds += 1
    poll_staleness()  # final visibility sweep after repair

    # ---- invariants ----------------------------------------------------- #
    replicas = group.replica_list()
    uncovered = sum(
        1
        for (origin, seq) in recorder.ack_times
        if any(
            recorder.vv_seen.get(replica.node_id, {}).get(origin, 0) < seq
            for replica in replicas
        )
    )
    report = InvariantReport(
        results=[
            check_convergence(replicas),
            check_no_lost_acked_writes(replicas, recorder.expected),
            check_monotonic_reads(recorder.sessions),
            check_bounded_staleness(
                recorder.staleness,
                bound=config.resolved_staleness_bound(),
                uncovered=uncovered,
            ),
        ]
    )

    profile = get_profile(config.profile)
    stats = network.stats
    return {
        "config": {
            "duration": config.duration,
            "flush_interval": config.flush_interval,
            "max_batch": config.max_batch,
            "profile": profile.name,
            "quiesce_grace": config.quiesce_grace,
            "replicas": config.replicas,
            "seed": config.seed,
            "write_rate": config.write_rate,
        },
        "converged_at": sim.now,
        "faults": chaos.schedule_summary(),
        "fault_kinds": chaos.fault_kinds,
        "invariants": report.to_dict(),
        "network": {
            "delivered": stats.delivered,
            "dropped_crashed": stats.dropped_crashed,
            "dropped_loss": stats.dropped_loss,
            "dropped_partition": stats.dropped_partition,
            "duplicated": stats.duplicated,
            "frame_payloads": stats.frame_payloads,
            "frames": stats.frames,
            "sent": stats.sent,
        },
        "ok": report.ok and len(chaos.fault_kinds) >= 4,
        "repair_rounds": repair_rounds,
        "workload": {
            "reads": recorder.reads,
            "reads_skipped": recorder.skipped_reads,
            "writes_acked": recorder.acked,
            "writes_rejected": recorder.rejected,
        },
    }


def report_json(report: dict[str, Any]) -> str:
    """Canonical JSON rendering (sorted keys, fixed separators) — the
    byte-determinism surface the tests compare."""
    return json.dumps(report, sort_keys=True, indent=2)


# ---------------------------------------------------------------------- #
# Geo soak: whole-site failover over partial replication
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class GeoSoakConfig:
    """Parameters of one geo chaos soak run.

    On top of the randomized site-level fault schedule (the
    :class:`~repro.chaos.engine.ChaosEngine` in topology mode draws
    crashes and partitions over *sites*), the geo soak injects one
    **scripted whole-site outage**: the site hosting the most shards is
    crashed for the ``[outage_start, outage_end]`` fraction of the run,
    deterministically — the headline failover scenario the availability
    probes measure.
    """

    seed: int = 0
    profile: str | ChaosProfile = "moderate"
    sites: int = 3
    replicas: int = 2
    shards: int = 6
    duration: float = 2000.0
    quiesce_grace: float = 600.0
    write_rate: float = 0.4
    keys: int = 12
    key_skew: float = 0.6
    sessions: int = 4
    read_interval: float = 25.0
    poll_interval: float = 20.0
    ship_interval: float = 10.0
    anti_entropy_interval: float = 20.0
    network_latency: float = 2.0
    wan_latency: float = 30.0
    wan_loss: float = 0.01
    staleness_bound: Optional[float] = None
    max_batch: Optional[int] = 32
    outage_start: float = 0.35  # fraction of duration
    outage_end: float = 0.55

    def site_names(self) -> list[str]:
        return [f"dc{index}" for index in range(1, self.sites + 1)]

    def resolved_staleness_bound(self) -> float:
        """Like :meth:`SoakConfig.resolved_staleness_bound` with extra
        room for the scripted outage window and the WAN latency."""
        if self.staleness_bound is not None:
            return self.staleness_bound
        profile = get_profile(self.profile)
        return (
            3 * profile.max_window
            + (self.outage_end - self.outage_start) * self.duration
            + 10 * self.anti_entropy_interval
            + 10 * self.wan_latency
            + 100.0
        )


def run_geo_soak(config: GeoSoakConfig) -> dict[str, Any]:
    """Run one geo chaos soak and return the deterministic report dict.

    The soak drives a seeded open-loop write workload against a
    partially replicated :class:`~repro.replication.geo.GeoReplicaGroup`
    while the chaos engine injects site-level faults *and* a scripted
    whole-site outage fails over the busiest datacenter.  The invariant
    sweep is placement-aware: convergence and lost-write checks run per
    shard group (a site never holds shards it was not placed), and the
    availability probes report the fraction of typed reads served from
    every site during the outage window.
    """
    from repro.core.consistency import ConsistencyLevel
    from repro.core.readpath import ConsistencyUnavailable, ReadRequest
    from repro.errors import ReplicationError
    from repro.partition.placement import PlacementPolicy
    from repro.replication.geo import GeoReplicaGroup
    from repro.sim.topology import SiteTopology, WanLink

    metrics = MetricsRegistry()
    sim = Simulator(seed=config.seed, metrics=metrics)
    network = Network(sim, latency=config.network_latency)
    site_names = config.site_names()
    topology = SiteTopology(
        site_names,
        default_link=WanLink(
            latency=config.wan_latency, loss_probability=config.wan_loss
        ),
    )
    network.attach_topology(topology)
    placement = PlacementPolicy(
        site_names, replicas=config.replicas, shards=config.shards
    )
    group = GeoReplicaGroup(
        sim,
        network,
        topology,
        placement,
        ship_interval=config.ship_interval,
        anti_entropy_interval=config.anti_entropy_interval,
        batching=BatchPolicy(max_batch=config.max_batch),
    )
    chaos = ChaosEngine(
        sim,
        network,
        list(group.gateways.values()),
        profile=config.profile,
        topology=topology,
    )
    recorder = _Recorder()
    recorder.sessions = {f"s{index}": [] for index in range(1, config.sessions + 1)}

    # ---- scripted whole-site outage: fail over the busiest site -------- #
    spread = placement.spread()
    busiest = min(
        site_names, key=lambda site: (-spread[site], site)
    )  # most shards, name as tie-break — deterministic, no RNG
    outage_at = config.outage_start * config.duration
    outage_until = config.outage_end * config.duration
    failed_gateway = group.gateways[busiest]
    sim.schedule_at(outage_at, failed_gateway.crash, label="geo-outage")
    sim.schedule_at(outage_until, failed_gateway.recover, label="geo-outage-end")

    # ---- workload: open-loop writes, coordinator-routed ---------------- #
    workload_rng = sim.fork_rng()
    key_names = [f"k{index}" for index in range(config.keys)]
    arrivals = open_loop_arrivals(
        workload_rng,
        rate=config.write_rate,
        duration=config.duration,
        keys=key_names,
        theta=config.key_skew,
    )

    def do_write(arrival) -> None:
        amount = 1 + arrival.index % 3
        try:
            replica = group.coordinator("counter", arrival.key)
        except ReplicationError:
            # Every hosting site is down: no ack, no write.
            recorder.rejected += 1
            return
        group.write_delta("counter", arrival.key, Delta.add("value", amount))
        recorder.acked += 1
        count = recorder.write_counts.get(replica.node_id, 0) + 1
        recorder.write_counts[replica.node_id] = count
        recorder.ack_times[(replica.node_id, count)] = sim.now
        sums = recorder.expected.setdefault(("counter", arrival.key), {})
        sums["value"] = sums.get("value", 0) + amount

    for arrival in arrivals:
        sim.schedule_at(arrival.at, lambda a=arrival: do_write(a), label="soak-write")

    # ---- sessions: pinned reads of the hottest key's hosting replicas -- #
    hot_key = key_names[0]
    hot_shard = placement.shard_of("counter", hot_key)
    hot_sites = placement.sites_for_shard(hot_shard)

    def do_read(session_id: str, replica) -> None:
        if group.gateways[replica.site].crashed:
            recorder.skipped_reads += 1
            return
        state = replica.store.get("counter", hot_key)
        value = state.fields.get("value", 0) if state is not None else 0
        recorder.sessions[session_id].append(value)
        recorder.reads += 1

    read_horizon = config.duration + config.quiesce_grace
    for index, session_id in enumerate(sorted(recorder.sessions)):
        site = hot_sites[index % len(hot_sites)]
        pinned = group.replicas[f"{site}/s{hot_shard}"]
        tick = config.read_interval * (1 + index % 2)
        at = tick
        while at < read_horizon:
            sim.schedule_at(
                at,
                lambda s=session_id, r=pinned: do_read(s, r),
                label="soak-read",
            )
            at += tick

    # ---- availability probes: typed reads from every site -------------- #
    availability = {
        "overall_attempted": 0,
        "overall_served": 0,
        "window_attempted": 0,
        "window_served": 0,
    }

    def probe_reads() -> None:
        in_window = outage_at <= sim.now < outage_until
        for site in site_names:
            availability["overall_attempted"] += 1
            if in_window:
                availability["window_attempted"] += 1
            try:
                group.read(
                    "counter",
                    hot_key,
                    request=ReadRequest(level=ConsistencyLevel.EVENTUAL),
                    site=site,
                )
            except ConsistencyUnavailable:
                continue
            availability["overall_served"] += 1
            if in_window:
                availability["window_served"] += 1

    # ---- staleness monitor: watch group version vectors advance -------- #
    def poll_staleness() -> None:
        now = sim.now
        for replica in group.replica_list():
            seen = recorder.vv_seen.setdefault(replica.node_id, {})
            vector = replica.store.version_vector.to_dict()
            for origin, covered in vector.items():
                last = seen.get(origin, 0)
                for seq in range(last + 1, covered + 1):
                    acked_at = recorder.ack_times.get((origin, seq))
                    if acked_at is not None:
                        recorder.staleness.append(now - acked_at)
                seen[origin] = max(last, covered)

    at = config.poll_interval
    while at <= read_horizon:
        sim.schedule_at(at, poll_staleness, label="soak-poll")
        if at < config.duration:
            sim.schedule_at(at, probe_reads, label="soak-probe")
        at += config.poll_interval

    # ---- chaos, then quiesce ------------------------------------------- #
    chaos.inject(config.duration)
    sim.schedule_at(config.duration, chaos.quiesce, label="soak-quiesce")
    sim.run(until=read_horizon)

    repair_rounds = 0
    while not group.is_converged() and repair_rounds < 40:
        sim.run(until=sim.now + 5 * config.anti_entropy_interval)
        repair_rounds += 1
    poll_staleness()

    # ---- invariants (placement-aware) ----------------------------------- #
    divergent_shards = [
        str(shard)
        for shard, members in sorted(group.groups.items())
        if not check_convergence(members).passed
    ]
    convergence_result = InvariantResult(
        name="convergence",
        passed=not divergent_shards,
        checked=len(group.replica_list()),
        detail=""
        if not divergent_shards
        else f"divergent shards: {','.join(divergent_shards)}",
    )
    lost_mismatches: list[str] = []
    lost_checked = 0
    for ref, field_sums in recorder.expected.items():
        shard = placement.shard_of(*ref)
        for replica in group.groups[shard]:
            lost_checked += 1
            state = replica.observable_state().get(ref)
            if state is None:
                lost_mismatches.append(f"{replica.node_id}:{ref[1]}:missing")
                continue
            for field_name, total in field_sums.items():
                actual = state.get(field_name, 0)
                if actual != total:
                    lost_mismatches.append(
                        f"{replica.node_id}:{ref[1]}.{field_name}="
                        f"{actual}!={total}"
                    )
    lost_result = InvariantResult(
        name="no_lost_acked_writes",
        passed=not lost_mismatches,
        checked=lost_checked,
        detail="; ".join(sorted(lost_mismatches)[:5]),
    )
    uncovered = sum(
        1
        for (origin, seq) in recorder.ack_times
        if any(
            recorder.vv_seen.get(member.node_id, {}).get(origin, 0) < seq
            for member in group.groups[int(origin.split("/s", 1)[1])]
        )
    )
    report = InvariantReport(
        results=[
            convergence_result,
            lost_result,
            check_monotonic_reads(recorder.sessions),
            check_bounded_staleness(
                recorder.staleness,
                bound=config.resolved_staleness_bound(),
                uncovered=uncovered,
            ),
        ]
    )

    profile = get_profile(config.profile)
    stats = network.stats
    window_availability = (
        availability["window_served"] / availability["window_attempted"]
        if availability["window_attempted"]
        else 1.0
    )
    overall_availability = (
        availability["overall_served"] / availability["overall_attempted"]
        if availability["overall_attempted"]
        else 1.0
    )
    return {
        "availability": {
            "overall": overall_availability,
            "window": window_availability,
            **availability,
        },
        "config": {
            "duration": config.duration,
            "max_batch": config.max_batch,
            "profile": profile.name,
            "quiesce_grace": config.quiesce_grace,
            "replicas": config.replicas,
            "seed": config.seed,
            "shards": config.shards,
            "sites": config.sites,
            "wan_latency": config.wan_latency,
            "wan_loss": config.wan_loss,
            "write_rate": config.write_rate,
        },
        "converged_at": sim.now,
        "faults": chaos.schedule_summary(),
        "fault_kinds": chaos.fault_kinds,
        "invariants": report.to_dict(),
        "network": {
            "delivered": stats.delivered,
            "dropped_crashed": stats.dropped_crashed,
            "dropped_loss": stats.dropped_loss,
            "dropped_partition": stats.dropped_partition,
            "duplicated": stats.duplicated,
            "frame_payloads": stats.frame_payloads,
            "frames": stats.frames,
            "links": stats.links_to_dict(),
            "sent": stats.sent,
        },
        "ok": report.ok and len(chaos.fault_kinds) >= 4,
        "outage": {
            "at": outage_at,
            "site": busiest,
            "until": outage_until,
        },
        "placement": {"spread": spread},
        "repair_rounds": repair_rounds,
        "workload": {
            "reads": recorder.reads,
            "reads_skipped": recorder.skipped_reads,
            "writes_acked": recorder.acked,
            "writes_rejected": recorder.rejected,
        },
    }
