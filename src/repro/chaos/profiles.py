"""Chaos intensity profiles: how often and how hard faults hit.

A :class:`ChaosProfile` is a declarative bundle of fault rates and
magnitudes; the :class:`~repro.chaos.engine.ChaosEngine` turns one into
a concrete, seeded fault schedule.  Profiles are plain frozen data so
experiments can version them alongside their results.

Every fault family is parameterised the same way: a mean interval
between windows (the engine draws exponential gaps, so windows arrive
as a Poisson process), a ``(min, max)`` uniform window duration, and —
where it applies — an intensity (loss probability, latency factor,
slowdown factor).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChaosProfile:
    """Fault rates and magnitudes for one chaos run.

    Intervals are the *mean* virtual-time gap between windows of that
    fault family; durations are uniform ``(min, max)`` window lengths.
    """

    name: str
    # Crash-restart storms: a node goes down and comes back.
    crash_interval: float = 400.0
    crash_duration: tuple[float, float] = (20.0, 60.0)
    # Rolling partitions: a random two-way split of the node set.
    partition_interval: float = 500.0
    partition_duration: tuple[float, float] = (30.0, 80.0)
    # Message-loss spikes: loss probability jumps for a window.
    loss_interval: float = 450.0
    loss_duration: tuple[float, float] = (20.0, 60.0)
    loss_probability: float = 0.3
    # Duplication spikes: at-least-once delivery turns pathological.
    duplication_interval: float = 450.0
    duplication_duration: tuple[float, float] = (20.0, 60.0)
    duplication_probability: float = 0.3
    # Delay spikes: every latency draw is multiplied for a window.
    delay_interval: float = 500.0
    delay_duration: tuple[float, float] = (20.0, 60.0)
    delay_factor: float = 6.0
    # Gray failures: one node is up but pathologically slow.
    slow_interval: float = 500.0
    slow_duration: tuple[float, float] = (30.0, 80.0)
    slow_factor: float = 10.0

    @property
    def max_window(self) -> float:
        """The longest single fault window this profile can produce
        (used to size staleness bounds and quiesce grace periods)."""
        return max(
            self.crash_duration[1],
            self.partition_duration[1],
            self.loss_duration[1],
            self.duplication_duration[1],
            self.delay_duration[1],
            self.slow_duration[1],
        )


#: The named profiles the CLI and the cluster builder accept.
PROFILES: dict[str, ChaosProfile] = {
    "light": ChaosProfile(
        name="light",
        crash_interval=900.0,
        partition_interval=1100.0,
        loss_interval=1000.0,
        loss_probability=0.15,
        duplication_interval=1000.0,
        duplication_probability=0.15,
        delay_interval=1100.0,
        delay_factor=3.0,
        slow_interval=1100.0,
        slow_factor=5.0,
    ),
    "moderate": ChaosProfile(name="moderate"),
    "heavy": ChaosProfile(
        name="heavy",
        crash_interval=250.0,
        crash_duration=(30.0, 90.0),
        partition_interval=300.0,
        partition_duration=(40.0, 110.0),
        loss_interval=280.0,
        loss_probability=0.5,
        duplication_interval=280.0,
        duplication_probability=0.5,
        delay_interval=300.0,
        delay_factor=10.0,
        slow_interval=300.0,
        slow_factor=20.0,
    ),
}


def get_profile(profile: str | ChaosProfile) -> ChaosProfile:
    """Resolve a profile by name (or pass a profile through).

    Raises:
        ValueError: If ``profile`` is an unknown name.
    """
    if isinstance(profile, ChaosProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {profile!r}; "
            f"expected one of {sorted(PROFILES)}"
        ) from None
