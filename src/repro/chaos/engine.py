"""The chaos engine: seeded fault schedules over a simulated cluster.

Principle 2.11 says the show must go on — the system must keep serving
and converge once conditions allow.  The chaos engine operationalises
that as a repeatable experiment: it pre-generates a *deterministic*
schedule of fault windows from a seeded random stream (crash-restart
storms, rolling partitions, message-loss spikes, duplication spikes,
delay spikes and gray failures), arms them on the simulator, and can
quiesce — revert every knob and heal every failure — so invariant
checkers can ask "did the system converge, and did it lose anything?"

Determinism contract: the schedule is fully drawn at :meth:`plan` time
in a fixed fault-family order from one forked RNG, so the same seed and
profile always produce byte-identical schedules no matter how the run
interleaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.chaos.profiles import ChaosProfile, get_profile
from repro.sim.failure import FailureInjector
from repro.sim.network import Network, Node
from repro.sim.rng import SeededRNG
from repro.sim.scheduler import Simulator

#: Generation order of fault families — fixed, part of the determinism
#: contract (reordering would shift every RNG draw).
FAULT_KINDS = ("crash", "partition", "loss", "duplication", "delay", "slow")


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault window."""

    at: float
    kind: str  # one of FAULT_KINDS
    duration: float
    detail: str

    @property
    def until(self) -> float:
        return self.at + self.duration


class ChaosEngine:
    """Composes randomized fault schedules over a simulator/network.

    Args:
        sim: The simulator.
        network: The network whose knobs and nodes the faults hit.
        nodes: The nodes eligible for crashes/slowdowns (default: every
            node registered on the network at :meth:`plan` time).
        profile: A :class:`~repro.chaos.profiles.ChaosProfile` or the
            name of a built-in one (``"light"``/``"moderate"``/
            ``"heavy"``).
        rng: Optional private random stream; default is forked from the
            simulator so the simulator seed pins the schedule.
        injector: Optional :class:`~repro.sim.failure.FailureInjector`
            to share a failure timeline with scripted injections.
        topology: Optional :class:`~repro.sim.topology.SiteTopology`.
            When given, crash and partition faults are drawn over
            *sites* instead of nodes — a crash window takes every node
            of one site down (whole-datacenter outage) and a partition
            window cuts one site off from the rest.  Site details are
            encoded ``"site:<name>"``.  Without a topology the drawing
            is byte-identical to before (no extra RNG draws).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: Optional[list[Node]] = None,
        profile: str | ChaosProfile = "moderate",
        rng: Optional[SeededRNG] = None,
        injector: Optional[FailureInjector] = None,
        topology=None,
    ):
        self.sim = sim
        self.network = network
        self._nodes = list(nodes) if nodes is not None else None
        self.topology = topology
        self.profile = get_profile(profile)
        self._rng = rng if rng is not None else sim.fork_rng()
        self.injector = injector if injector is not None else FailureInjector(sim, network)
        self.schedule: list[FaultEvent] = []
        self._handles: list = []
        # Reference counts for overlapping windows of the same knob.
        self._spike_depth = {"loss": 0, "duplication": 0, "delay": 0}
        self._crash_depth: dict[str, int] = {}
        self._slow_depth: dict[str, int] = {}
        self._baseline_loss = network.loss_probability
        self._baseline_duplication = network.duplication_probability
        self._baseline_latency_factor = network.latency_factor
        self._m_faults = (
            sim.metrics.counter("chaos.faults_injected")
            if sim.metrics is not None
            else None
        )

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def _eligible_nodes(self) -> list[str]:
        nodes = self._nodes if self._nodes is not None else list(self.network.nodes.values())
        return sorted(node.node_id for node in nodes)

    def plan(self, horizon: float) -> list[FaultEvent]:
        """Draw the full fault schedule for ``[0, horizon)``.

        Idempotent per engine: planning twice raises, because the RNG
        draws would differ and silently break determinism.
        """
        if self.schedule:
            raise RuntimeError("chaos schedule already planned")
        node_ids = self._eligible_nodes()
        if len(node_ids) < 2:
            raise ValueError("chaos needs at least two nodes to be interesting")
        profile = self.profile
        events: list[FaultEvent] = []
        for kind in FAULT_KINDS:
            interval = getattr(profile, self._field(kind, "interval"))
            lo, hi = getattr(profile, self._field(kind, "duration"))
            at = self._rng.exponential(interval)
            while at < horizon:
                duration = self._rng.uniform(lo, hi)
                events.append(
                    FaultEvent(
                        at=at,
                        kind=kind,
                        duration=duration,
                        detail=self._draw_detail(kind, node_ids),
                    )
                )
                at += self._rng.exponential(interval)
        events.sort(key=lambda event: (event.at, event.kind, event.detail))
        self.schedule = events
        return events

    @staticmethod
    def _field(kind: str, suffix: str) -> str:
        prefix = {"loss": "loss", "duplication": "duplication"}.get(kind, kind)
        return f"{prefix}_{suffix}"

    def _draw_detail(self, kind: str, node_ids: list[str]) -> str:
        if self.topology is not None and kind in ("crash", "partition"):
            # Geo mode: the failure unit is the datacenter.  One draw
            # per window, over the sorted site names.
            return f"site:{self._rng.choice(list(self.topology.sites))}"
        if kind in ("crash", "slow"):
            return self._rng.choice(node_ids)
        if kind == "partition":
            shuffled = list(node_ids)
            self._rng.shuffle(shuffled)
            cut = self._rng.randint(1, len(shuffled) - 1)
            left, right = sorted(shuffled[:cut]), sorted(shuffled[cut:])
            return f"{','.join(left)}|{','.join(right)}"
        return ""  # knob spikes carry no per-event detail

    # ------------------------------------------------------------------ #
    # Arming
    # ------------------------------------------------------------------ #

    def inject(self, horizon: float) -> list[FaultEvent]:
        """Plan (if not yet planned) and arm every fault window."""
        if not self.schedule:
            self.plan(horizon)
        for event in self.schedule:
            self._arm(event)
        return self.schedule

    def _arm(self, event: FaultEvent) -> None:
        self._handles.append(
            self.sim.schedule_at(
                event.at, lambda e=event: self._apply(e), label=f"chaos:{event.kind}"
            )
        )
        self._handles.append(
            self.sim.schedule_at(
                event.until,
                lambda e=event: self._revert(e),
                label=f"chaos-end:{event.kind}",
            )
        )

    def _apply(self, event: FaultEvent) -> None:
        if self._m_faults is not None:
            self._m_faults.inc()
        kind = event.kind
        if kind == "crash":
            depth = self._crash_depth.get(event.detail, 0)
            self._crash_depth[event.detail] = depth + 1
            if depth == 0:
                for node in self._detail_nodes(event.detail):
                    self.injector._crash(node)
        elif kind == "partition":
            if event.detail.startswith("site:"):
                # Cut one whole site off from every other assigned node.
                groups = self.topology.site_partition_groups(event.detail[5:])
            else:
                groups = [part.split(",") for part in event.detail.split("|")]
            # Route through the injector so overlapping windows restore
            # correctly (the partition-stack semantics).
            self.injector.partition_window(groups, self.sim.now, event.duration)
        elif kind == "slow":
            depth = self._slow_depth.get(event.detail, 0)
            self._slow_depth[event.detail] = depth + 1
            if depth == 0:
                self.network.slow_nodes[event.detail] = self.profile.slow_factor
        else:
            depth = self._spike_depth[kind]
            self._spike_depth[kind] = depth + 1
            if depth == 0:
                if kind == "loss":
                    self.network.loss_probability = max(
                        self._baseline_loss, self.profile.loss_probability
                    )
                elif kind == "duplication":
                    self.network.duplication_probability = max(
                        self._baseline_duplication,
                        self.profile.duplication_probability,
                    )
                elif kind == "delay":
                    self.network.latency_factor = (
                        self._baseline_latency_factor * self.profile.delay_factor
                    )

    def _revert(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "crash":
            depth = self._crash_depth.get(event.detail, 0) - 1
            self._crash_depth[event.detail] = max(0, depth)
            if depth == 0:
                for node in self._detail_nodes(event.detail):
                    self.injector._recover(node)
        elif kind == "partition":
            pass  # partition_window scheduled its own heal
        elif kind == "slow":
            depth = self._slow_depth.get(event.detail, 0) - 1
            self._slow_depth[event.detail] = max(0, depth)
            if depth == 0:
                self.network.slow_nodes.pop(event.detail, None)
        else:
            depth = self._spike_depth[kind] - 1
            self._spike_depth[kind] = max(0, depth)
            if depth == 0:
                if kind == "loss":
                    self.network.loss_probability = self._baseline_loss
                elif kind == "duplication":
                    self.network.duplication_probability = self._baseline_duplication
                elif kind == "delay":
                    self.network.latency_factor = self._baseline_latency_factor

    def _detail_nodes(self, detail: str) -> list[Node]:
        """The nodes a crash detail names: one node, or — for a
        ``"site:<name>"`` detail — every node assigned to the site."""
        if detail.startswith("site:"):
            return [
                self.network.nodes[node_id]
                for node_id in self.topology.nodes_of(detail[len("site:"):])
                if node_id in self.network.nodes
            ]
        return [self.network.nodes[detail]]

    # ------------------------------------------------------------------ #
    # Quiesce
    # ------------------------------------------------------------------ #

    def quiesce(self) -> None:
        """Stop the chaos and restore benign conditions.

        Cancels every pending window, recovers crashed nodes, heals all
        partitions and resets every network knob to its baseline — the
        precondition for checking convergence invariants.
        """
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()
        for detail, depth in self._crash_depth.items():
            if depth > 0:
                for node in self._detail_nodes(detail):
                    self.injector._recover(node)
        self._crash_depth.clear()
        self.injector.heal_all()
        self.network.loss_probability = self._baseline_loss
        self.network.duplication_probability = self._baseline_duplication
        self.network.latency_factor = self._baseline_latency_factor
        self.network.slow_nodes.clear()
        self._slow_depth.clear()
        for kind in self._spike_depth:
            self._spike_depth[kind] = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def fault_kinds(self) -> list[str]:
        """The distinct fault kinds in the planned schedule, sorted."""
        return sorted({event.kind for event in self.schedule})

    def schedule_summary(self) -> dict[str, int]:
        """Planned window counts per fault kind (deterministic order)."""
        counts: dict[str, int] = {}
        for kind in FAULT_KINDS:
            count = sum(1 for event in self.schedule if event.kind == kind)
            if count:
                counts[kind] = count
        return counts
