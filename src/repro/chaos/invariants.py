"""Invariant checkers: what must still be true after the chaos.

Each checker inspects the quiesced system and returns an
:class:`InvariantResult`; a :class:`InvariantReport` aggregates them
into a deterministic, JSON-serialisable verdict (sorted keys, stable
ordering — the byte-determinism contract the soak harness asserts).

The four invariants mirror the paper's promises:

* **convergence** — "convergence to equivalent states at all replicas
  if there were no further transactions" (section 1);
* **no lost acknowledged writes** — a subjectively committed write
  survives loss, duplication, crashes and partitions (at-least-once
  shipping + idempotent, per-origin-ordered apply);
* **monotonic reads per session** — a session pinned to one replica
  never sees state move backwards;
* **bounded staleness** — every acknowledged write becomes visible
  everywhere within a bound once conditions allow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.replication.replica import ReplicaNode


@dataclass(frozen=True)
class InvariantResult:
    """Verdict of one invariant checker."""

    name: str
    passed: bool
    checked: int  # how many items the checker examined
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "checked": self.checked,
            "detail": self.detail,
            "name": self.name,
            "passed": self.passed,
        }


@dataclass
class InvariantReport:
    """All invariant verdicts for one soak run."""

    results: list[InvariantResult]

    @property
    def ok(self) -> bool:
        return all(result.passed for result in self.results)

    def failed(self) -> list[InvariantResult]:
        return [result for result in self.results if not result.passed]

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "results": [
                result.to_dict()
                for result in sorted(self.results, key=lambda r: r.name)
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, fixed separators — byte-identical
        across runs with the same seed."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------- #
# Checkers
# ---------------------------------------------------------------------- #


def check_convergence(replicas: Sequence[ReplicaNode]) -> InvariantResult:
    """All replicas expose identical observable state."""
    reference = replicas[0].observable_state()
    divergent = [
        replica.node_id
        for replica in replicas[1:]
        if replica.observable_state() != reference
    ]
    return InvariantResult(
        name="convergence",
        passed=not divergent,
        checked=len(replicas),
        detail="" if not divergent else f"divergent: {','.join(divergent)}",
    )


def check_no_lost_acked_writes(
    replicas: Sequence[ReplicaNode],
    expected: Mapping[tuple[str, str], Mapping[str, float]],
) -> InvariantResult:
    """Every acknowledged (delta) write is reflected in every replica.

    ``expected`` maps ``(entity_type, entity_key)`` to the field sums
    the acknowledged deltas add up to.  Duplicated deliveries must not
    inflate the sums (idempotence) and lost deliveries must have been
    repaired (anti-entropy), so equality in both directions is the
    check.
    """
    mismatches: list[str] = []
    for replica in replicas:
        state = replica.observable_state()
        for ref, field_sums in expected.items():
            fields = state.get(ref)
            if fields is None:
                mismatches.append(f"{replica.node_id}:{ref[1]}:missing")
                continue
            for field_name, total in field_sums.items():
                actual = fields.get(field_name, 0)
                if actual != total:
                    mismatches.append(
                        f"{replica.node_id}:{ref[1]}.{field_name}="
                        f"{actual}!={total}"
                    )
    return InvariantResult(
        name="no_lost_acked_writes",
        passed=not mismatches,
        checked=len(expected) * len(replicas),
        detail="; ".join(sorted(mismatches)[:5]),
    )


def check_monotonic_reads(
    sessions: Mapping[str, Sequence[float]],
) -> InvariantResult:
    """Each session's observed values never decrease.

    ``sessions`` maps a session id to the sequence of values it read
    (from its pinned replica) over the run.
    """
    violations: list[str] = []
    reads = 0
    for session_id in sorted(sessions):
        values = sessions[session_id]
        reads += len(values)
        for earlier, later in zip(values, values[1:]):
            if later < earlier:
                violations.append(f"{session_id}:{earlier}->{later}")
                break
    return InvariantResult(
        name="monotonic_reads",
        passed=not violations,
        checked=reads,
        detail="; ".join(violations[:5]),
    )


def check_bounded_staleness(
    staleness_samples: Sequence[float],
    bound: float,
    uncovered: int = 0,
) -> InvariantResult:
    """No acknowledged write took longer than ``bound`` virtual time to
    become visible at every replica.

    ``staleness_samples`` are the observed ack-to-visible lags (one per
    write per observer); ``uncovered`` counts acknowledged writes some
    replica never saw at all — each is an automatic violation.
    """
    worst = max(staleness_samples) if staleness_samples else 0.0
    passed = uncovered == 0 and worst <= bound
    detail = f"max={worst:.1f} bound={bound:.1f}"
    if uncovered:
        detail += f" uncovered={uncovered}"
    return InvariantResult(
        name="bounded_staleness",
        passed=passed,
        checked=len(staleness_samples),
        detail=detail,
    )
