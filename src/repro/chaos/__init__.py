"""Chaos/resilience subsystem: seeded fault schedules + invariants.

"The show must go on" (principle 2.11) is a testable claim: inject
crashes, partitions, loss, duplication, delay spikes and gray failures
from a *seeded* schedule, quiesce, and assert that the system converged
without losing an acknowledged write.  This package supplies the fault
engine (:class:`ChaosEngine`), the intensity profiles
(:class:`ChaosProfile`), the invariant checkers, and the end-to-end
soak harness (:func:`run_soak`) the CI chaos step runs.
"""

from repro.chaos.engine import FAULT_KINDS, ChaosEngine, FaultEvent
from repro.chaos.invariants import (
    InvariantReport,
    InvariantResult,
    check_bounded_staleness,
    check_convergence,
    check_monotonic_reads,
    check_no_lost_acked_writes,
)
from repro.chaos.profiles import PROFILES, ChaosProfile, get_profile
from repro.chaos.soak import (
    GeoSoakConfig,
    SoakConfig,
    report_json,
    run_geo_soak,
    run_soak,
)

__all__ = [
    "FAULT_KINDS",
    "PROFILES",
    "ChaosEngine",
    "ChaosProfile",
    "FaultEvent",
    "GeoSoakConfig",
    "InvariantReport",
    "InvariantResult",
    "SoakConfig",
    "check_bounded_staleness",
    "check_convergence",
    "check_monotonic_reads",
    "check_no_lost_acked_writes",
    "get_profile",
    "report_json",
    "run_geo_soak",
    "run_soak",
]
