"""The cluster facade: one fluent builder for a whole simulated system.

Standing up an experiment used to mean hand-wiring a
:class:`~repro.sim.scheduler.Simulator`, a
:class:`~repro.sim.network.Network`, replica stores, a replication
scheme and (since the observability subsystem) a tracer and metrics
registry — five to ten lines of boilerplate repeated in every example,
benchmark and test.  The builder collapses that to declarations::

    from repro import Cluster

    cluster = (
        Cluster.build(seed=7)
        .with_network(latency=5.0)
        .with_replicas(2, mode="async", ship_interval=10.0)
        .with_tracing()
        .create()
    )
    cluster.replication.write_insert("order", "o-1", {"total": 9})
    cluster.sim.run(until=30.0)
    print(cluster.timeline())

Every component the builder creates inherits the cluster's tracer and
metrics registry, so ``with_tracing()`` is the only switch between "no
observability overhead" and "every hop traced".  The builder is a
facade only — each ``with_*`` call maps onto the public constructor of
the component it creates, and hand-wiring those constructors remains
fully supported.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.compensation import CompensationManager
from repro.core.constraints import ConstraintManager
from repro.core.transaction import TransactionManager
from repro.lsdb.store import LSDBStore
from repro.obs.export import render_timeline, trace_payload
from repro.obs.metrics import MetricsRegistry, MetricsReport
from repro.obs.trace import Tracer
from repro.partition.rebalance import RebalanceRun, Rebalancer
from repro.partition.relocation import EntityMover
from repro.partition.ring import ConsistentHashRing, RebalancePlanner
from repro.partition.router import DynamicDirectory
from repro.partition.units import SerializationUnit
from repro.queues.reliable import ReliableQueue
from repro.replication.active_active import ActiveActiveGroup
from repro.replication.asynchronous import AsyncPrimaryBackup
from repro.replication.batching import BatchPolicy
from repro.replication.master_slave import MasterSlaveGroup
from repro.replication.quorum import QuorumGroup
from repro.replication.synchronous import SyncPrimaryBackup
from repro.replication.warehouse import WarehouseExtract
from repro.sim.network import Network
from repro.sim.scheduler import Simulator

#: Replication modes ``with_replicas`` understands.
REPLICATION_MODES = ("async", "sync", "active_active", "master_slave", "quorum")


class Cluster:
    """A built simulated system: simulator, network, stores, schemes.

    Instances come from :meth:`Cluster.build` (the
    :class:`ClusterBuilder`); the attributes are the wired components,
    all optional except ``sim``:

    Attributes:
        sim: The simulator everything runs on.
        network: The message network (``None`` for single-node setups).
        tracer: The shared tracer (``None`` unless ``with_tracing``).
        metrics: The shared registry (``None`` unless ``with_tracing``).
        replication: The replication scheme object, as built by its own
            constructor (:class:`AsyncPrimaryBackup`,
            :class:`MasterSlaveGroup`, ...).
        store: The primary application store: the standalone store if
            one was requested, else the scheme's primary/master store.
        queue: The reliable queue, if requested.
        units: Serialization units by name, if requested.
        ring: The consistent-hash membership (``with_ring``); after a
            ``scale_out``/``scale_in`` this is the *target* membership —
            the directory keeps routing correctly mid-rebalance.
        directory: The dynamic directory over the ring (``with_ring``).
        mover: The per-entity relocation engine (``with_ring``).
        rebalancer: The bulk rebalance executor (``with_ring``).
        retired_units: Units scaled in and drained; kept for their audit
            history (tombstoned ``migrated-out`` events stay readable).
        warehouse: The warehouse extract, if requested.
        transactions: The transaction manager, if requested.
        constraints: The constraint manager, if requested.
        compensation: The compensation manager, if requested.
        chaos: The chaos engine, if requested (``with_chaos``).
        retry_policy / timeout_policy: The cluster-wide fault-tolerance
            defaults declared via ``with_policies`` (``None`` when
            unset; components built with explicit policies keep them).
        topology: The :class:`~repro.sim.topology.SiteTopology`, if the
            cluster is geo-distributed (``with_topology``).
        placement: The :class:`~repro.partition.placement.PlacementPolicy`
            mapping shards to sites (``with_placement``); together with
            the topology this makes ``replication`` a
            :class:`~repro.replication.geo.GeoReplicaGroup`.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.network: Optional[Network] = None
        self.tracer: Optional[Tracer] = None
        self.metrics: Optional[MetricsRegistry] = None
        self.replication: Any = None
        self.store: Optional[LSDBStore] = None
        self.queue: Optional[ReliableQueue] = None
        self.units: dict[str, SerializationUnit] = {}
        self.ring: Optional[ConsistentHashRing] = None
        self.directory: Optional[DynamicDirectory] = None
        self.mover: Optional[EntityMover] = None
        self.rebalancer: Optional[Rebalancer] = None
        self.retired_units: dict[str, SerializationUnit] = {}
        self.warehouse: Optional[WarehouseExtract] = None
        self.transactions: Optional[TransactionManager] = None
        self.constraints: Optional[ConstraintManager] = None
        self.compensation: Optional[CompensationManager] = None
        self.chaos: Any = None  # ChaosEngine when with_chaos() was declared
        self.retry_policy: Any = None  # cluster-wide defaults (with_policies)
        self.timeout_policy: Any = None
        self.batching: Optional[BatchPolicy] = None  # with_batching default
        self.front_door: Any = None  # FrontDoor when with_front_door()
        self.topology: Any = None  # SiteTopology when with_topology()
        self.placement: Any = None  # PlacementPolicy when with_placement()
        self.read_caches: list[Any] = []  # ReadCaches when with_read_cache()
        self.read_cache: Any = None  # the primary store's cache, if any

    @staticmethod
    def build(seed: int = 0) -> "ClusterBuilder":
        """Start declaring a cluster (the recommended entry point)."""
        return ClusterBuilder(seed=seed)

    # ------------------------------------------------------------------ #
    # Unified read/write over whatever was built
    # ------------------------------------------------------------------ #

    def read(
        self,
        entity_type: str,
        entity_key: str,
        *,
        request: Any = None,
        site: Optional[str] = None,
    ) -> Optional[Any]:
        """Canonical read against the cluster's primary read surface.

        With a typed ``request`` (:class:`~repro.core.readpath.ReadRequest`)
        the read goes through the front door when one was built
        (``with_front_door``) — admission, backpressure, breakers and
        the degrade ladder all apply, and the answer is a
        :class:`~repro.core.readpath.ReadResult` stamped with the
        delivered consistency, measured staleness, and — on a
        geo-replicated cluster — the site that served it.  Without a
        front door the typed read goes straight to the replication
        scheme (or the standalone store).  The bare legacy call returns
        the raw state.

        Args:
            site: On a geo cluster, the datacenter the caller is in;
                reads prefer replicas local to it.  Ignored (and
                rejected when the cluster has no topology) otherwise.
        """
        from repro.core.readpath import read_from

        if site is not None and self.placement is None:
            raise ValueError("site= requires a geo cluster (with_topology)")
        if request is not None and self.front_door is not None:
            return self.front_door.read(entity_type, entity_key, request=request)
        surface = self.replication if self.replication is not None else self.store
        if surface is None:
            raise RuntimeError("cluster has no readable surface")
        if site is not None:
            return surface.read(entity_type, entity_key, request=request, site=site)
        return read_from(surface, entity_type, entity_key, request=request)

    # ------------------------------------------------------------------ #
    # Elasticity (ring membership changes)
    # ------------------------------------------------------------------ #

    def scale_out(
        self,
        unit: str,
        on_done: Optional[Callable[[RebalanceRun], None]] = None,
        **unit_options: Any,
    ) -> RebalanceRun:
        """Add a unit to the ring and start draining keys onto it.

        Returns the live :class:`~repro.partition.rebalance.RebalanceRun`
        immediately — batches execute as the simulator runs (call
        ``run.wait()`` to drive the simulator to completion).  Only the
        keys the new membership assigns to ``unit`` move (~``1/(N+1)``
        of the data); the directory keeps every entity reachable
        throughout, and once the plan drains the ring becomes the
        directory's base router and the per-entity overrides compact
        away.

        Args:
            unit: Name of the new serialization unit.
            on_done: Called once with the finished run (e.g. to chain
                staged scale-out steps).
            **unit_options: Forwarded to :class:`SerializationUnit`
                (``local_commit_cost``, ``snapshot_interval``).
        """
        if self.ring is None or self.rebalancer is None:
            raise RuntimeError("cluster built without with_ring()")
        if unit in self.units:
            raise ValueError(f"unit {unit!r} already in the cluster")
        self.units[unit] = SerializationUnit(unit, sim=self.sim, **unit_options)
        self.mover.units[unit] = self.units[unit]
        new_ring = self.ring.with_unit(unit)
        plan = RebalancePlanner(self.directory, new_ring).plan_from_units(
            self.mover.units
        )
        run = self.rebalancer.execute(plan, new_router=new_ring, on_done=on_done)
        self.ring = new_ring
        return run

    def scale_in(
        self,
        unit: str,
        on_done: Optional[Callable[[RebalanceRun], None]] = None,
    ) -> RebalanceRun:
        """Remove a unit from the ring, draining its keys first.

        Every entity the unit owns moves to the unit inheriting its ring
        arcs; nothing else moves.  When the drain completes the unit is
        retired into :attr:`retired_units` (its store keeps the
        tombstoned audit history).  Returns the live run.
        """
        if self.ring is None or self.rebalancer is None:
            raise RuntimeError("cluster built without with_ring()")
        if unit not in self.units:
            raise KeyError(f"unknown unit {unit!r}")
        new_ring = self.ring.without_unit(unit)
        plan = RebalancePlanner(self.directory, new_ring).plan_from_units(
            self.mover.units
        )

        def retire(run: RebalanceRun) -> None:
            # The mover keeps the unit: pinned stragglers (exhausted
            # retries) and audit reads still resolve through it.
            self.retired_units[unit] = self.units.pop(unit)
            if on_done is not None:
                on_done(run)

        run = self.rebalancer.execute(plan, new_router=new_ring, on_done=retire)
        self.ring = new_ring
        return run

    # ------------------------------------------------------------------ #
    # Observability views
    # ------------------------------------------------------------------ #

    def timeline(self, trace_id: Optional[str] = None) -> str:
        """Text timeline of the cluster's traces (see
        :func:`repro.obs.export.render_timeline`)."""
        if self.tracer is None:
            raise RuntimeError("cluster built without with_tracing()")
        return render_timeline(self.tracer, trace_id)

    def trace_payload(self, **meta: Any) -> dict[str, Any]:
        """The exportable trace log (schema-pinned JSON shape)."""
        if self.tracer is None:
            raise RuntimeError("cluster built without with_tracing()")
        return trace_payload(self.tracer, meta)

    def metrics_report(self) -> MetricsReport:
        """A deterministic snapshot of every registered metric."""
        if self.metrics is None:
            raise RuntimeError("cluster built without with_tracing()")
        return self.metrics.report()


class ClusterBuilder:
    """Fluent declaration of a cluster; ``create()`` wires it.

    Every ``with_*`` method returns the builder, and declaration order
    does not matter — ``create()`` builds components in dependency
    order (observability, simulator, network, stores, schemes).
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._tracing = False
        self._tracer: Optional[Tracer] = None
        self._metrics: Optional[MetricsRegistry] = None
        self._network_kwargs: Optional[dict[str, Any]] = None
        self._replica_count = 0
        self._replica_mode = ""
        self._replica_kwargs: dict[str, Any] = {}
        self._unit_names: tuple[str, ...] = ()
        self._ring_kwargs: Optional[dict[str, Any]] = None
        self._store_kwargs: Optional[dict[str, Any]] = None
        self._queue_kwargs: Optional[dict[str, Any]] = None
        self._warehouse_kwargs: Optional[dict[str, Any]] = None
        self._transactions_kwargs: Optional[dict[str, Any]] = None
        self._constraint_objs: Optional[tuple[Any, ...]] = None
        self._with_compensation = False
        self._chaos_kwargs: Optional[dict[str, Any]] = None
        self._retry_policy: Any = None
        self._timeout_policy: Any = None
        self._batching: Optional[BatchPolicy] = None
        self._front_door_kwargs: Optional[dict[str, Any]] = None
        self._topology_kwargs: Optional[dict[str, Any]] = None
        self._placement_kwargs: Optional[dict[str, Any]] = None
        self._read_cache_kwargs: Optional[dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # Declarations
    # ------------------------------------------------------------------ #

    def with_tracing(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "ClusterBuilder":
        """Attach causal tracing and a metrics registry to everything
        the builder creates (defaults are freshly constructed)."""
        self._tracing = True
        self._tracer = tracer
        self._metrics = metrics
        return self

    def with_network(
        self,
        latency: float | Callable[..., float] = 1.0,
        loss_probability: float = 0.0,
    ) -> "ClusterBuilder":
        """Add a message network (implied by ``with_replicas``)."""
        self._network_kwargs = {
            "latency": latency,
            "loss_probability": loss_probability,
        }
        return self

    def with_replicas(
        self, count: int, mode: str = "async", **options: Any
    ) -> "ClusterBuilder":
        """Add a replication scheme over ``count`` replicas.

        Args:
            count: Number of replicas (including the primary/master).
            mode: One of :data:`REPLICATION_MODES`.  ``"async"`` builds
                an :class:`AsyncPrimaryBackup` pair for ``count == 2``
                and generalises to a :class:`MasterSlaveGroup` (same
                asynchronous shipping, one master, many backups) for
                larger counts.
            **options: Forwarded to the scheme constructor
                (``ship_interval``, ``anti_entropy_interval``,
                ``write_quorum``, ...).
        """
        if mode not in REPLICATION_MODES:
            raise ValueError(
                f"unknown replication mode {mode!r}; "
                f"expected one of {REPLICATION_MODES}"
            )
        if count < 2:
            raise ValueError(f"replication needs at least 2 replicas, got {count}")
        self._replica_count = count
        self._replica_mode = mode
        self._replica_kwargs = dict(options)
        return self

    def with_partition_units(self, *names: str) -> "ClusterBuilder":
        """Add named serialization units (separate logs, principle 2.5)."""
        if not names:
            raise ValueError("with_partition_units needs at least one name")
        self._unit_names = tuple(names)
        return self

    def with_ring(
        self,
        *names: str,
        vnodes: int = 64,
        batch_size: int = 16,
        batch_interval: float = 1.0,
    ) -> "ClusterBuilder":
        """Add serialization units routed by a consistent-hash ring.

        Implies the units (like ``with_partition_units``) plus the whole
        elasticity stack: a :class:`ConsistentHashRing` over the names,
        a :class:`DynamicDirectory` on top of it, an :class:`EntityMover`
        and a :class:`~repro.partition.rebalance.Rebalancer` — which is
        what makes ``Cluster.scale_out`` / ``Cluster.scale_in`` work.

        Args:
            names: Initial unit names (at least one).
            vnodes: Virtual nodes per unit on the ring.
            batch_size: Entities the rebalancer moves per batch.
            batch_interval: Virtual time between rebalance batches.
        """
        if not names:
            raise ValueError("with_ring needs at least one unit name")
        self._ring_kwargs = {
            "names": tuple(names),
            "vnodes": vnodes,
            "batch_size": batch_size,
            "batch_interval": batch_interval,
        }
        return self

    def with_store(self, name: str = "store", origin: str = "local", **kwargs: Any) -> "ClusterBuilder":
        """Add a standalone (unreplicated) store."""
        self._store_kwargs = {"name": name, "origin": origin, **kwargs}
        return self

    def with_queue(self, name: str = "queue", **kwargs: Any) -> "ClusterBuilder":
        """Add a reliable at-least-once queue."""
        self._queue_kwargs = {"name": name, **kwargs}
        return self

    def with_warehouse(self, interval: float = 100.0, **kwargs: Any) -> "ClusterBuilder":
        """Add a periodic warehouse extract of the primary store."""
        self._warehouse_kwargs = {"interval": interval, **kwargs}
        return self

    def with_read_cache(
        self,
        capacity: int = 512,
        hot_capacity: int = 16,
        coalesce_window: float = 0.0,
        coalesce_max_batch: int = 64,
    ) -> "ClusterBuilder":
        """Put a watermark-validated read cache in front of every store
        (:class:`~repro.lsdb.readcache.ReadCache`) — the skew-aware hot
        path of DESIGN.md section 16.

        Every store built by the cluster (primary, backups, slaves,
        replicas, the warehouse extract) gets its own cache; typed
        reads through :meth:`Cluster.read` and the front door's
        BOUNDED/EVENTUAL rungs are then served from cached folds with
        honest measured staleness, while STRONG reads revalidate
        against the log watermark on every hit.

        Args:
            capacity: LRU entry bound per cache.
            hot_capacity: Size of the pinned hot set (space-saving
                top-k tracker).
            coalesce_window: When positive, also enable hot-key write
                coalescing on every store — incremental-cache folds
                for appends inside one virtual-time window are fused
                into a single batch fold.
            coalesce_max_batch: Row bound per fused fold.
        """
        self._read_cache_kwargs = {
            "capacity": capacity,
            "hot_capacity": hot_capacity,
            "coalesce_window": coalesce_window,
            "coalesce_max_batch": coalesce_max_batch,
        }
        return self

    def with_transactions(self, **kwargs: Any) -> "ClusterBuilder":
        """Add a transaction manager over the primary store (implies a
        store if none was declared)."""
        self._transactions_kwargs = dict(kwargs)
        return self

    def with_isolation(
        self,
        level: Any,
        propagation_lag: float = 0.0,
        **kwargs: Any,
    ) -> "ClusterBuilder":
        """Add a transaction manager defaulting to an isolation level.

        Args:
            level: An :class:`repro.core.transaction.IsolationLevel` or
                its string value (``"snapshot"``, ``"nmsi"``, ...).
            propagation_lag: Virtual time an NMSI commit stays
                invisible to other sites.
            kwargs: Further :class:`TransactionManager` arguments,
                merged with (and overriding) any earlier
                :meth:`with_transactions` declaration.
        """
        from repro.core.transaction import IsolationLevel

        resolved = (
            level if isinstance(level, IsolationLevel)
            else IsolationLevel(level)
        )
        merged = dict(self._transactions_kwargs or {})
        merged.update(kwargs)
        merged["isolation"] = resolved
        merged["propagation_lag"] = propagation_lag
        self._transactions_kwargs = merged
        return self

    def with_constraints(self, *constraints: Any) -> "ClusterBuilder":
        """Add a constraint manager (with optional initial constraints)
        over the primary store."""
        self._constraint_objs = tuple(constraints)
        return self

    def with_compensation(self) -> "ClusterBuilder":
        """Add a compensation manager (tentative ops + apologies) over
        the primary store."""
        self._with_compensation = True
        return self

    def with_chaos(
        self,
        seed: Optional[int] = None,
        profile: str | Any = "moderate",
    ) -> "ClusterBuilder":
        """Attach a :class:`~repro.chaos.engine.ChaosEngine` over the
        cluster's network and nodes (implies a network).

        Args:
            seed: Private seed for the chaos schedule; default derives
                the stream from the cluster seed, so chaos intensity can
                be re-rolled independently of the workload.
            profile: A :class:`~repro.chaos.profiles.ChaosProfile` or a
                built-in profile name.

        The engine is built but not armed — call
        ``cluster.chaos.inject(horizon)`` to start the faults, and
        ``cluster.chaos.quiesce()`` before checking invariants.
        """
        self._chaos_kwargs = {"seed": seed, "profile": profile}
        return self

    def with_policies(
        self,
        retry: Any = None,
        timeout: Any = None,
    ) -> "ClusterBuilder":
        """Set cluster-wide fault-tolerance defaults.

        Args:
            retry: A :class:`~repro.core.policy.RetryPolicy` applied to
                every component the builder creates that retries (the
                reliable queue, sync replication, quorum groups).
            timeout: A :class:`~repro.core.policy.TimeoutPolicy` applied
                the same way.

        Component-specific options passed to ``with_queue`` /
        ``with_replicas`` win over these defaults.
        """
        self._retry_policy = retry
        self._timeout_policy = timeout
        return self

    def with_batching(
        self,
        max_batch: Optional[int] = 64,
        flush_interval: float = 0.0,
    ) -> "ClusterBuilder":
        """Set the cluster-wide wire-batching policy for the data plane.

        Applies to every asynchronous event feed the builder creates —
        async primary/backup, master/slave shipping, active/active
        eager propagation — and bounds the warehouse feed's per-round
        fold to ``max_batch`` events.  Synchronous and quorum schemes
        are unaffected: their replication unit is the transaction, and
        each transaction already ships as one frame.

        Args:
            max_batch: Largest LSN-contiguous run shipped per wire
                frame (``None`` keeps the unbatched one-event-per-frame
                default).
            flush_interval: When positive, eager shipments coalesce in
                a per-destination buffer for at most this much virtual
                time before flushing as one frame.

        A ``batching=BatchPolicy(...)`` passed explicitly to
        ``with_replicas`` wins over this cluster-wide default.
        """
        self._batching = BatchPolicy(
            max_batch=max_batch, flush_interval=flush_interval
        )
        return self

    def with_front_door(self, **options: Any) -> "ClusterBuilder":
        """Put the overload front door in front of the cluster's reads.

        Wires a :class:`~repro.frontdoor.FrontDoor` over whatever read
        surfaces the cluster ends up with — the replication scheme's
        strong and replica copies, the warehouse extract or checkpoint
        snapshots as the bottom rung — with per-tenant admission
        control, backpressure signals, circuit breakers, and the
        degrade ladder.  ``cluster.read(..., request=ReadRequest(...))``
        then routes through the door.

        Args:
            **options: Forwarded to
                :meth:`repro.frontdoor.FrontDoor.for_cluster` —
                ``quotas``, ``default_quota``, ``bounded_staleness``,
                ``queue_depth_limit``, ``lag_limit_events``,
                ``strong_capacity``, ``bounded_capacity``,
                ``breaker_threshold``, ``breaker_reset``, ``apologies``,
                and — on a geo cluster — ``site`` (the datacenter this
                door fronts; rungs prefer site-local replicas).
        """
        self._front_door_kwargs = dict(options)
        return self

    def with_topology(
        self,
        sites: tuple[str, ...] | list[str],
        *,
        wan_latency: float = 30.0,
        wan_loss: float = 0.0,
        links: Optional[dict[tuple[str, str], Any]] = None,
    ) -> "ClusterBuilder":
        """Make the cluster geo-distributed: named sites over WAN links.

        Declares a :class:`~repro.sim.topology.SiteTopology` the network
        layers onto its fabric — cross-site frames pay the link's WAN
        latency, flip its extra loss coin, and are booked per directed
        link in ``NetworkStats.links`` / ``net.wan_*`` metrics.
        Combined with :meth:`with_placement` it replaces
        ``with_replicas``: replication becomes a per-shard, partially
        replicated :class:`~repro.replication.geo.GeoReplicaGroup`.

        Args:
            sites: Datacenter names (at least one).
            wan_latency: Default one-way extra latency for every
                inter-site link.
            wan_loss: Default extra per-frame loss probability on every
                inter-site link.
            links: Optional ``{(src, dst): WanLink}`` overrides for
                specific directed site pairs.
        """
        if not sites:
            raise ValueError("with_topology needs at least one site")
        self._topology_kwargs = {
            "sites": tuple(sites),
            "wan_latency": wan_latency,
            "wan_loss": wan_loss,
            "links": dict(links) if links else None,
        }
        return self

    def with_placement(
        self,
        policy: Any = None,
        *,
        replicas: int = 2,
        shards: int = 16,
        vnodes: int = 64,
        ship_interval: float = 10.0,
        anti_entropy_interval: float = 25.0,
    ) -> "ClusterBuilder":
        """Place shards across the topology's sites (partial replication).

        Either pass a prebuilt
        :class:`~repro.partition.placement.PlacementPolicy` or let the
        builder construct one over the ``with_topology`` sites.  The
        policy decides which sites host each shard; the geo group then
        ships a shard's frames only to its hosting sites.

        Args:
            policy: A prebuilt placement (its site set must match the
                topology's).
            replicas: Copies of each shard (when building the policy).
            shards: Shard count (when building the policy).
            vnodes: Placement-ring vnodes per site (when building).
            ship_interval: The geo group's shipping cadence.
            anti_entropy_interval: The geo group's gossip/repair period
                (``0`` disables anti-entropy).
        """
        self._placement_kwargs = {
            "policy": policy,
            "replicas": replicas,
            "shards": shards,
            "vnodes": vnodes,
            "ship_interval": ship_interval,
            "anti_entropy_interval": anti_entropy_interval,
        }
        return self

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def create(self) -> Cluster:
        """Build and wire everything that was declared."""
        tracer = metrics = None
        if self._tracing:
            metrics = self._metrics if self._metrics is not None else MetricsRegistry()
            tracer = self._tracer
        sim = Simulator(seed=self._seed, metrics=metrics)
        if self._tracing and tracer is None:
            tracer = Tracer(clock=lambda: sim.now)
        sim.tracer = tracer
        cluster = Cluster(sim)
        cluster.tracer = tracer
        cluster.metrics = metrics

        cluster.retry_policy = self._retry_policy
        cluster.timeout_policy = self._timeout_policy
        cluster.batching = self._batching

        needs_network = (
            self._network_kwargs is not None
            or self._replica_count
            or self._chaos_kwargs is not None
            or self._topology_kwargs is not None
        )
        if needs_network:
            cluster.network = Network(sim, **(self._network_kwargs or {}))

        if self._placement_kwargs is not None and self._topology_kwargs is None:
            raise ValueError("with_placement requires with_topology")
        if self._topology_kwargs is not None:
            cluster.topology = self._build_topology()
            cluster.network.attach_topology(cluster.topology)
            if self._placement_kwargs is not None:
                if self._replica_count:
                    raise ValueError(
                        "with_placement replaces with_replicas: declare "
                        "one replication style, not both"
                    )
                cluster.replication, cluster.placement = self._build_geo(
                    sim, cluster
                )
                cluster.store = self._primary_store_of(cluster.replication)

        if self._replica_count:
            cluster.replication = self._build_replication(sim, cluster.network)
            cluster.store = self._primary_store_of(cluster.replication)

        for name in self._unit_names:
            cluster.units[name] = SerializationUnit(name, sim=sim)

        if self._ring_kwargs is not None:
            ring_kwargs = self._ring_kwargs
            for name in ring_kwargs["names"]:
                cluster.units[name] = SerializationUnit(name, sim=sim)
            cluster.ring = ConsistentHashRing(
                ring_kwargs["names"], vnodes=ring_kwargs["vnodes"]
            )
            cluster.directory = DynamicDirectory(cluster.ring)
            cluster.mover = EntityMover(cluster.units, cluster.directory)
            cluster.rebalancer = Rebalancer(
                cluster.mover,
                sim=sim,
                retry=self._retry_policy,
                timeout=self._timeout_policy,
                batch_size=ring_kwargs["batch_size"],
                batch_interval=ring_kwargs["batch_interval"],
            )

        if self._queue_kwargs is not None:
            queue_kwargs = dict(self._queue_kwargs)
            if self._retry_policy is not None:
                queue_kwargs.setdefault("retry", self._retry_policy)
            if self._timeout_policy is not None:
                queue_kwargs.setdefault("timeout", self._timeout_policy)
            cluster.queue = ReliableQueue(sim, **queue_kwargs)

        store_kwargs = self._store_kwargs
        if store_kwargs is None and cluster.store is None and (
            self._transactions_kwargs is not None
            or self._constraint_objs is not None
            or self._with_compensation
            or self._read_cache_kwargs is not None
        ):
            store_kwargs = {"name": "store", "origin": "local"}
        if store_kwargs is not None:
            cluster.store = LSDBStore(
                clock=lambda: sim.now,
                tracer=tracer,
                metrics=metrics,
                **store_kwargs,
            )

        if cluster.store is not None:
            if self._constraint_objs is not None:
                cluster.constraints = ConstraintManager(
                    cluster.store, cluster.queue, clock=lambda: sim.now
                )
                for constraint in self._constraint_objs:
                    cluster.constraints.add(constraint)
            if self._transactions_kwargs is not None:
                tx_kwargs = dict(self._transactions_kwargs)
                tx_kwargs.setdefault("metrics", metrics)
                cluster.transactions = TransactionManager(
                    cluster.store,
                    sim=sim,
                    queue=cluster.queue,
                    constraints=cluster.constraints,
                    **tx_kwargs,
                )
            if self._with_compensation:
                cluster.compensation = CompensationManager(
                    cluster.store, queue=cluster.queue, clock=lambda: sim.now
                )

        if self._warehouse_kwargs is not None:
            source = cluster.store
            if source is None:
                raise ValueError(
                    "with_warehouse needs a source store: declare "
                    "with_replicas or with_store first"
                )
            warehouse_kwargs = dict(self._warehouse_kwargs)
            if self._batching is not None and self._batching.max_batch is not None:
                # The warehouse feed is a data-plane feed too: bound the
                # per-round fold to one frame's worth of events.
                warehouse_kwargs.setdefault("max_batch", self._batching.max_batch)
            cluster.warehouse = WarehouseExtract(sim, source, **warehouse_kwargs)

        if self._read_cache_kwargs is not None:
            from repro.lsdb.readcache import ReadCache

            rc_kwargs = self._read_cache_kwargs
            for store in self._all_stores_of(cluster):
                cache = ReadCache.over_store(
                    store,
                    capacity=rc_kwargs["capacity"],
                    hot_capacity=rc_kwargs["hot_capacity"],
                    metrics=metrics,
                )
                cluster.read_caches.append(cache)
                if store is cluster.store:
                    cluster.read_cache = cache
                if rc_kwargs["coalesce_window"] > 0:
                    store.enable_coalescing(
                        window=rc_kwargs["coalesce_window"],
                        max_batch=rc_kwargs["coalesce_max_batch"],
                    )
            if cluster.warehouse is not None:
                cluster.read_caches.append(
                    ReadCache.over_warehouse(
                        cluster.warehouse,
                        capacity=rc_kwargs["capacity"],
                        hot_capacity=rc_kwargs["hot_capacity"],
                        metrics=metrics,
                    )
                )

        if self._chaos_kwargs is not None:
            from repro.chaos.engine import ChaosEngine
            from repro.sim.rng import SeededRNG

            chaos_seed = self._chaos_kwargs["seed"]
            cluster.chaos = ChaosEngine(
                sim,
                cluster.network,
                profile=self._chaos_kwargs["profile"],
                rng=SeededRNG(chaos_seed) if chaos_seed is not None else None,
                topology=cluster.topology,
            )

        if self._front_door_kwargs is not None:
            from repro.frontdoor import FrontDoor

            cluster.front_door = FrontDoor.for_cluster(
                cluster, **self._front_door_kwargs
            )
        return cluster

    def _build_topology(self) -> Any:
        from repro.sim.topology import SiteTopology, WanLink

        kwargs = self._topology_kwargs
        return SiteTopology(
            kwargs["sites"],
            default_link=WanLink(
                latency=kwargs["wan_latency"],
                loss_probability=kwargs["wan_loss"],
            ),
            links=kwargs["links"],
        )

    def _build_geo(self, sim: Simulator, cluster: Cluster) -> tuple[Any, Any]:
        from repro.partition.placement import PlacementPolicy
        from repro.replication.geo import GeoReplicaGroup

        kwargs = self._placement_kwargs
        placement = kwargs["policy"]
        if placement is None:
            placement = PlacementPolicy(
                cluster.topology.sites,
                replicas=kwargs["replicas"],
                shards=kwargs["shards"],
                vnodes=kwargs["vnodes"],
            )
        elif tuple(placement.sites) != tuple(cluster.topology.sites):
            raise ValueError(
                f"placement sites {placement.sites} do not match "
                f"topology sites {cluster.topology.sites}"
            )
        group = GeoReplicaGroup(
            sim,
            cluster.network,
            cluster.topology,
            placement,
            ship_interval=kwargs["ship_interval"],
            anti_entropy_interval=kwargs["anti_entropy_interval"],
            batching=self._batching,
        )
        return group, placement

    def _build_replication(self, sim: Simulator, network: Network) -> Any:
        count, mode = self._replica_count, self._replica_mode
        options = dict(self._replica_kwargs)
        if mode in ("sync", "quorum"):
            # Cluster-wide policy defaults; explicit per-scheme options win.
            if self._retry_policy is not None:
                options.setdefault("retry", self._retry_policy)
            if self._timeout_policy is not None:
                options.setdefault("timeout", self._timeout_policy)
        else:
            # Wire batching covers the asynchronous feeds; sync/quorum
            # ship per-transaction frames regardless.  The builder is a
            # facade, so it supplies the modern default (an unbatched
            # BatchPolicy) when neither with_batching nor an explicit
            # option chose one — scheme constructors themselves now
            # reject ship_interval without a frame policy.
            options.setdefault(
                "batching",
                self._batching if self._batching is not None else BatchPolicy(),
            )
        if mode == "async" and count == 2:
            return AsyncPrimaryBackup(sim, network, **options)
        if mode == "sync":
            if count != 2:
                raise ValueError("sync replication is a primary/backup pair")
            return SyncPrimaryBackup(sim, network, **options)
        if mode in ("async", "master_slave"):
            slave_ids = [f"slave-{i}" for i in range(1, count)]
            return MasterSlaveGroup(sim, network, "master", slave_ids, **options)
        if mode == "active_active":
            replica_ids = [f"r{i}" for i in range(1, count + 1)]
            return ActiveActiveGroup(sim, network, replica_ids, **options)
        if mode == "quorum":
            replica_ids = [f"q{i}" for i in range(1, count + 1)]
            return QuorumGroup(sim, network, replica_ids, **options)
        raise AssertionError(f"unhandled mode {mode!r}")  # pragma: no cover

    @staticmethod
    def _all_stores_of(cluster: Cluster) -> list[LSDBStore]:
        """Every store the cluster built, primary first, deduplicated
        (the primary is usually also a member of the scheme's replica
        collection)."""
        stores: list[LSDBStore] = []
        seen: set[int] = set()

        def add(store: Optional[LSDBStore]) -> None:
            if store is not None and id(store) not in seen:
                seen.add(id(store))
                stores.append(store)

        add(cluster.store)
        scheme = cluster.replication
        if scheme is not None:
            for attr in ("primary", "master", "backup"):
                node = getattr(scheme, attr, None)
                if node is not None:
                    add(node.store)
            for attr in ("slaves", "replicas"):
                members = getattr(scheme, attr, None)
                if isinstance(members, dict):
                    for node in members.values():
                        add(node.store)
                elif isinstance(members, list):
                    for node in members:
                        add(node.store)
        return stores

    @staticmethod
    def _primary_store_of(scheme: Any) -> Optional[LSDBStore]:
        primary = getattr(scheme, "primary", None) or getattr(scheme, "master", None)
        if primary is not None:
            return primary.store
        replicas = getattr(scheme, "replicas", None)
        if isinstance(replicas, dict) and replicas:
            return next(iter(replicas.values())).store
        if isinstance(replicas, list) and replicas:
            return replicas[0].store
        return None
