"""Reliable (at-least-once) event queues.

Principle 2.4: process steps are connected by events, delivered by
"reliable message queue specifications and products, such as the Java
Message Service.  For unreliable messaging, at-least-once delivery can
be used with idempotence."

:class:`ReliableQueue` implements the at-least-once contract on the
simulator: a delivered message that is not acknowledged (handler returns
``False`` or raises) is redelivered after a timeout, up to a retry cap,
after which it parks on a dead-letter list for operator attention.
Duplicate deliveries are *expected* under this contract — pair consumers
with :class:`~repro.queues.idempotence.IdempotentReceiver`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.core.policy import RetryPolicy, TimeoutPolicy
from repro.queues.message import Message, next_message_id
from repro.sim.scheduler import Simulator

Handler = Callable[[Message], bool]

#: Reusable no-op context for the tracing-off delivery path.
_NULL_CTX = nullcontext()


@dataclass
class QueueStats:
    """Counters describing a queue's delivery behaviour."""

    enqueued: int = 0
    delivered: int = 0
    acked: int = 0
    redelivered: int = 0
    dead_lettered: int = 0
    handler_failures: int = 0
    deadline_expired: int = 0


class ReliableQueue:
    """An at-least-once topic queue on the simulator.

    Args:
        sim: The simulator providing time and scheduling.
        name: Diagnostic name.
        delivery_delay: Virtual time between enqueue and the delivery
            attempt (models broker/network hop).
        retry: The :class:`~repro.core.policy.RetryPolicy` governing
            redelivery of unacked messages: ``base_delay``/``backoff``
            set the redelivery wait, ``max_attempts`` the dead-letter
            cap, and an attached budget sheds redeliveries under retry
            storms.  Default: 5 fixed attempts, 10.0 apart.
        timeout: The :class:`~repro.core.policy.TimeoutPolicy` whose
            ``overall`` limit becomes the default message deadline — a
            message still undelivered past its deadline is parked with a
            ``deadline_expired`` verdict instead of being retried.
            (The pre-policy ``redelivery_timeout``/``max_attempts``
            kwargs, deprecated in PR 3, have completed their cycle and
            were removed; the read-only properties of those names
            remain.)
        ack_loss_probability: Probability that a *successful* handler
            run's ack is lost (consumer crashed after processing, before
            acknowledging) — the classic source of duplicates that
            motivates idempotent receivers.

    Example:
        >>> sim = Simulator()
        >>> queue = ReliableQueue(sim)
        >>> seen = []
        >>> queue.subscribe("greeting", lambda m: seen.append(m.payload) or True)
        >>> _ = queue.enqueue("greeting", {"text": "hi"})
        >>> _ = sim.run()
        >>> seen
        [{'text': 'hi'}]
    """

    #: Default redelivery behaviour (the historical constructor values).
    DEFAULT_RETRY = RetryPolicy(max_attempts=5, base_delay=10.0)

    def __init__(
        self,
        sim: Simulator,
        name: str = "queue",
        delivery_delay: float = 0.0,
        ack_loss_probability: float = 0.0,
        tracer=None,
        metrics=None,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[TimeoutPolicy] = None,
    ):
        self.sim = sim
        self.name = name
        self.delivery_delay = delivery_delay
        self.retry_policy = retry if retry is not None else self.DEFAULT_RETRY
        self.timeout_policy = timeout if timeout is not None else TimeoutPolicy.none()
        # Hot-path cache: a trivial policy redelivers after a constant
        # wait, exactly like the pre-policy queue — no per-delivery
        # policy evaluation.
        self._fixed_redelivery: Optional[float] = (
            self.retry_policy.base_delay if self.retry_policy.is_trivial else None
        )
        self._default_deadline_in = self.timeout_policy.overall
        #: Deadline stamped onto enqueues that do not carry their own —
        #: the process engine sets this while a step (and its commit-time
        #: outbox publish) runs, so follow-up events inherit the
        #: triggering message's deadline.
        self.ambient_deadline: Optional[float] = None
        self.ack_loss_probability = ack_loss_probability
        self.stats = QueueStats()
        self.dead_letters: list[Message] = []
        self._handlers: dict[str, list[Handler]] = {}
        self._rng = sim.fork_rng()
        self._acked_ids: set[str] = set()
        # Observability handles default from the simulator (one traced
        # simulator => every queue on it is traced).
        self.tracer = tracer if tracer is not None else sim.tracer
        self.metrics = metrics if metrics is not None else sim.metrics
        if self.metrics is not None:
            counter = self.metrics.counter
            self._m_enqueued = counter("queue.enqueued", queue=name)
            self._m_delivered = counter("queue.delivered", queue=name)
            self._m_redelivered = counter("queue.redelivered", queue=name)
            self._m_dead = counter("queue.dead_lettered", queue=name)
            self._m_deadline = counter("queue.deadline_expired", queue=name)
        else:
            self._m_enqueued = self._m_delivered = None
            self._m_redelivered = self._m_dead = self._m_deadline = None

    # -- legacy attribute views (kept for introspection/back-compat) ----- #

    @property
    def redelivery_timeout(self) -> float:
        """The retry policy's base delay (legacy name)."""
        return self.retry_policy.base_delay

    @property
    def max_attempts(self) -> int:
        """The retry policy's attempt cap (legacy name)."""
        return self.retry_policy.max_attempts

    def subscribe(self, topic: str, handler: Handler) -> None:
        """Register ``handler`` for ``topic``.

        The handler returns ``True`` to acknowledge; ``False`` or an
        exception triggers redelivery.  Multiple handlers on one topic
        each receive the message; the message is acked only when *all*
        acknowledge in the same attempt.
        """
        self._handlers.setdefault(topic, []).append(handler)

    def enqueue(
        self,
        topic: str,
        payload: Mapping[str, Any],
        message_id: Optional[str] = None,
        causation_id: str = "",
        deadline: Optional[float] = None,
    ) -> Message:
        """Enqueue a message for delivery to ``topic`` subscribers.

        Enqueue is always a *local* operation (principle 2.6's note:
        queue operations are never distributed transactions).

        ``deadline`` (absolute virtual time) bounds how long delivery
        may be retried; unset, it falls back to the ambient deadline of
        the step currently running (if any), then to the queue's
        ``timeout.overall`` policy.
        """
        tracer = self.tracer
        trace_id = span_id = ""
        if tracer is not None:
            span = tracer.start_span(
                "queue.enqueue", node=self.name, topic=topic,
            )
            tracer.end_span(span)
            trace_id, span_id = span.trace_id, span.span_id
        if deadline is None:
            deadline = self.ambient_deadline
            if deadline is None and self._default_deadline_in is not None:
                deadline = self.sim.now + self._default_deadline_in
        message = Message(
            message_id=message_id or next_message_id(),
            topic=topic,
            payload=dict(payload),
            enqueue_time=self.sim.now,
            causation_id=causation_id,
            trace_id=trace_id,
            span_id=span_id,
            deadline=deadline,
        )
        self.stats.enqueued += 1
        if self._m_enqueued is not None:
            self._m_enqueued.inc()
        self._schedule_delivery(message, self.delivery_delay)
        return message

    def _schedule_delivery(self, message: Message, delay: float) -> None:
        self.sim.schedule(
            delay,
            lambda: self._deliver(message),
            label=f"{self.name}:{message.topic}",
        )

    def _deliver(self, message: Message) -> None:
        if message.message_id in self._acked_ids:
            return
        if message.deadline is not None and self.sim.now > message.deadline:
            # The operation this event belongs to has already missed its
            # deadline: retrying would waste work the caller gave up on.
            self.stats.deadline_expired += 1
            self.dead_letters.append(message)
            if self._m_deadline is not None:
                self._m_deadline.inc()
            return
        handlers = self._handlers.get(message.topic, [])
        message.attempts += 1
        self.stats.delivered += 1
        if self._m_delivered is not None:
            self._m_delivered.inc()
        tracer = self.tracer
        span = None
        if tracer is not None and message.span_id:
            # Handlers run inside a delivery span chained to the enqueue
            # span, so consumer-side work joins the producer's trace.
            span = tracer.start_span(
                "queue.deliver",
                parent=message.span_id,
                node=self.name,
                topic=message.topic,
                attempt=message.attempts,
            )
        success = bool(handlers)
        with tracer.resume(span.span_id) if span is not None else _NULL_CTX:
            for handler in handlers:
                try:
                    if not handler(message):
                        success = False
                except Exception:
                    self.stats.handler_failures += 1
                    success = False
        if success and self.ack_loss_probability > 0 and self._rng.coin(
            self.ack_loss_probability
        ):
            # Processing happened but the ack was lost: at-least-once
            # semantics say redeliver; idempotent receivers absorb it.
            success = False
        if success:
            self.stats.acked += 1
            self._acked_ids.add(message.message_id)
            if span is not None:
                tracer.end_span(span, status="acked")
        elif not self.retry_policy.allows_retry(message.attempts):
            self.stats.dead_lettered += 1
            self.dead_letters.append(message)
            if self._m_dead is not None:
                self._m_dead.inc()
            if span is not None:
                tracer.end_span(span, status="dead_lettered")
        else:
            self.stats.redelivered += 1
            if self._m_redelivered is not None:
                self._m_redelivered.inc()
            if span is not None:
                tracer.end_span(span, status="redelivering")
            wait = (
                self._fixed_redelivery
                if self._fixed_redelivery is not None
                else self.retry_policy.delay(message.attempts, self._rng)
            )
            self._schedule_delivery(message, wait)

    @property
    def pending_ack(self) -> int:
        """Messages enqueued but neither acked nor parked (dead-letter
        cap or expired deadline)."""
        return (
            self.stats.enqueued
            - self.stats.acked
            - self.stats.dead_lettered
            - self.stats.deadline_expired
        )
