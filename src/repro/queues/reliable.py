"""Reliable (at-least-once) event queues.

Principle 2.4: process steps are connected by events, delivered by
"reliable message queue specifications and products, such as the Java
Message Service.  For unreliable messaging, at-least-once delivery can
be used with idempotence."

:class:`ReliableQueue` implements the at-least-once contract on the
simulator: a delivered message that is not acknowledged (handler returns
``False`` or raises) is redelivered after a timeout, up to a retry cap,
after which it parks on a dead-letter list for operator attention.
Duplicate deliveries are *expected* under this contract — pair consumers
with :class:`~repro.queues.idempotence.IdempotentReceiver`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.queues.message import Message, next_message_id
from repro.sim.scheduler import Simulator

Handler = Callable[[Message], bool]

#: Reusable no-op context for the tracing-off delivery path.
_NULL_CTX = nullcontext()


@dataclass
class QueueStats:
    """Counters describing a queue's delivery behaviour."""

    enqueued: int = 0
    delivered: int = 0
    acked: int = 0
    redelivered: int = 0
    dead_lettered: int = 0
    handler_failures: int = 0


class ReliableQueue:
    """An at-least-once topic queue on the simulator.

    Args:
        sim: The simulator providing time and scheduling.
        name: Diagnostic name.
        delivery_delay: Virtual time between enqueue and the delivery
            attempt (models broker/network hop).
        redelivery_timeout: Wait before redelivering an unacked message.
        max_attempts: Attempts before the message is dead-lettered.
        ack_loss_probability: Probability that a *successful* handler
            run's ack is lost (consumer crashed after processing, before
            acknowledging) — the classic source of duplicates that
            motivates idempotent receivers.

    Example:
        >>> sim = Simulator()
        >>> queue = ReliableQueue(sim)
        >>> seen = []
        >>> queue.subscribe("greeting", lambda m: seen.append(m.payload) or True)
        >>> _ = queue.enqueue("greeting", {"text": "hi"})
        >>> _ = sim.run()
        >>> seen
        [{'text': 'hi'}]
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "queue",
        delivery_delay: float = 0.0,
        redelivery_timeout: float = 10.0,
        max_attempts: int = 5,
        ack_loss_probability: float = 0.0,
        tracer=None,
        metrics=None,
    ):
        self.sim = sim
        self.name = name
        self.delivery_delay = delivery_delay
        self.redelivery_timeout = redelivery_timeout
        self.max_attempts = max_attempts
        self.ack_loss_probability = ack_loss_probability
        self.stats = QueueStats()
        self.dead_letters: list[Message] = []
        self._handlers: dict[str, list[Handler]] = {}
        self._rng = sim.fork_rng()
        self._acked_ids: set[str] = set()
        # Observability handles default from the simulator (one traced
        # simulator => every queue on it is traced).
        self.tracer = tracer if tracer is not None else sim.tracer
        self.metrics = metrics if metrics is not None else sim.metrics
        if self.metrics is not None:
            counter = self.metrics.counter
            self._m_enqueued = counter("queue.enqueued", queue=name)
            self._m_delivered = counter("queue.delivered", queue=name)
            self._m_redelivered = counter("queue.redelivered", queue=name)
            self._m_dead = counter("queue.dead_lettered", queue=name)
        else:
            self._m_enqueued = self._m_delivered = None
            self._m_redelivered = self._m_dead = None

    def subscribe(self, topic: str, handler: Handler) -> None:
        """Register ``handler`` for ``topic``.

        The handler returns ``True`` to acknowledge; ``False`` or an
        exception triggers redelivery.  Multiple handlers on one topic
        each receive the message; the message is acked only when *all*
        acknowledge in the same attempt.
        """
        self._handlers.setdefault(topic, []).append(handler)

    def enqueue(
        self,
        topic: str,
        payload: Mapping[str, Any],
        message_id: Optional[str] = None,
        causation_id: str = "",
    ) -> Message:
        """Enqueue a message for delivery to ``topic`` subscribers.

        Enqueue is always a *local* operation (principle 2.6's note:
        queue operations are never distributed transactions).
        """
        tracer = self.tracer
        trace_id = span_id = ""
        if tracer is not None:
            span = tracer.start_span(
                "queue.enqueue", node=self.name, topic=topic,
            )
            tracer.end_span(span)
            trace_id, span_id = span.trace_id, span.span_id
        message = Message(
            message_id=message_id or next_message_id(),
            topic=topic,
            payload=dict(payload),
            enqueue_time=self.sim.now,
            causation_id=causation_id,
            trace_id=trace_id,
            span_id=span_id,
        )
        self.stats.enqueued += 1
        if self._m_enqueued is not None:
            self._m_enqueued.inc()
        self._schedule_delivery(message, self.delivery_delay)
        return message

    def _schedule_delivery(self, message: Message, delay: float) -> None:
        self.sim.schedule(
            delay,
            lambda: self._deliver(message),
            label=f"{self.name}:{message.topic}",
        )

    def _deliver(self, message: Message) -> None:
        if message.message_id in self._acked_ids:
            return
        handlers = self._handlers.get(message.topic, [])
        message.attempts += 1
        self.stats.delivered += 1
        if self._m_delivered is not None:
            self._m_delivered.inc()
        tracer = self.tracer
        span = None
        if tracer is not None and message.span_id:
            # Handlers run inside a delivery span chained to the enqueue
            # span, so consumer-side work joins the producer's trace.
            span = tracer.start_span(
                "queue.deliver",
                parent=message.span_id,
                node=self.name,
                topic=message.topic,
                attempt=message.attempts,
            )
        success = bool(handlers)
        with tracer.resume(span.span_id) if span is not None else _NULL_CTX:
            for handler in handlers:
                try:
                    if not handler(message):
                        success = False
                except Exception:
                    self.stats.handler_failures += 1
                    success = False
        if success and self.ack_loss_probability > 0 and self._rng.coin(
            self.ack_loss_probability
        ):
            # Processing happened but the ack was lost: at-least-once
            # semantics say redeliver; idempotent receivers absorb it.
            success = False
        if success:
            self.stats.acked += 1
            self._acked_ids.add(message.message_id)
            if span is not None:
                tracer.end_span(span, status="acked")
        elif message.attempts >= self.max_attempts:
            self.stats.dead_lettered += 1
            self.dead_letters.append(message)
            if self._m_dead is not None:
                self._m_dead.inc()
            if span is not None:
                tracer.end_span(span, status="dead_lettered")
        else:
            self.stats.redelivered += 1
            if self._m_redelivered is not None:
                self._m_redelivered.inc()
            if span is not None:
                tracer.end_span(span, status="redelivering")
            self._schedule_delivery(message, self.redelivery_timeout)

    @property
    def pending_ack(self) -> int:
        """Messages enqueued but neither acked nor dead-lettered."""
        return self.stats.enqueued - self.stats.acked - self.stats.dead_lettered
