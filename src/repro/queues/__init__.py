"""Event queues: reliable delivery, idempotence, transactional outboxes.

The messaging substrate of principles 2.4 and 2.6: process steps are
connected by events; delivery is at-least-once with idempotent
receivers; enqueue/dequeue are always local operations bound to the
local transaction's outcome, never distributed transactions.
"""

from repro.queues.idempotence import IdempotentReceiver
from repro.queues.message import Message, next_message_id
from repro.queues.reliable import QueueStats, ReliableQueue
from repro.queues.transactional import TransactionalOutbox

__all__ = [
    "IdempotentReceiver",
    "Message",
    "next_message_id",
    "QueueStats",
    "ReliableQueue",
    "TransactionalOutbox",
]
