"""Idempotent receivers: exactly-once *effect* over at-least-once delivery.

"For unreliable messaging, at-least-once delivery can be used with
idempotence" (principle 2.4, after Helland).  An
:class:`IdempotentReceiver` wraps a handler with a processed-id set so a
redelivered message acknowledges immediately without re-running the
business logic — duplicates become harmless.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.queues.message import Message

Handler = Callable[[Message], bool]


class IdempotentReceiver:
    """Deduplicating wrapper around a message handler.

    Args:
        handler: The business handler; invoked at most once per
            message id, no matter how many deliveries occur.
        name: Diagnostic name for reports.
        capacity: Optional bound on the dedup set; when exceeded the
            oldest ids are forgotten (a real system bounds this table
            and relies on redelivery windows being shorter than the
            retention horizon).

    Example:
        >>> calls = []
        >>> receiver = IdempotentReceiver(lambda m: calls.append(m) or True)
        >>> message = Message("m-1", "t")
        >>> receiver(message), receiver(message)
        (True, True)
        >>> len(calls)
        1
    """

    def __init__(
        self,
        handler: Handler,
        name: str = "receiver",
        capacity: Optional[int] = None,
    ):
        self.handler = handler
        self.name = name
        self.capacity = capacity
        self.duplicates_skipped = 0
        self.processed = 0
        self._seen: dict[str, bool] = {}

    def __call__(self, message: Message) -> bool:
        """Handle ``message`` once; duplicates ack without side effects.

        A failed first attempt (handler returned ``False`` or raised) is
        *not* recorded as seen, so redelivery retries the business logic
        — only successful processing is deduplicated.
        """
        if message.message_id in self._seen:
            self.duplicates_skipped += 1
            return True
        acknowledged = self.handler(message)
        if acknowledged:
            self._remember(message.message_id)
            self.processed += 1
        return acknowledged

    def _remember(self, message_id: str) -> None:
        self._seen[message_id] = True
        if self.capacity is not None and len(self._seen) > self.capacity:
            oldest = next(iter(self._seen))
            del self._seen[oldest]

    def has_processed(self, message_id: str) -> bool:
        """Whether ``message_id`` was already successfully handled."""
        return message_id in self._seen
