"""Message records for the event-queue substrate.

Process steps are "connected by events" (principle 2.4); a
:class:`Message` is one such event in flight.  Messages carry a unique id
so receivers can deduplicate redeliveries (at-least-once delivery plus
idempotence — the combination the paper prescribes for unreliable
messaging).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

_id_counter = itertools.count(1)


def next_message_id(prefix: str = "m") -> str:
    """A process-wide unique message id (deterministic across a run:
    ids are assigned in creation order)."""
    return f"{prefix}-{next(_id_counter)}"


@dataclass
class Message:
    """An event/message flowing between process steps.

    Attributes:
        message_id: Globally unique id; the deduplication key.
        topic: Routing key — consumers subscribe to topics.
        payload: Application data (kept JSON-friendly by convention).
        enqueue_time: Virtual time of first enqueue.
        attempts: Delivery attempts so far (grows under redelivery).
        causation_id: Message id (or transaction id) that caused this
            message, for tracing choreographies (e.g. the SCM flows of
            principle 2.9).
        trace_id: Causal trace of the enqueue ("" when tracing is off);
            delivery resumes this context so handler work attaches to
            the producer's span tree.
        span_id: The enqueue span — parent for the delivery span.
        deadline: Absolute virtual time the work this event triggers
            must finish by (``None`` = unbounded).  Process steps
            propagate it onto the events they emit, so a whole SOUPS
            process shares one deadline.
    """

    message_id: str
    topic: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    enqueue_time: float = 0.0
    attempts: int = 0
    causation_id: str = ""
    trace_id: str = ""
    span_id: str = ""
    deadline: float | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message({self.message_id}, topic={self.topic!r}, "
            f"attempts={self.attempts})"
        )
