"""Transactional messaging: outbox publication bound to commit.

Principle 2.4: "A committed transaction may enqueue events that result
in additional process steps"; a *failed* transaction must not leak its
events.  The :class:`TransactionalOutbox` gives transactions exactly
that: ``enqueue`` buffers during the transaction, ``publish_on_commit``
flushes to the real queue atomically with commit, ``discard_on_abort``
drops everything.

The paper also allows *post-rollback actions* — "they must be
non-transactional and infrastructure-generated" — so the outbox supports
a separate compensation channel that fires only on abort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.queues.message import Message, next_message_id
from repro.queues.reliable import ReliableQueue


@dataclass
class _PendingMessage:
    """A message buffered inside an open transaction."""

    topic: str
    payload: dict[str, Any]
    message_id: str
    causation_id: str


class TransactionalOutbox:
    """Buffers enqueues until the owning transaction decides its fate.

    Args:
        queue: The reliable queue that receives published messages.
        tx_id: The owning transaction's id (stamped as causation).

    Example:
        >>> from repro.sim import Simulator
        >>> sim = Simulator()
        >>> queue = ReliableQueue(sim)
        >>> outbox = TransactionalOutbox(queue, tx_id="tx-1")
        >>> _ = outbox.enqueue("order.created", {"order": "o1"})
        >>> queue.stats.enqueued        # nothing published yet
        0
        >>> outbox.publish_on_commit()
        1
        >>> queue.stats.enqueued
        1
    """

    def __init__(self, queue: ReliableQueue, tx_id: str = ""):
        self.queue = queue
        self.tx_id = tx_id
        self._pending: list[_PendingMessage] = []
        self._on_abort: list[_PendingMessage] = []
        self._closed = False

    def enqueue(
        self,
        topic: str,
        payload: Mapping[str, Any],
        message_id: Optional[str] = None,
    ) -> str:
        """Buffer a message for publication at commit.

        Returns:
            The message id (fixed now so retries of the same logical
            send can share it).
        """
        self._check_open()
        pending = _PendingMessage(
            topic=topic,
            payload=dict(payload),
            message_id=message_id or next_message_id(),
            causation_id=self.tx_id,
        )
        self._pending.append(pending)
        return pending.message_id

    def enqueue_on_abort(
        self,
        topic: str,
        payload: Mapping[str, Any],
    ) -> str:
        """Buffer an infrastructure compensation message that is
        published only if the transaction aborts (post-rollback actions,
        principle 2.4)."""
        self._check_open()
        pending = _PendingMessage(
            topic=topic,
            payload=dict(payload),
            message_id=next_message_id(),
            causation_id=self.tx_id,
        )
        self._on_abort.append(pending)
        return pending.message_id

    def publish_on_commit(self) -> int:
        """Flush commit-bound messages to the queue; abort-bound ones
        are discarded.  Returns the number published."""
        self._check_open()
        self._closed = True
        for pending in self._pending:
            self.queue.enqueue(
                pending.topic,
                pending.payload,
                message_id=pending.message_id,
                causation_id=pending.causation_id,
            )
        published = len(self._pending)
        self._pending.clear()
        self._on_abort.clear()
        return published

    def discard_on_abort(self) -> int:
        """Drop commit-bound messages and publish abort-bound
        compensations.  Returns the number of compensations published."""
        self._check_open()
        self._closed = True
        self._pending.clear()
        for pending in self._on_abort:
            self.queue.enqueue(
                pending.topic,
                pending.payload,
                message_id=pending.message_id,
                causation_id=pending.causation_id,
            )
        published = len(self._on_abort)
        self._on_abort.clear()
        return published

    @property
    def pending_count(self) -> int:
        """Messages buffered awaiting the commit decision."""
        return len(self._pending)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"outbox for {self.tx_id!r} already published or discarded"
            )
