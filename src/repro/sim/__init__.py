"""Deterministic discrete-event simulation substrate.

The paper's principles are about the behaviour of distributed data
management under latency, partitions, replica divergence and failures.
The authors' substrate — SAP's enterprise landscape — is proprietary, so
every experiment in this repository runs on this simulator instead (see
DESIGN.md section 4 for the substitution argument).

The substrate is intentionally small and fully deterministic:

* :class:`~repro.sim.scheduler.Simulator` — a virtual clock plus an event
  heap; callbacks fire in (time, insertion-order) order, so two runs with
  the same seed produce identical histories.
* :class:`~repro.sim.network.Network` — message passing between
  :class:`~repro.sim.network.Node` objects with configurable latency
  distributions, message loss and partitions.
* :class:`~repro.sim.failure.FailureInjector` — scripted crash/recover
  schedules for nodes.
* :class:`~repro.sim.topology.SiteTopology` — named sites with per-link
  WAN latency/loss profiles layered onto the network, plus the site-level
  fault units geo chaos draws over.
* :mod:`~repro.sim.rng` — seeded random-variate helpers (exponential
  inter-arrival times, Zipf key skew) used by workload generators.
"""

from repro.sim.scheduler import Simulator, ScheduledEvent
from repro.sim.network import Network, Node, Partition
from repro.sim.failure import FailureInjector
from repro.sim.rng import SeededRNG, ZipfGenerator
from repro.sim.topology import SiteTopology, WanLink

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "Network",
    "Node",
    "Partition",
    "FailureInjector",
    "SeededRNG",
    "ZipfGenerator",
    "SiteTopology",
    "WanLink",
]
