"""Scripted failure injection: crashes, recoveries and partitions.

Principle 2.11 ("The show must go on") is about behaviour *during*
failures, so experiments need failures that happen at known virtual
times.  The injector schedules crash/recover windows for nodes and
partition/heal windows for the network, and records what it did so a
report can align measurements with the failure timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator


@dataclass
class FailureRecord:
    """One injected failure event, for post-run reporting."""

    time: float
    kind: str  # "crash" | "recover" | "partition" | "heal"
    detail: str


@dataclass
class _PartitionWindow:
    """One scheduled partition window (identity matters: the heal that
    ends a window must remove *that* window, not whatever is newest)."""

    groups: list[set[str]]

    @property
    def detail(self) -> str:
        return " | ".join(",".join(sorted(group)) for group in self.groups)


class FailureInjector:
    """Schedules failures against a simulator/network pair.

    Example:
        >>> sim = Simulator()
        >>> net = Network(sim)
        >>> node = net.register(Node("a"))
        >>> injector = FailureInjector(sim, net)
        >>> injector.crash_window(node, start=10.0, duration=5.0)
        >>> _ = sim.run(until=12.0)
        >>> node.crashed
        True
        >>> _ = sim.run(until=16.0)
        >>> node.crashed
        False
    """

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self.records: list[FailureRecord] = []
        # Partition windows currently in force, in activation order.
        # The newest one defines the live topology; healing any window
        # re-imposes the newest *surviving* one (or heals fully), so
        # overlapping windows never silently erase each other.
        self._active_partitions: list[_PartitionWindow] = []

    def crash_window(self, node: Node, start: float, duration: float) -> None:
        """Crash ``node`` at virtual time ``start`` and recover it
        ``duration`` later."""
        self.sim.schedule_at(start, lambda: self._crash(node), label="inject-crash")
        self.sim.schedule_at(
            start + duration, lambda: self._recover(node), label="inject-recover"
        )

    def partition_window(
        self,
        groups: Iterable[Iterable[str]],
        start: float,
        duration: float,
    ) -> None:
        """Partition the network into ``groups`` at ``start`` and heal it
        ``duration`` later.

        Windows may overlap: the most recently started window defines
        the live topology, and healing a window restores the newest
        window still in force (a full heal only once every window has
        ended).  An earlier version healed unconditionally, silently
        erasing an overlapping partition — the rolling-partition chaos
        schedules tripped over exactly that.
        """
        window = _PartitionWindow(groups=[set(group) for group in groups])
        self.sim.schedule_at(
            start, lambda: self._partition(window), label="inject-partition"
        )
        self.sim.schedule_at(
            start + duration, lambda: self._heal(window), label="inject-heal"
        )

    # ------------------------------------------------------------------ #

    def _crash(self, node: Node) -> None:
        node.crash()
        self.records.append(FailureRecord(self.sim.now, "crash", node.node_id))

    def _recover(self, node: Node) -> None:
        node.recover()
        self.records.append(FailureRecord(self.sim.now, "recover", node.node_id))

    def _partition(self, window: _PartitionWindow) -> None:
        self._active_partitions.append(window)
        self.network.partition_into(*window.groups)
        self.records.append(FailureRecord(self.sim.now, "partition", window.detail))

    def _heal(self, window: _PartitionWindow) -> None:
        try:
            self._active_partitions.remove(window)
        except ValueError:
            # Already gone (e.g. heal_all quiesced the run early).
            return
        if self._active_partitions:
            survivor = self._active_partitions[-1]
            self.network.partition_into(*survivor.groups)
            self.records.append(
                FailureRecord(self.sim.now, "heal", f"restored: {survivor.detail}")
            )
        else:
            self.network.heal()
            self.records.append(FailureRecord(self.sim.now, "heal", ""))

    def heal_all(self) -> None:
        """Drop every active partition window immediately (quiesce)."""
        if self._active_partitions:
            self._active_partitions.clear()
            self.network.heal()
            self.records.append(FailureRecord(self.sim.now, "heal", "all"))
