"""Scripted failure injection: crashes, recoveries and partitions.

Principle 2.11 ("The show must go on") is about behaviour *during*
failures, so experiments need failures that happen at known virtual
times.  The injector schedules crash/recover windows for nodes and
partition/heal windows for the network, and records what it did so a
report can align measurements with the failure timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator


@dataclass
class FailureRecord:
    """One injected failure event, for post-run reporting."""

    time: float
    kind: str  # "crash" | "recover" | "partition" | "heal"
    detail: str


class FailureInjector:
    """Schedules failures against a simulator/network pair.

    Example:
        >>> sim = Simulator()
        >>> net = Network(sim)
        >>> node = net.register(Node("a"))
        >>> injector = FailureInjector(sim, net)
        >>> injector.crash_window(node, start=10.0, duration=5.0)
        >>> _ = sim.run(until=12.0)
        >>> node.crashed
        True
        >>> _ = sim.run(until=16.0)
        >>> node.crashed
        False
    """

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self.records: list[FailureRecord] = []

    def crash_window(self, node: Node, start: float, duration: float) -> None:
        """Crash ``node`` at virtual time ``start`` and recover it
        ``duration`` later."""
        self.sim.schedule_at(start, lambda: self._crash(node), label="inject-crash")
        self.sim.schedule_at(
            start + duration, lambda: self._recover(node), label="inject-recover"
        )

    def partition_window(
        self,
        groups: Iterable[Iterable[str]],
        start: float,
        duration: float,
    ) -> None:
        """Partition the network into ``groups`` at ``start`` and heal it
        ``duration`` later.

        Only one partition can be active at a time; a new window replaces
        the previous one when it begins.
        """
        group_sets = [set(group) for group in groups]
        self.sim.schedule_at(
            start, lambda: self._partition(group_sets), label="inject-partition"
        )
        self.sim.schedule_at(start + duration, self._heal, label="inject-heal")

    # ------------------------------------------------------------------ #

    def _crash(self, node: Node) -> None:
        node.crash()
        self.records.append(FailureRecord(self.sim.now, "crash", node.node_id))

    def _recover(self, node: Node) -> None:
        node.recover()
        self.records.append(FailureRecord(self.sim.now, "recover", node.node_id))

    def _partition(self, groups: list[set[str]]) -> None:
        self.network.partition_into(*groups)
        detail = " | ".join(",".join(sorted(group)) for group in groups)
        self.records.append(FailureRecord(self.sim.now, "partition", detail))

    def _heal(self) -> None:
        self.network.heal()
        self.records.append(FailureRecord(self.sim.now, "heal", ""))
