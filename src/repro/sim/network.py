"""Simulated message-passing network between nodes.

The network is the only channel between replicas, queue brokers and
process engines, so everything the CAP principle is about — latency, loss
and partitions (paper section 1 and principle 2.11) — is injected here.

Messages are delivered by scheduling a callback on the simulator after a
latency drawn from a configurable distribution.  Partitions are modelled
as named groups of nodes; a message crossing group boundaries while a
partition is active is silently dropped (and counted), exactly the
behaviour that forces a replication scheme to choose between availability
and consistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import NetworkError
from repro.sim.scheduler import Simulator


@dataclass(frozen=True)
class Frame:
    """Wire envelope bundling several application messages into one
    network unit.

    A frame is the granularity at which the network makes decisions:
    one latency draw, one loss coin, one duplication coin — for the
    whole frame.  That is exactly how a real batched transport behaves
    (a TCP segment is lost whole, not per row), and it is why chaos
    loss/duplication operates per frame, not per event: a lost frame
    loses the entire LSN-contiguous run, which the reorder buffer and
    anti-entropy repair must then recover.

    Attributes:
        messages: The application payloads, delivered in order to the
            destination's :meth:`Node.handle_message`.
        size: Logical size for metrics — callers shipping event batches
            pass the event count; defaults to ``len(messages)``.
    """

    messages: tuple
    size: int


class Node:
    """A participant in the simulated distributed system.

    Subclasses (replicas, brokers, coordinators) override
    :meth:`handle_message`.  A crashed node receives nothing; messages
    addressed to it while down are dropped, mirroring a real crash-stop
    failure model.

    Args:
        node_id: Unique name used for routing.
    """

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.crashed = False
        self.network: Optional["Network"] = None

    def handle_message(self, source: str, message: Any) -> None:
        """React to a delivered message.  Default: ignore."""

    def send(self, destination: str, message: Any) -> bool:
        """Send ``message`` to ``destination`` via the attached network.

        Returns:
            ``True`` if the message was accepted for (possible) delivery,
            ``False`` if it was dropped at send time (partition, loss, or
            this node is crashed).

        Raises:
            NetworkError: If the node was never registered on a network.
        """
        if self.network is None:
            raise NetworkError(f"node {self.node_id!r} is not on a network")
        return self.network.send(self.node_id, destination, message)

    def send_batch(
        self, destination: str, messages: list, *, size: Optional[int] = None
    ) -> bool:
        """Ship ``messages`` to ``destination`` as one wire frame.

        Returns ``True`` if the frame was accepted for (possible)
        delivery — the whole frame is accepted or dropped as a unit.

        Raises:
            NetworkError: If the node was never registered on a network.
        """
        if self.network is None:
            raise NetworkError(f"node {self.node_id!r} is not on a network")
        return self.network.send_batch(
            self.node_id, destination, messages, size=size
        )

    def crash(self) -> None:
        """Stop receiving messages until :meth:`recover` is called."""
        self.crashed = True

    def recover(self) -> None:
        """Resume receiving messages."""
        self.crashed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "crashed" if self.crashed else "up"
        return f"{type(self).__name__}({self.node_id!r}, {state})"


@dataclass
class Partition:
    """An active network partition.

    Nodes are split into groups; messages within a group flow normally,
    messages between groups are dropped.  Nodes not named in any group
    can talk to everyone (useful for partial partitions).
    """

    groups: list[set[str]]

    def allows(self, source: str, destination: str) -> bool:
        """Whether a message from ``source`` to ``destination`` crosses
        a partition boundary."""
        source_group = self._group_of(source)
        destination_group = self._group_of(destination)
        if source_group is None or destination_group is None:
            return True
        return source_group is destination_group

    def _group_of(self, node_id: str) -> Optional[set[str]]:
        for group in self.groups:
            if node_id in group:
                return group
        return None


@dataclass
class LinkStats:
    """Per-(source-site, destination-site) wire counters.

    The global :class:`NetworkStats` aggregates across the whole fabric;
    when a :class:`~repro.sim.topology.SiteTopology` is attached, every
    cross-site send is *also* booked against its directed link so WAN
    frame amortization (payloads per frame, per link) is observable and
    gateable per datacenter pair.
    """

    sent: int = 0
    delivered: int = 0
    frames: int = 0
    payloads: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_crashed: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_loss + self.dropped_partition + self.dropped_crashed

    def to_dict(self) -> dict[str, int]:
        return {
            "delivered": self.delivered,
            "dropped": self.dropped,
            "frames": self.frames,
            "payloads": self.payloads,
            "sent": self.sent,
        }


@dataclass
class NetworkStats:
    """Counters describing what the network did to traffic."""

    sent: int = 0
    delivered: int = 0
    duplicated: int = 0
    dropped_partition: int = 0
    dropped_loss: int = 0
    dropped_crashed: int = 0
    #: Wire messages that were multi-payload frames (each also counted
    #: once in :attr:`sent`) and the application payloads they carried.
    #: ``frame_payloads / frames`` is the realised batching factor.
    frames: int = 0
    frame_payloads: int = 0
    #: Per-directed-WAN-link counters, keyed ``(src_site, dst_site)``.
    #: Populated only for cross-site traffic of an attached topology.
    links: dict = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        """Total messages that never reached a handler."""
        return self.dropped_partition + self.dropped_loss + self.dropped_crashed

    def link(self, src_site: str, dst_site: str) -> LinkStats:
        """The (created-on-demand) counters for one directed link."""
        key = (src_site, dst_site)
        stats = self.links.get(key)
        if stats is None:
            stats = self.links[key] = LinkStats()
        return stats

    @property
    def wan_frames(self) -> int:
        """Cross-site wire frames, summed over every link."""
        return sum(link.frames for link in self.links.values())

    @property
    def wan_payloads(self) -> int:
        """Cross-site logical payloads, summed over every link."""
        return sum(link.payloads for link in self.links.values())

    def links_to_dict(self) -> dict[str, dict[str, int]]:
        """JSON-friendly per-link view, keys ``"src->dst"`` sorted."""
        return {
            f"{src}->{dst}": self.links[(src, dst)].to_dict()
            for src, dst in sorted(self.links)
        }


class Network:
    """Latency/loss/partition-aware message router.

    Args:
        sim: The simulator providing time and scheduling.
        latency: Either a constant (float) one-way delay, or a callable
            ``(rng) -> float`` drawing a delay per message.
        loss_probability: Independent per-message drop probability.
        duplication_probability: Independent probability that a message
            accepted for delivery is delivered *twice* (with independent
            latency draws) — the at-least-once hazard chaos experiments
            exercise; receivers are expected to be idempotent.

    Mutable fault knobs (all default to the benign setting, and the
    chaos engine flips them mid-run):

    * :attr:`loss_probability` / :attr:`duplication_probability` — per
      message probabilities;
    * :attr:`latency_factor` — global multiplier on every latency draw
      (a delay spike when > 1);
    * :attr:`slow_nodes` — per-node latency multipliers; a message is
      slowed by the factors of both its endpoints (a *gray failure*:
      the node is up and correct, just pathologically slow).

    Example:
        >>> sim = Simulator()
        >>> net = Network(sim, latency=2.0)
        >>> class Echo(Node):
        ...     def handle_message(self, source, message):
        ...         self.last = (source, message)
        >>> a, b = Echo("a"), Echo("b")
        >>> _, _ = net.register(a), net.register(b)
        >>> _ = a.send("b", "ping")
        >>> _ = sim.run()
        >>> b.last
        ('a', 'ping')
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float | Callable[..., float] = 1.0,
        loss_probability: float = 0.0,
        duplication_probability: float = 0.0,
        tracer=None,
        metrics=None,
    ):
        self.sim = sim
        self._latency = latency
        self.loss_probability = loss_probability
        self.duplication_probability = duplication_probability
        self.latency_factor = 1.0
        self.slow_nodes: dict[str, float] = {}
        self.nodes: dict[str, Node] = {}
        self.partition: Optional[Partition] = None
        self.stats = NetworkStats()
        #: Optional :class:`~repro.sim.topology.SiteTopology`; when set,
        #: cross-site traffic pays the link's WAN latency, flips its
        #: extra loss coin, and is booked per directed link.
        self.topology = None
        self._rng = sim.fork_rng()
        self._trace: list[tuple[float, str, str, Any]] = []
        self.tracing = False
        # Observability handles default from the simulator, so a traced
        # simulator automatically yields a traced network.
        self.tracer = tracer if tracer is not None else sim.tracer
        self.metrics = metrics if metrics is not None else sim.metrics
        if self.metrics is not None:
            counter = self.metrics.counter
            self._m_sent = counter("net.sent")
            self._m_delivered = counter("net.delivered")
            self._m_dropped = {
                "partition": counter("net.dropped", reason="partition"),
                "loss": counter("net.dropped", reason="loss"),
                "crashed": counter("net.dropped", reason="crashed"),
            }
            self._m_latency = self.metrics.histogram("net.latency")
            self._m_frames = counter("net.frames")
            self._m_frame_size = self.metrics.histogram("net.frame_size")
        else:
            self._m_sent = self._m_delivered = self._m_latency = None
            self._m_frames = self._m_frame_size = None
            self._m_dropped = {}

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def register(self, node: Node) -> Node:
        """Attach a node.  Node ids must be unique."""
        if node.node_id in self.nodes:
            raise NetworkError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node
        node.network = self
        return node

    def attach_topology(self, topology) -> None:
        """Layer a :class:`~repro.sim.topology.SiteTopology` onto the
        fabric.  From now on a send whose endpoints sit in different
        sites pays the link's WAN latency on top of the base draw,
        flips the link's extra loss coin (only when its probability is
        positive — same-site traffic consumes no extra randomness), and
        is counted in :attr:`NetworkStats.links` plus the ``net.wan_*``
        metrics.  Attaching the same topology twice is a no-op."""
        if self.topology is topology:
            return
        if self.topology is not None:
            raise NetworkError("network already has a topology attached")
        self.topology = topology

    def _wan_hop(self, source: str, destination: str):
        """``(src_site, dst_site, link, link_stats)`` for a cross-site
        send, ``None`` otherwise.  One dict lookup per endpoint when a
        topology is attached; nothing at all when it is not."""
        if self.topology is None:
            return None
        hop = self.topology.wan_link_for(source, destination)
        if hop is None:
            return None
        src_site, dst_site, link = hop
        return src_site, dst_site, link, self.stats.link(src_site, dst_site)

    def partition_into(self, *groups: set[str] | list[str]) -> Partition:
        """Split the network into isolated groups (heals any prior
        partition first).

        Returns:
            The active :class:`Partition`, useful for assertions.
        """
        self.partition = Partition(groups=[set(group) for group in groups])
        return self.partition

    def heal(self) -> None:
        """Remove the active partition; traffic flows everywhere again."""
        self.partition = None

    def is_partitioned(self, source: str, destination: str) -> bool:
        """Whether traffic between two nodes is currently blocked."""
        return self.partition is not None and not self.partition.allows(
            source, destination
        )

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #

    def send(self, source: str, destination: str, message: Any) -> bool:
        """Route a message, applying partition, loss and crash rules.

        Returns ``True`` if delivery was scheduled.  Note a ``True``
        return still does not guarantee delivery: the destination may
        crash before the latency elapses.
        """
        if destination not in self.nodes:
            raise NetworkError(f"unknown destination {destination!r}")
        if source not in self.nodes:
            raise NetworkError(f"unknown source {source!r}")
        self.stats.sent += 1
        if self._m_sent is not None:
            self._m_sent.inc()
        wan = self._wan_hop(source, destination)
        if wan is not None:
            wan[3].sent += 1
            wan[3].frames += 1
            wan[3].payloads += 1
        if self.nodes[source].crashed:
            self._drop("crashed", source, destination, wan)
            return False
        if self.is_partitioned(source, destination):
            self._drop("partition", source, destination, wan)
            return False
        if self.loss_probability > 0 and self._rng.coin(self.loss_probability):
            self._drop("loss", source, destination, wan)
            return False
        if (
            wan is not None
            and wan[2].loss_probability > 0
            and self._rng.coin(wan[2].loss_probability)
        ):
            self._drop("loss", source, destination, wan)
            return False
        delay = self._scaled_latency(source, destination)
        if wan is not None:
            delay += wan[2].latency
            self._record_wan(wan, 1, delay)
        if self._m_latency is not None:
            self._m_latency.record(delay)
        # A hop span is opened only when the send happens inside an
        # active trace; it closes at delivery — or never, which is how a
        # message dropped in flight shows up in the timeline.
        hop = None
        tracer = self.tracer
        if tracer is not None and tracer.current is not None:
            hop = tracer.start_span(
                "net.hop", node=source, src=source, dst=destination,
            )
        self.sim.schedule(
            delay,
            lambda: self._deliver(source, destination, message, hop),
            label=f"net {source}->{destination}",
        )
        if self.duplication_probability > 0 and self._rng.coin(
            self.duplication_probability
        ):
            # The ghost copy takes its own (scaled) latency draw — plus
            # the same constant WAN leg — so the duplicate may arrive
            # before or after the original.
            self.stats.duplicated += 1
            if self.metrics is not None:
                self.metrics.counter("net.duplicated").inc()
            dup_delay = self._scaled_latency(source, destination)
            if wan is not None:
                dup_delay += wan[2].latency
            self.sim.schedule(
                dup_delay,
                lambda: self._deliver(source, destination, message, None),
                label=f"net dup {source}->{destination}",
            )
        return True

    def send_batch(
        self,
        source: str,
        destination: str,
        messages: list,
        *,
        size: Optional[int] = None,
    ) -> bool:
        """Route several messages as ONE wire frame.

        The frame costs one :attr:`NetworkStats.sent`, one latency draw,
        one loss coin and one duplication coin regardless of how many
        payloads it carries — batching trades wire messages for payload
        fate-sharing (a dropped frame drops every payload in it).  On
        delivery the payloads are handed to the destination's
        :meth:`Node.handle_message` one by one, in order, so receivers
        written for single messages work unchanged.

        A single-payload frame is the degenerate case: it behaves
        exactly like :meth:`send` (same decisions, same counters except
        the frame accounting), which is what keeps chaos fault injection
        meaningful for unbatched shippers.

        Returns ``True`` if the frame was accepted for delivery.
        """
        payloads = tuple(messages)
        if not payloads:
            return True
        frame = Frame(messages=payloads, size=len(payloads) if size is None else size)
        self.stats.sent += 1
        self.stats.frames += 1
        # Logical payloads (the caller's ``size``, e.g. events in an
        # "events" message), so frame_payloads / frames is the realized
        # batching factor even when a frame wraps one envelope dict.
        self.stats.frame_payloads += frame.size
        if self._m_sent is not None:
            self._m_sent.inc()
            self._m_frames.inc()
            self._m_frame_size.record(frame.size)
        if destination not in self.nodes:
            raise NetworkError(f"unknown destination {destination!r}")
        if source not in self.nodes:
            raise NetworkError(f"unknown source {source!r}")
        wan = self._wan_hop(source, destination)
        if wan is not None:
            wan[3].sent += 1
            wan[3].frames += 1
            wan[3].payloads += frame.size
        if self.nodes[source].crashed:
            self._drop("crashed", source, destination, wan)
            return False
        if self.is_partitioned(source, destination):
            self._drop("partition", source, destination, wan)
            return False
        if self.loss_probability > 0 and self._rng.coin(self.loss_probability):
            self._drop("loss", source, destination, wan)
            return False
        if (
            wan is not None
            and wan[2].loss_probability > 0
            and self._rng.coin(wan[2].loss_probability)
        ):
            self._drop("loss", source, destination, wan)
            return False
        delay = self._scaled_latency(source, destination)
        if wan is not None:
            delay += wan[2].latency
            self._record_wan(wan, frame.size, delay)
        if self._m_latency is not None:
            self._m_latency.record(delay)
        hop = None
        tracer = self.tracer
        if tracer is not None and tracer.current is not None:
            hop = tracer.start_span(
                "net.hop", node=source, src=source, dst=destination,
                payloads=frame.size,
            )
        self.sim.schedule(
            delay,
            lambda: self._deliver(source, destination, frame, hop),
            label=f"net {source}->{destination}",
        )
        if self.duplication_probability > 0 and self._rng.coin(
            self.duplication_probability
        ):
            # The whole frame is duplicated — at-least-once hazards
            # arrive in bulk, which is exactly what the idempotent apply
            # path must absorb.
            self.stats.duplicated += 1
            if self.metrics is not None:
                self.metrics.counter("net.duplicated").inc()
            dup_delay = self._scaled_latency(source, destination)
            if wan is not None:
                dup_delay += wan[2].latency
            self.sim.schedule(
                dup_delay,
                lambda: self._deliver(source, destination, frame, None),
                label=f"net dup {source}->{destination}",
            )
        return True

    def _record_wan(self, wan, payloads: int, delay: float) -> None:
        """Metric side of a cross-site frame that made it onto the wire:
        per-link ``net.wan_*`` counters plus the one-way WAN latency."""
        if self.metrics is None:
            return
        label = f"{wan[0]}->{wan[1]}"
        self.metrics.counter("net.wan_frames", link=label).inc()
        self.metrics.counter("net.wan_payloads", link=label).inc(payloads)
        self.metrics.histogram("net.wan_latency", link=label).record(delay)

    def _drop(self, reason: str, source: str, destination: str, wan=None) -> None:
        """Record a dropped message in stats, metrics, and (when inside
        an active trace) as an instantly-closed hop span."""
        setattr(
            self.stats,
            f"dropped_{reason}",
            getattr(self.stats, f"dropped_{reason}") + 1,
        )
        if wan is not None:
            link_stats = wan[3]
            setattr(
                link_stats,
                f"dropped_{reason}",
                getattr(link_stats, f"dropped_{reason}") + 1,
            )
        counter = self._m_dropped.get(reason)
        if counter is not None:
            counter.inc()
        tracer = self.tracer
        if tracer is not None and tracer.current is not None:
            tracer.end_span(
                tracer.start_span(
                    "net.hop", node=source, src=source, dst=destination,
                    status=f"dropped_{reason}",
                )
            )

    def broadcast(self, source: str, message: Any) -> int:
        """Send ``message`` from ``source`` to every other node.

        The broadcast reuses the batched decision model: ONE loss coin,
        ONE base latency draw and ONE duplication coin shared by every
        copy (a broadcast leaves the source as one wire operation that
        the fabric fans out), while partition and crash checks — and the
        :attr:`NetworkStats.sent` accounting — stay per destination,
        because reachability is a property of each link.  Per-node
        ``slow_nodes`` factors still scale the shared draw per
        destination.

        Broadcast is a LAN primitive: it ignores any attached topology
        (no WAN latency, no link coins, no per-link booking).  Cross-site
        fan-out goes through the per-site gateways, which turn it into
        explicit per-link :meth:`send_batch` frames.

        Returns the number of sends accepted for delivery.
        """
        if source not in self.nodes:
            raise NetworkError(f"unknown source {source!r}")
        destinations = [n for n in self.nodes if n != source]
        src_crashed = self.nodes[source].crashed
        lost = self.loss_probability > 0 and self._rng.coin(self.loss_probability)
        base: Optional[float] = None
        dup_base: Optional[float] = None
        accepted = 0
        for destination in destinations:
            self.stats.sent += 1
            if self._m_sent is not None:
                self._m_sent.inc()
            if src_crashed:
                self._drop("crashed", source, destination)
                continue
            if self.is_partitioned(source, destination):
                self._drop("partition", source, destination)
                continue
            if lost:
                self._drop("loss", source, destination)
                continue
            if base is None:
                # Draws happen lazily, on the first reachable
                # destination, so a fully-dropped broadcast consumes no
                # randomness beyond the loss coin.
                base = self._draw_latency()
                if self.duplication_probability > 0 and self._rng.coin(
                    self.duplication_probability
                ):
                    dup_base = self._draw_latency()
            delay = self._apply_latency_knobs(base, source, destination)
            if self._m_latency is not None:
                self._m_latency.record(delay)
            hop = None
            tracer = self.tracer
            if tracer is not None and tracer.current is not None:
                hop = tracer.start_span(
                    "net.hop", node=source, src=source, dst=destination,
                )
            self.sim.schedule(
                delay,
                lambda d=destination, h=hop: self._deliver(source, d, message, h),
                label=f"net {source}->{destination}",
            )
            if dup_base is not None:
                self.stats.duplicated += 1
                if self.metrics is not None:
                    self.metrics.counter("net.duplicated").inc()
                self.sim.schedule(
                    self._apply_latency_knobs(dup_base, source, destination),
                    lambda d=destination: self._deliver(source, d, message, None),
                    label=f"net dup {source}->{destination}",
                )
            accepted += 1
        return accepted

    def _draw_latency(self) -> float:
        if callable(self._latency):
            return max(0.0, self._latency(self._rng))
        return float(self._latency)

    def _scaled_latency(self, source: str, destination: str) -> float:
        """One latency draw with the chaos knobs applied.  With the
        knobs at their defaults this is a single extra float compare
        over the raw draw — nothing on the hot path."""
        return self._apply_latency_knobs(
            self._draw_latency(), source, destination
        )

    def _apply_latency_knobs(
        self, delay: float, source: str, destination: str
    ) -> float:
        """Scale an already-drawn delay by the chaos knobs (global
        factor plus per-endpoint slow-node multipliers)."""
        if self.latency_factor != 1.0:
            delay *= self.latency_factor
        if self.slow_nodes:
            delay *= self.slow_nodes.get(source, 1.0)
            delay *= self.slow_nodes.get(destination, 1.0)
        return delay

    def _deliver(
        self,
        source: str,
        destination: str,
        message: Any,
        hop=None,
    ) -> None:
        tracer = self.tracer
        node = self.nodes.get(destination)
        if node is None or node.crashed:
            self.stats.dropped_crashed += 1
            counter = self._m_dropped.get("crashed")
            if counter is not None:
                counter.inc()
            if hop is not None:
                tracer.end_span(hop, status="dropped_crashed")
            return
        # A partition that started while the message was in flight also
        # blocks it: partitions sever links, not just send attempts.
        if self.is_partitioned(source, destination):
            self.stats.dropped_partition += 1
            counter = self._m_dropped.get("partition")
            if counter is not None:
                counter.inc()
            # The hop span stays OPEN: the message left the source and
            # never arrived, which the timeline renders as "open".
            return
        self.stats.delivered += 1
        wan = self._wan_hop(source, destination)
        if wan is not None:
            wan[3].delivered += 1
        if self._m_delivered is not None:
            self._m_delivered.inc()
        if self.tracing:
            self._trace.append((self.sim.now, source, destination, message))
        if hop is not None:
            tracer.end_span(hop, status="delivered")
            with tracer.resume(hop.span_id):
                self._dispatch(node, source, message)
        else:
            self._dispatch(node, source, message)

    @staticmethod
    def _dispatch(node: Node, source: str, message: Any) -> None:
        """Hand a delivered wire message to the node — unpacking frames
        so handlers only ever see application payloads."""
        if type(message) is Frame:
            for payload in message.messages:
                node.handle_message(source, payload)
        else:
            node.handle_message(source, message)

    @property
    def trace(self) -> list[tuple[float, str, str, Any]]:
        """Delivered-message trace ``(time, src, dst, message)``;
        populated only while :attr:`tracing` is ``True``."""
        return list(self._trace)
