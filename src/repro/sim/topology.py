"""Site topology: named datacenters layered onto the flat network.

The simulator's :class:`~repro.sim.network.Network` is a single flat
fabric — every node one latency draw away from every other.  Real
deployments of the paper's mixed-consistency schemes are geo-distributed
(section 2.7-2.10: replicas that *cannot* all see every write promptly),
and the dominant term is the WAN link between sites, not the LAN hop
inside one.

A :class:`SiteTopology` names the sites, assigns node ids to them, and
gives every ordered site pair a :class:`WanLink` profile (extra one-way
latency plus an extra per-frame loss coin).  The network consults the
topology only when one is attached, and a link's loss coin is flipped
only when its probability is positive — so arming a topology adds **no
RNG draws** to same-site traffic and existing single-site runs stay
byte-identical.

The topology is also the unit of failure for geo chaos: site-level
partitions (one site cut off from the rest) and whole-site crashes
(every node in the site down) are drawn over *sites*, which is how a
soak fails over an entire datacenter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

__all__ = ["WanLink", "SiteTopology"]


@dataclass(frozen=True)
class WanLink:
    """The wire profile of one directed inter-site link.

    Attributes:
        latency: Extra one-way delay added to every frame crossing the
            link, on top of the network's base (LAN) draw.  Constant,
            not drawn — the WAN contribution never consumes randomness.
        loss_probability: Extra per-frame drop probability on this link,
            flipped after the network's global loss coin.  ``0.0`` (the
            default) consumes no randomness.
    """

    latency: float = 0.0
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"link latency must be >= 0, got {self.latency}")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], got {self.loss_probability}"
            )


class SiteTopology:
    """Named sites, node->site assignment, and per-link WAN profiles.

    Args:
        sites: Site (datacenter) names; at least one, duplicates
            rejected.
        default_link: The :class:`WanLink` used for any ordered site
            pair without an explicit entry.
        links: Optional ``{(src_site, dst_site): WanLink}`` overrides.
            Entries are directional; :meth:`set_link` installs a
            symmetric pair in one call.

    Example:
        >>> topo = SiteTopology(["dc1", "dc2"], default_link=WanLink(30.0))
        >>> topo.assign("gw.dc1", "dc1"); topo.assign("gw.dc2", "dc2")
        >>> topo.link("dc1", "dc2").latency
        30.0
        >>> topo.wan_link_for("gw.dc1", "gw.dc1") is None
        True
    """

    def __init__(
        self,
        sites: Iterable[str],
        *,
        default_link: Optional[WanLink] = None,
        links: Optional[Mapping[tuple[str, str], WanLink]] = None,
    ):
        names = list(sites)
        if not names:
            raise ValueError("SiteTopology needs at least one site")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate site names in {names!r}")
        self._sites = tuple(sorted(names))
        self._site_set = set(self._sites)
        self.default_link = default_link if default_link is not None else WanLink()
        self._links: dict[tuple[str, str], WanLink] = {}
        if links:
            for (src, dst), link in links.items():
                self.set_link(src, dst, link, symmetric=False)
        self._site_of: dict[str, str] = {}
        self._nodes: dict[str, list[str]] = {site: [] for site in self._sites}

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    @property
    def sites(self) -> tuple[str, ...]:
        """The site names, sorted."""
        return self._sites

    def assign(self, node_id: str, site: str) -> None:
        """Place ``node_id`` in ``site`` (reassignment moves it)."""
        if site not in self._site_set:
            raise ValueError(f"unknown site {site!r}; have {self._sites}")
        previous = self._site_of.get(node_id)
        if previous is not None:
            self._nodes[previous].remove(node_id)
        self._site_of[node_id] = site
        members = self._nodes[site]
        members.append(node_id)
        members.sort()

    def site_of(self, node_id: str) -> Optional[str]:
        """The site ``node_id`` is assigned to (``None`` if unassigned —
        unassigned nodes see no WAN behaviour at all)."""
        return self._site_of.get(node_id)

    def nodes_of(self, site: str) -> list[str]:
        """Node ids assigned to ``site``, sorted."""
        if site not in self._site_set:
            raise ValueError(f"unknown site {site!r}; have {self._sites}")
        return list(self._nodes[site])

    # ------------------------------------------------------------------ #
    # Links
    # ------------------------------------------------------------------ #

    def set_link(
        self, src: str, dst: str, link: WanLink, *, symmetric: bool = True
    ) -> None:
        """Install a link profile for ``src -> dst`` (and the reverse
        direction too, unless ``symmetric=False``)."""
        for site in (src, dst):
            if site not in self._site_set:
                raise ValueError(f"unknown site {site!r}; have {self._sites}")
        if src == dst:
            raise ValueError("a WAN link connects two distinct sites")
        self._links[(src, dst)] = link
        if symmetric:
            self._links[(dst, src)] = link

    def link(self, src_site: str, dst_site: str) -> Optional[WanLink]:
        """The :class:`WanLink` for an ordered site pair; ``None`` for
        same-site traffic (no WAN leg)."""
        if src_site == dst_site:
            return None
        return self._links.get((src_site, dst_site), self.default_link)

    def latency_between(self, src_site: str, dst_site: str) -> float:
        """One-way WAN latency between two sites (0 when co-located)."""
        link = self.link(src_site, dst_site)
        return link.latency if link is not None else 0.0

    def wan_link_for(
        self, src_node: str, dst_node: str
    ) -> Optional[tuple[str, str, WanLink]]:
        """``(src_site, dst_site, link)`` when the two nodes sit in
        different sites; ``None`` for same-site or unassigned nodes.
        This is the single lookup the network performs per send."""
        src_site = self._site_of.get(src_node)
        if src_site is None:
            return None
        dst_site = self._site_of.get(dst_node)
        if dst_site is None or dst_site == src_site:
            return None
        return (src_site, dst_site, self.link(src_site, dst_site))

    # ------------------------------------------------------------------ #
    # Fault units (consumed by repro.chaos)
    # ------------------------------------------------------------------ #

    def site_partition_groups(self, *isolated: str) -> list[list[str]]:
        """Partition groups that cut each named site off from the rest.

        Returns one group per isolated site plus one group holding every
        remaining assigned node — the shape
        :meth:`~repro.sim.network.Network.partition_into` and the
        failure injector take for a site-level partition.
        """
        if not isolated:
            raise ValueError("name at least one site to isolate")
        groups: list[list[str]] = []
        cut = set()
        for site in isolated:
            members = self.nodes_of(site)
            groups.append(members)
            cut.update(members)
        rest = sorted(node for node in self._site_of if node not in cut)
        groups.append(rest)
        return [group for group in groups if group]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SiteTopology({list(self._sites)!r}, "
            f"{len(self._site_of)} nodes assigned)"
        )
