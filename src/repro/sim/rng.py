"""Seeded random-variate helpers for workloads and network models.

All randomness in the library flows through :class:`SeededRNG` so that a
single seed pins an entire experiment.  The class wraps
:class:`random.Random` and adds the variates the benchmark workloads need:
exponential inter-arrival times (Poisson processes) and Zipf-skewed key
choice (hot-entity contention, paper section 2.10 experiments).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class SeededRNG:
    """A deterministic random stream.

    Args:
        seed: Any integer; equal seeds produce equal streams.
    """

    def __init__(self, seed: int = 0):
        self._random = random.Random(seed)
        self.seed = seed

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """A uniform float in ``[low, high)``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """A uniform integer in ``[low, high]`` (inclusive)."""
        return self._random.randint(low, high)

    def exponential(self, mean: float) -> float:
        """An exponential variate with the given mean.

        Used as the inter-arrival time of a Poisson arrival process with
        rate ``1 / mean``.
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def normal(self, mu: float, sigma: float) -> float:
        """A normal variate (used for jittered latencies, floored at 0)."""
        return self._random.gauss(mu, sigma)

    def choice(self, items: Sequence[T]) -> T:
        """A uniformly random element of ``items``."""
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """``k`` distinct elements of ``items`` without replacement."""
        return self._random.sample(items, k)

    def random(self) -> float:
        """A uniform float in ``[0, 1)``."""
        return self._random.random()

    def coin(self, probability: float) -> bool:
        """``True`` with the given probability."""
        return self._random.random() < probability


class ZipfGenerator:
    """Zipf-distributed indices over ``0 .. n - 1``.

    Pre-computes the cumulative distribution once so each draw is a
    binary search; ``theta = 0`` degenerates to uniform and larger theta
    concentrates mass on low indices ("hot keys").

    Args:
        rng: The random stream to draw from.
        n: Number of distinct items.
        theta: Skew parameter (0 = uniform; ~0.99 is the YCSB default).
    """

    def __init__(self, rng: SeededRNG, n: int, theta: float = 0.99):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta}")
        self._rng = rng
        self.n = n
        self.theta = theta
        weights = [1.0 / ((rank + 1) ** theta) for rank in range(n)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def draw(self) -> int:
        """Return an index in ``[0, n)`` with Zipf(theta) probability."""
        import bisect

        return bisect.bisect_left(self._cdf, self._rng.random())

    def draw_many(self, count: int) -> list[int]:
        """Return ``count`` independent draws."""
        return [self.draw() for _ in range(count)]


def poisson_arrivals(
    rng: SeededRNG,
    rate: float,
    duration: float,
    start: float = 0.0,
    limit: Optional[int] = None,
) -> list[float]:
    """Arrival timestamps of a Poisson process.

    Args:
        rng: Random stream.
        rate: Mean arrivals per time unit.
        duration: Length of the observation window.
        start: Timestamp of the window start.
        limit: Optional hard cap on the number of arrivals.

    Returns:
        Sorted arrival times in ``[start, start + duration)``.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    times: list[float] = []
    now = start
    end = start + duration
    while True:
        now += rng.exponential(1.0 / rate)
        if now >= end:
            break
        times.append(now)
        if limit is not None and len(times) >= limit:
            break
    return times
