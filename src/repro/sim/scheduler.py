"""Discrete-event simulator: a virtual clock and an ordered event heap.

The simulator is the root object of every experiment.  All other
subsystems (network, queues, replication schemes, process engine) obtain
time from it and schedule future work on it, so a whole distributed
scenario unfolds deterministically inside one Python process.

Determinism contract
--------------------
Events fire in ``(time, sequence-number)`` order.  The sequence number is
the order of scheduling, so ties at the same virtual time are broken by
insertion order, never by hash order or wall-clock noise.  Given the same
seed and the same sequence of ``schedule`` calls, two runs produce
byte-identical histories — which is what makes the experiment suite
reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class ScheduledEvent:
    """A handle for a callback scheduled to fire at a virtual time.

    The heap itself stores plain ``(time, seq, event)`` tuples — tuple
    comparison is far cheaper than dataclass ordering, and ``(time,
    seq)`` is unique so the handle is never compared.  ``cancelled``
    events stay in the heap but are skipped when popped (lazy deletion).

    ``ctx`` is the span id that was ambient when the event was
    scheduled (``None`` with tracing off): firing resumes that span, so
    deferred work attaches to the trace of whatever caused it.
    """

    __slots__ = ("time", "seq", "action", "label", "cancelled", "_sim", "ctx")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], Any],
        label: str = "",
        sim: Optional["Simulator"] = None,
        ctx: Optional[str] = None,
    ):
        self.time = time
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False
        self._sim = sim
        self.ctx = ctx

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            # Keep the owning simulator's live-event counter exact; a
            # cancel after the event fired (or was dropped) is a no-op
            # because the pop detached the handle.
            if self._sim is not None:
                self._sim._live -= 1
                self._sim = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "live"
        return (
            f"ScheduledEvent(t={self.time}, seq={self.seq}, "
            f"label={self.label!r}, {state})"
        )


class Simulator:
    """A deterministic discrete-event loop with a virtual clock.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
        >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
        >>> _ = sim.run()
        >>> fired
        [2.0, 5.0]

    Args:
        seed: Seed for the simulator-owned random stream (``self.rng``).
            Subsystems that need randomness should draw from this stream
            (or fork it via :meth:`fork_rng`) so a single seed pins the
            whole run.
        tracer: Optional :class:`repro.obs.trace.Tracer`.  When set, the
            ambient span is captured at ``schedule()`` time and resumed
            around the callback when it fires — the causal carrier for
            deferred work.  Components built on this simulator default
            their own tracer to this one.
        metrics: Optional :class:`repro.obs.metrics.MetricsRegistry`;
            the simulator counts fired events into it, and components
            built on this simulator default their registry to this one.
    """

    def __init__(self, seed: int = 0, tracer=None, metrics=None):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._seq: int = 0
        self._processed: int = 0
        self._live: int = 0
        from repro.sim.rng import SeededRNG

        self.rng = SeededRNG(seed)
        self._seed = seed
        self._fork_count = 0
        self.tracer = tracer
        self.metrics = metrics
        self._fired_counter = (
            metrics.counter("sim.events_fired") if metrics is not None else None
        )

    def instrument(self, tracer=None, metrics=None) -> "Simulator":
        """Attach observability handles after construction (the cluster
        builder uses this; components created later inherit them)."""
        if tracer is not None:
            self.tracer = tracer
        if metrics is not None:
            self.metrics = metrics
            self._fired_counter = metrics.counter("sim.events_fired")
        return self

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``action`` to run ``delay`` virtual time units from now.

        Args:
            delay: Non-negative offset from the current virtual time.
            action: Zero-argument callable invoked when the event fires.
            label: Optional tag used in tracing and error messages.

        Returns:
            A handle whose :meth:`ScheduledEvent.cancel` prevents firing.

        Raises:
            SimulationError: If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        tracer = self.tracer
        event = ScheduledEvent(
            time=self.now + delay, seq=self._seq, action=action, label=label,
            sim=self, ctx=tracer.capture() if tracer is not None else None,
        )
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``action`` at an absolute virtual time (``>= now``)."""
        return self.schedule(time - self.now, action, label=label)

    def call_soon(self, action: Callable[[], Any], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` at the current virtual time (after pending
        events already scheduled for this instant)."""
        return self.schedule(0.0, action, label=label)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Fire the single next non-cancelled event.

        Returns:
            ``True`` if an event fired, ``False`` if the heap is empty.
        """
        while self._heap:
            time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if time < self.now:
                raise SimulationError(
                    f"event time {time} precedes clock {self.now}"
                )
            self._live -= 1
            event._sim = None  # fired: later cancel() calls are no-ops
            self.now = time
            self._processed += 1
            if self._fired_counter is not None:
                self._fired_counter.inc()
            if self.tracer is not None and event.ctx is not None:
                with self.tracer.resume(event.ctx):
                    event.action()
            else:
                event.action()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the heap drains, the clock passes ``until``,
        or ``max_events`` have fired.

        Events scheduled exactly at ``until`` still fire; the first event
        strictly later than ``until`` does not, and the clock is advanced
        to ``until`` so follow-up ``run`` calls resume cleanly.

        Returns:
            The number of events fired by this call.
        """
        # One fused loop: the old _peek-then-step pair traversed the heap
        # head twice per event; here each event is examined exactly once.
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        tracer = self.tracer
        fired_counter = self._fired_counter
        while heap:
            if max_events is not None and fired >= max_events:
                return fired
            time, _seq, event = heap[0]
            if event.cancelled:
                pop(heap)
                continue
            if until is not None and time > until:
                self.now = max(self.now, until)
                return fired
            pop(heap)
            self._live -= 1
            event._sim = None
            self.now = time
            self._processed += 1
            if fired_counter is not None:
                fired_counter.inc()
            if tracer is not None and event.ctx is not None:
                with tracer.resume(event.ctx):
                    event.action()
            else:
                event.action()
            fired += 1
        if until is not None:
            self.now = max(self.now, until)
        return fired

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run for ``duration`` virtual time units from the current clock."""
        return self.run(until=self.now + duration, max_events=max_events)

    def _peek(self) -> Optional[ScheduledEvent]:
        """Return the next live event without firing it, dropping
        cancelled entries encountered along the way."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][2] if self._heap else None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events.

        O(1): a live counter maintained on schedule, cancel and pop
        (the heap may still physically hold cancelled entries awaiting
        lazy deletion, but they are not counted).
        """
        return self._live

    @property
    def processed(self) -> int:
        """Total number of events fired since construction."""
        return self._processed

    @property
    def seed(self) -> int:
        """The seed this simulator was constructed with."""
        return self._seed

    def fork_rng(self) -> "SeededRNG":
        """Return an independent deterministic random stream.

        Each call derives a distinct stream from the simulator seed, so
        components can own private randomness without perturbing each
        other's draws (adding a component never changes another
        component's variates).
        """
        from repro.sim.rng import SeededRNG

        self._fork_count += 1
        return SeededRNG((self._seed * 1_000_003 + self._fork_count) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self.now:.3f}, pending={self.pending}, "
            f"processed={self._processed})"
        )
