"""Commutative field deltas — SAP's "commutative update strategy".

Principle 2.7 notes that SAP handles many updates as *deltas* ("+5 to
quantity on hand") rather than overwrites ("quantity is now 12"), and
principle 2.8 explains why: a delta describes what a transaction *did*,
so concurrent transactions compose by simple addition, with no lost
updates and no coordination.  This module provides:

* :class:`Delta` — an immutable bundle of per-field adjustments.
* :func:`apply_delta` — fold a delta into a plain ``dict`` state.
* :func:`compose` — combine deltas into one (order-independent).

Deltas are also the payload of ``DELTA`` events in the log-structured
database (:mod:`repro.lsdb`), which is how "the current state is a rollup
aggregation of the log" (paper section 3.1) ends up concrete: the rollup
just applies deltas in log order, and because they commute, *any* order
that contains the same deltas yields the same state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping


@dataclass(frozen=True)
class Delta:
    """An immutable set of commutative field adjustments.

    Attributes:
        numeric: Field name -> signed amount to add.
        set_adds: Field name -> elements to insert into a set field.
        set_removes: Field name -> elements to mark removed from a set
            field (tombstone semantics: a remove beats a concurrent add
            of the same element only if applied after it in the rollup;
            for true add-wins use :class:`repro.merge.sets.ORSet`).

    Example:
        >>> delta = Delta(numeric={"quantity": -3})
        >>> apply_delta({"quantity": 10}, delta)
        {'quantity': 7}
    """

    numeric: Mapping[str, float] = field(default_factory=dict)
    set_adds: Mapping[str, frozenset] = field(default_factory=dict)
    set_removes: Mapping[str, frozenset] = field(default_factory=dict)

    @staticmethod
    def add(field_name: str, amount: float) -> "Delta":
        """A delta adjusting one numeric field by ``amount``."""
        return Delta(numeric={field_name: amount})

    @staticmethod
    def insert(field_name: str, *elements: Any) -> "Delta":
        """A delta inserting ``elements`` into one set field."""
        return Delta(set_adds={field_name: frozenset(elements)})

    @staticmethod
    def discard(field_name: str, *elements: Any) -> "Delta":
        """A delta removing ``elements`` from one set field."""
        return Delta(set_removes={field_name: frozenset(elements)})

    def invert(self) -> "Delta":
        """The compensating delta: applying ``d`` then ``d.invert()``
        restores every numeric field (set ops swap add/remove).

        This is what makes delta-recorded transactions cheap to
        compensate (principles 2.9 and 2.10): the infrastructure can
        undo a business action mechanically.
        """
        return Delta(
            numeric={name: -amount for name, amount in self.numeric.items()},
            set_adds=dict(self.set_removes),
            set_removes=dict(self.set_adds),
        )

    def is_empty(self) -> bool:
        """Whether the delta adjusts nothing."""
        return not (self.numeric or self.set_adds or self.set_removes)

    def fields(self) -> set[str]:
        """All field names this delta touches."""
        return set(self.numeric) | set(self.set_adds) | set(self.set_removes)

    def to_payload(self) -> dict[str, Any]:
        """A JSON-friendly representation for log events."""
        return {
            "numeric": dict(self.numeric),
            "set_adds": {name: sorted(vals) for name, vals in self.set_adds.items()},
            "set_removes": {
                name: sorted(vals) for name, vals in self.set_removes.items()
            },
        }

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "Delta":
        """Inverse of :meth:`to_payload`."""
        return Delta(
            numeric=dict(payload.get("numeric", {})),
            set_adds={
                name: frozenset(vals)
                for name, vals in payload.get("set_adds", {}).items()
            },
            set_removes={
                name: frozenset(vals)
                for name, vals in payload.get("set_removes", {}).items()
            },
        )


def apply_delta(state: Mapping[str, Any], delta: Delta) -> dict[str, Any]:
    """Return a new state dict with ``delta`` folded in.

    Numeric fields default to 0 when absent; set fields default to an
    empty frozenset.  The input mapping is never mutated.
    """
    result: dict[str, Any] = dict(state)
    for name, amount in delta.numeric.items():
        result[name] = result.get(name, 0) + amount
    for name, additions in delta.set_adds.items():
        current = result.get(name, frozenset())
        result[name] = frozenset(current) | additions
    for name, removals in delta.set_removes.items():
        current = result.get(name, frozenset())
        result[name] = frozenset(current) - removals
    return result


def compose(deltas: Iterable[Delta]) -> Delta:
    """Combine many deltas into one equivalent delta.

    For numeric fields composition is exact and order-independent
    (addition commutes).  For set fields, composition applies adds and
    removes of *later* deltas over earlier ones; two deltas touching the
    same set element with opposite operations do not commute, and callers
    who care should keep such operations on separate elements (the
    :class:`repro.merge.sets.ORSet` type handles the general case).
    """
    numeric: dict[str, float] = {}
    set_adds: dict[str, set] = {}
    set_removes: dict[str, set] = {}
    for delta in deltas:
        for name, amount in delta.numeric.items():
            numeric[name] = numeric.get(name, 0) + amount
        for name, additions in delta.set_adds.items():
            set_adds.setdefault(name, set()).update(additions)
            set_removes.get(name, set()).difference_update(additions)
        for name, removals in delta.set_removes.items():
            set_removes.setdefault(name, set()).update(removals)
            set_adds.get(name, set()).difference_update(removals)
    return Delta(
        numeric={name: amount for name, amount in numeric.items() if amount != 0},
        set_adds={
            name: frozenset(vals) for name, vals in set_adds.items() if vals
        },
        set_removes={
            name: frozenset(vals) for name, vals in set_removes.items() if vals
        },
    )


def numeric_only(delta: Delta) -> bool:
    """Whether ``delta`` touches only numeric fields (and therefore
    commutes exactly with every other numeric-only delta)."""
    return not (delta.set_adds or delta.set_removes)
