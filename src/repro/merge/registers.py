"""Convergent registers: last-update-wins and multi-value.

Registers model singly-valued fields that are overwritten rather than
composed.  The paper names "last-update wins" as one local
conflict-resolution option (principle 2.10); the multi-value register is
the honest alternative that *exposes* concurrency to a business-level
resolver instead of silently dropping one side (Dynamo-style siblings,
paper reference [3]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet

from repro.merge.clock import Ordering, VectorClock


@dataclass(frozen=True)
class LWWRegister:
    """Last-update-wins register.

    Ties on timestamp are broken by replica id so that merge stays
    deterministic and commutative — two replicas merging each other's
    states agree on the winner regardless of merge order.

    Example:
        >>> a = LWWRegister("x", timestamp=1, replica_id="r1")
        >>> b = LWWRegister("y", timestamp=2, replica_id="r2")
        >>> a.merge(b).value
        'y'
    """

    stored: Any = None
    timestamp: int = 0
    replica_id: str = ""

    def assign(self, value: Any, timestamp: int, replica_id: str) -> "LWWRegister":
        """Return a register holding ``value`` stamped at ``timestamp``."""
        return LWWRegister(value, timestamp, replica_id)

    def merge(self, other: "LWWRegister") -> "LWWRegister":
        """Keep the write with the larger ``(timestamp, replica_id)``.

        A full stamp collision (same timestamp *and* replica — only
        possible through misuse, since a replica stamps each write
        uniquely) falls back to comparing value representations, so
        merge stays commutative even then.
        """
        own_stamp = (self.timestamp, self.replica_id)
        other_stamp = (other.timestamp, other.replica_id)
        if other_stamp > own_stamp:
            return other
        if other_stamp == own_stamp and repr(other.stored) > repr(self.stored):
            return other
        return self

    @property
    def value(self) -> Any:
        """The current (winning) value."""
        return self.stored


@dataclass(frozen=True)
class _Sibling:
    """One concurrent candidate value inside an :class:`MVRegister`."""

    stored: Any
    clock: VectorClock

    def __hash__(self) -> int:
        return hash((repr(self.stored), self.clock))


class MVRegister:
    """Multi-value register: concurrent writes become siblings.

    A write replaces every sibling it causally dominates; merges keep
    all pairwise-concurrent candidates.  ``value`` is therefore a *set* —
    when it has more than one element the application (or the conflict
    resolver, :mod:`repro.core.conflict`) must reconcile, which is exactly
    the "handle conflicts, don't hide them" stance of principle 2.8.
    """

    def __init__(self, siblings: FrozenSet[_Sibling] | None = None):
        self._siblings: frozenset[_Sibling] = siblings or frozenset()

    def assign(self, value: Any, clock: VectorClock) -> "MVRegister":
        """Write ``value`` at ``clock``, superseding dominated siblings."""
        survivors = {
            sibling
            for sibling in self._siblings
            if sibling.clock.compare(clock) is Ordering.CONCURRENT
        }
        survivors.add(_Sibling(value, clock))
        return MVRegister(frozenset(survivors))

    def merge(self, other: "MVRegister") -> "MVRegister":
        """Union of siblings, dropping any dominated by another sibling."""
        candidates = set(self._siblings) | set(other._siblings)
        survivors = {
            sibling
            for sibling in candidates
            if not any(
                contender.clock.compare(sibling.clock) is Ordering.AFTER
                for contender in candidates
            )
        }
        return MVRegister(frozenset(survivors))

    @property
    def value(self) -> set[Any]:
        """All concurrent candidate values (empty set if never written)."""
        return {sibling.stored for sibling in self._siblings}

    @property
    def is_conflicted(self) -> bool:
        """Whether more than one concurrent candidate survives."""
        return len(self._siblings) > 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MVRegister):
            return NotImplemented
        return self._siblings == other._siblings

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MVRegister(value={self.value!r})"
