"""Convergent counters: grow-only and increment/decrement.

Counters are the canonical "commutative update strategy" the paper
attributes to SAP (principle 2.7, "deltas"): recording *how much an
account changed* instead of *the new balance* makes concurrent updates
composable without coordination (principle 2.8).
"""

from __future__ import annotations

from typing import Mapping


class GCounter:
    """A grow-only counter: per-replica non-negative contributions.

    Example:
        >>> a = GCounter().increment("r1", 3)
        >>> b = GCounter().increment("r2", 4)
        >>> a.merge(b).value
        7
    """

    def __init__(self, counts: Mapping[str, int] | None = None):
        self._counts: dict[str, int] = dict(counts or {})

    def increment(self, replica_id: str, amount: int = 1) -> "GCounter":
        """Return a copy with ``amount`` added to ``replica_id``'s slot.

        Raises:
            ValueError: If ``amount`` is negative (use :class:`PNCounter`
                for decrementable counts).
        """
        if amount < 0:
            raise ValueError(f"GCounter cannot decrease (amount={amount})")
        merged = dict(self._counts)
        merged[replica_id] = merged.get(replica_id, 0) + amount
        return GCounter(merged)

    def merge(self, other: "GCounter") -> "GCounter":
        """Component-wise maximum of the two contribution maps."""
        merged = dict(self._counts)
        for replica_id, count in other._counts.items():
            merged[replica_id] = max(merged.get(replica_id, 0), count)
        return GCounter(merged)

    @property
    def value(self) -> int:
        """The counter total (sum of all replica contributions)."""
        return sum(self._counts.values())

    def contribution(self, replica_id: str) -> int:
        """How much ``replica_id`` has added."""
        return self._counts.get(replica_id, 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GCounter):
            return NotImplemented
        keys = set(self._counts) | set(other._counts)
        return all(
            self._counts.get(key, 0) == other._counts.get(key, 0) for key in keys
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GCounter(value={self.value})"


class PNCounter:
    """An increment/decrement counter built from two grow-only halves.

    The positive half accumulates increments and the negative half
    accumulates decrements; the value is their difference.  This is the
    natural representation of an account balance as the aggregate of
    deposits and withdrawals (paper sections 2.8 and 3.2).
    """

    def __init__(
        self,
        positive: GCounter | None = None,
        negative: GCounter | None = None,
    ):
        self._positive = positive or GCounter()
        self._negative = negative or GCounter()

    def increment(self, replica_id: str, amount: int = 1) -> "PNCounter":
        """Return a copy with ``amount`` added at ``replica_id``."""
        if amount < 0:
            return self.decrement(replica_id, -amount)
        return PNCounter(self._positive.increment(replica_id, amount), self._negative)

    def decrement(self, replica_id: str, amount: int = 1) -> "PNCounter":
        """Return a copy with ``amount`` subtracted at ``replica_id``."""
        if amount < 0:
            return self.increment(replica_id, -amount)
        return PNCounter(self._positive, self._negative.increment(replica_id, amount))

    def merge(self, other: "PNCounter") -> "PNCounter":
        """Merge both halves independently."""
        return PNCounter(
            self._positive.merge(other._positive),
            self._negative.merge(other._negative),
        )

    @property
    def value(self) -> int:
        """Increments minus decrements."""
        return self._positive.value - self._negative.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PNCounter):
            return NotImplemented
        return self._positive == other._positive and self._negative == other._negative

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PNCounter(value={self.value})"
