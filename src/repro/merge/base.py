"""The mergeable-value protocol shared by all convergent types.

Principle 2.10 asks for "a single end-to-end conflict-handling mechanism"
whether conflicting updates happened on one replica (solipsistic
transactions) or on many (subjective replicas).  The mechanism this
library uses is *state merge*: every convergent type exposes
``merge(other)`` satisfying the join-semilattice laws —

* **commutative**: ``a.merge(b) == b.merge(a)``
* **associative**: ``a.merge(b).merge(c) == a.merge(b.merge(c))``
* **idempotent**:  ``a.merge(a) == a``

— which together guarantee that replicas applying the same set of updates
in any order, any number of times, converge to the same value (eventual
consistency, paper section 1).  The property-based tests in
``tests/test_merge_properties.py`` check these laws with hypothesis.
"""

from __future__ import annotations

from typing import Any, Protocol, TypeVar, runtime_checkable

M = TypeVar("M", bound="Mergeable")


@runtime_checkable
class Mergeable(Protocol):
    """Protocol for convergent (CRDT-style) values."""

    def merge(self: M, other: M) -> M:
        """Return the least upper bound of the two states.

        Implementations must be pure (neither operand is mutated) and
        satisfy commutativity, associativity and idempotence.
        """
        ...

    @property
    def value(self) -> Any:
        """The application-visible value of this state."""
        ...


def merge_all(states: list[M]) -> M:
    """Fold ``merge`` over a non-empty list of states.

    Order does not matter by the semilattice laws; this helper exists so
    call sites read as intent ("converge these replicas") rather than a
    reduce expression.
    """
    if not states:
        raise ValueError("merge_all requires at least one state")
    result = states[0]
    for state in states[1:]:
        result = result.merge(state)
    return result
