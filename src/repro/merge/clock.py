"""Logical clocks and version vectors.

Subjective consistency (paper section 1) means each replica acts on its
local view; deciding later whether two updates were causally ordered or
concurrent requires logical time.  This module provides:

* :class:`LamportClock` — scalar logical time, totally ordered, used for
  last-update-wins tie-breaking (principle 2.10).
* :class:`VectorClock` — per-replica counters with a partial order that
  distinguishes *happened-before* from *concurrent*; the input to the
  conflict resolver.
* :class:`VersionVector` — a vector clock used as replica state summary
  for anti-entropy ("what have you seen that I haven't?").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping


class Ordering(enum.Enum):
    """Result of comparing two vector clocks."""

    BEFORE = "before"
    AFTER = "after"
    EQUAL = "equal"
    CONCURRENT = "concurrent"


class LamportClock:
    """A scalar logical clock (Lamport 1978).

    Each replica owns one; :meth:`tick` stamps local events and
    :meth:`observe` merges a remote stamp so causality is respected.
    """

    def __init__(self, start: int = 0):
        self.time = start

    def tick(self) -> int:
        """Advance for a local event and return the new stamp."""
        self.time += 1
        return self.time

    def observe(self, remote_time: int) -> int:
        """Merge a stamp received from another replica and tick."""
        self.time = max(self.time, remote_time) + 1
        return self.time


@dataclass(frozen=True)
class VectorClock:
    """An immutable vector clock: replica id -> event count.

    Immutability keeps clocks safe to embed in log events; all update
    operations return new instances.

    Example:
        >>> a = VectorClock().increment("r1")
        >>> b = VectorClock().increment("r2")
        >>> a.compare(b)
        <Ordering.CONCURRENT: 'concurrent'>
        >>> a.compare(a.increment("r1"))
        <Ordering.BEFORE: 'before'>
    """

    counts: Mapping[str, int] = field(default_factory=dict)

    def increment(self, replica_id: str) -> "VectorClock":
        """Return a copy with ``replica_id``'s component advanced by one."""
        merged = dict(self.counts)
        merged[replica_id] = merged.get(replica_id, 0) + 1
        return VectorClock(merged)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (the join of the two histories)."""
        merged = dict(self.counts)
        for replica_id, count in other.counts.items():
            merged[replica_id] = max(merged.get(replica_id, 0), count)
        return VectorClock(merged)

    def get(self, replica_id: str) -> int:
        """This clock's component for ``replica_id`` (0 if absent)."""
        return self.counts.get(replica_id, 0)

    def compare(self, other: "VectorClock") -> Ordering:
        """Causal comparison.

        Returns:
            ``BEFORE`` if self happened-before other, ``AFTER`` for the
            converse, ``EQUAL`` if identical, else ``CONCURRENT``.
        """
        at_most = all(
            count <= other.get(replica_id) for replica_id, count in self.counts.items()
        )
        at_least = all(
            count <= self.get(replica_id) for replica_id, count in other.counts.items()
        )
        if at_most and at_least:
            return Ordering.EQUAL
        if at_most:
            return Ordering.BEFORE
        if at_least:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def dominates(self, other: "VectorClock") -> bool:
        """Whether this clock has seen everything ``other`` has."""
        return self.compare(other) in (Ordering.AFTER, Ordering.EQUAL)

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Whether neither clock causally precedes the other."""
        return self.compare(other) is Ordering.CONCURRENT

    def replicas(self) -> Iterable[str]:
        """Replica ids with a non-zero component."""
        return self.counts.keys()

    def to_dict(self) -> dict[str, int]:
        """A plain-dict copy (for serialization into log events)."""
        return dict(self.counts)

    def __hash__(self) -> int:
        return hash(frozenset(self.counts.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self.compare(other) is Ordering.EQUAL

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self.counts.items()))
        return f"VectorClock({{{inner}}})"


class VersionVector:
    """A mutable per-replica summary of observed events.

    Where :class:`VectorClock` stamps individual events, a version vector
    summarises a replica's whole history — "I have applied events 1..n
    from each origin" — and drives anti-entropy: the difference between
    two version vectors is exactly the set of events one side is missing.
    """

    def __init__(self, counts: Mapping[str, int] | None = None):
        self._counts: dict[str, int] = dict(counts or {})

    def record(self, replica_id: str, sequence: int) -> None:
        """Note that events from ``replica_id`` up to ``sequence`` have
        been applied (monotone: lower values are ignored)."""
        if sequence > self._counts.get(replica_id, 0):
            self._counts[replica_id] = sequence

    def advance(self, replica_id: str) -> int:
        """Advance ``replica_id``'s component by one and return it."""
        self._counts[replica_id] = self._counts.get(replica_id, 0) + 1
        return self._counts[replica_id]

    def get(self, replica_id: str) -> int:
        """Highest applied sequence from ``replica_id`` (0 if none)."""
        return self._counts.get(replica_id, 0)

    def merge(self, other: "VersionVector") -> None:
        """Absorb ``other`` (component-wise maximum), in place."""
        for replica_id, count in other._counts.items():
            self.record(replica_id, count)

    def missing_from(self, other: "VersionVector") -> dict[str, tuple[int, int]]:
        """Ranges this vector lacks relative to ``other``.

        Returns:
            ``{origin: (have, want)}`` for each origin where ``other``
            has seen more; the receiver should fetch events
            ``have+1 .. want`` from that origin.
        """
        gaps: dict[str, tuple[int, int]] = {}
        for replica_id, count in other._counts.items():
            have = self.get(replica_id)
            if count > have:
                gaps[replica_id] = (have, count)
        return gaps

    def snapshot(self) -> VectorClock:
        """An immutable :class:`VectorClock` view of the current state."""
        return VectorClock(dict(self._counts))

    def to_dict(self) -> dict[str, int]:
        """A plain-dict copy."""
        return dict(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        keys = set(self._counts) | set(other._counts)
        return all(self.get(key) == other.get(key) for key in keys)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._counts.items()))
        return f"VersionVector({{{inner}}})"
