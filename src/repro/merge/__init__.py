"""Convergent (mergeable) types, commutative deltas and logical clocks.

These are the primitives behind the paper's conflict-handling story:

* principle 2.7 — "insert-only" plus SAP's *commutative update strategy*
  (:mod:`repro.merge.deltas`);
* principle 2.8 — record operations, not consequences, so concurrent
  work composes (:class:`PNCounter`, :class:`ORSet`, ...);
* principle 2.10 — one end-to-end conflict mechanism for local and
  cross-replica conflicts, built on the merge laws in
  :mod:`repro.merge.base`.
"""

from repro.merge.base import Mergeable, merge_all
from repro.merge.clock import LamportClock, Ordering, VectorClock, VersionVector
from repro.merge.counters import GCounter, PNCounter
from repro.merge.deltas import Delta, apply_delta, compose, numeric_only
from repro.merge.registers import LWWRegister, MVRegister
from repro.merge.sets import GSet, ORSet, TwoPhaseSet

__all__ = [
    "Mergeable",
    "merge_all",
    "LamportClock",
    "Ordering",
    "VectorClock",
    "VersionVector",
    "GCounter",
    "PNCounter",
    "Delta",
    "apply_delta",
    "compose",
    "numeric_only",
    "LWWRegister",
    "MVRegister",
    "GSet",
    "ORSet",
    "TwoPhaseSet",
]
