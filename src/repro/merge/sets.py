"""Convergent sets: grow-only, two-phase and observed-remove.

Sets model collections maintained insert-only (principle 2.7): a delete
is not a physical removal but a durable *mark* — a tombstone in the
two-phase set, an observed-tag removal in the OR-set.  Past membership
therefore stays reconstructible, which is what lets eventual consistency
and auditing coexist.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Hashable, Iterable, Mapping


class GSet:
    """A grow-only set; merge is union."""

    def __init__(self, items: Iterable[Hashable] = ()):
        self._items: frozenset[Hashable] = frozenset(items)

    def add(self, item: Hashable) -> "GSet":
        """Return a copy containing ``item``."""
        return GSet(self._items | {item})

    def merge(self, other: "GSet") -> "GSet":
        """Union of both element sets."""
        return GSet(self._items | other._items)

    @property
    def value(self) -> frozenset:
        """The current membership."""
        return self._items

    def __contains__(self, item: Hashable) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GSet):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GSet({sorted(map(repr, self._items))})"


class TwoPhaseSet:
    """Add/remove set where removal is a permanent tombstone.

    Once removed, an element can never be re-added — the tombstone wins
    every merge.  This matches "mark data as deleted, rather than
    actually deleting" (principle 2.7) for data whose identity is never
    recycled (e.g. cancelled document numbers).
    """

    def __init__(
        self,
        added: Iterable[Hashable] = (),
        removed: Iterable[Hashable] = (),
    ):
        self._added: frozenset[Hashable] = frozenset(added)
        self._removed: frozenset[Hashable] = frozenset(removed)

    def add(self, item: Hashable) -> "TwoPhaseSet":
        """Return a copy with ``item`` added (no effect if tombstoned)."""
        return TwoPhaseSet(self._added | {item}, self._removed)

    def remove(self, item: Hashable) -> "TwoPhaseSet":
        """Return a copy with ``item`` tombstoned.

        Removing an element never observed is permitted and simply
        pre-poisons it (the tombstone will also defeat later adds).
        """
        return TwoPhaseSet(self._added, self._removed | {item})

    def merge(self, other: "TwoPhaseSet") -> "TwoPhaseSet":
        """Union both the add-set and the tombstone-set."""
        return TwoPhaseSet(
            self._added | other._added, self._removed | other._removed
        )

    @property
    def value(self) -> frozenset:
        """Live membership: added and not tombstoned."""
        return self._added - self._removed

    @property
    def tombstones(self) -> frozenset:
        """All permanently removed elements (audit view)."""
        return self._removed

    def __contains__(self, item: Hashable) -> bool:
        return item in self.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TwoPhaseSet):
            return NotImplemented
        return self._added == other._added and self._removed == other._removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TwoPhaseSet(live={sorted(map(repr, self.value))})"


class ORSet:
    """Observed-remove set: add-wins semantics with unique tags.

    Every add attaches a unique tag; a remove deletes exactly the tags it
    has *observed*.  A concurrent add (whose tag the remover never saw)
    survives, so re-adding after removal works — unlike
    :class:`TwoPhaseSet`.  This is the right set for collections whose
    members legitimately come and go (e.g. a customer's open orders).
    """

    def __init__(
        self,
        entries: Mapping[Hashable, FrozenSet[str]] | None = None,
        tombstones: Iterable[str] = (),
    ):
        self._entries: dict[Hashable, frozenset[str]] = {
            item: frozenset(tags) for item, tags in (entries or {}).items()
        }
        self._tombstones: frozenset[str] = frozenset(tombstones)

    def add(self, item: Hashable, tag: str) -> "ORSet":
        """Return a copy with ``item`` present under unique ``tag``.

        Callers must supply globally unique tags (e.g.
        ``f"{replica_id}:{sequence}"``); reuse would let an old remove
        cancel a new add.
        """
        entries = dict(self._entries)
        entries[item] = entries.get(item, frozenset()) | {tag}
        return ORSet(entries, self._tombstones)

    def remove(self, item: Hashable) -> "ORSet":
        """Return a copy that removes the *currently observed* tags of
        ``item``; tags added concurrently elsewhere survive a merge."""
        observed = self._live_tags(item)
        return ORSet(self._entries, self._tombstones | observed)

    def merge(self, other: "ORSet") -> "ORSet":
        """Union of tag maps and tombstones."""
        entries = dict(self._entries)
        for item, tags in other._entries.items():
            entries[item] = entries.get(item, frozenset()) | tags
        return ORSet(entries, self._tombstones | other._tombstones)

    def _live_tags(self, item: Hashable) -> frozenset[str]:
        return self._entries.get(item, frozenset()) - self._tombstones

    @property
    def value(self) -> frozenset:
        """Live membership: items with at least one un-tombstoned tag."""
        return frozenset(
            item for item in self._entries if self._live_tags(item)
        )

    def __contains__(self, item: Hashable) -> bool:
        return bool(self._live_tags(item))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ORSet):
            return NotImplemented
        # Equality of observable state: same live tags per item and same
        # effective tombstones over known tags.
        items = set(self._entries) | set(other._entries)
        return all(
            self._live_tags(item) == other._live_tags(item) for item in items
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ORSet(live={sorted(map(repr, self.value))})"
