"""Banking ledger: operations, not consequences.

The paper's running example for principle 2.8: "entering a banking
withdrawal means entering the withdrawal, not just the remaining
balance", and for section 3.2: "if I'm looking at operations on a bank
account, my balance may change, but individual deposits and withdrawals
are visible and durable."

Every deposit/withdrawal is recorded twice in one transaction:

* a ``bank_op`` entity (the operation itself — insert-only, tagged
  ``regulatory`` so compaction archives rather than discards it);
* a commutative delta on the account's ``balance`` (the consequence,
  derivable from the operations and safe under concurrency).

Because the consequence is a delta, concurrent transactions on the same
account compose without lost updates — the property experiment E11
contrasts with balance-overwriting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.core.transaction import CommitReceipt, TransactionManager
from repro.lsdb.events import LogEvent
from repro.merge.deltas import Delta

#: Entity types used by the app.
ACCOUNT_TYPE = "account"
OPERATION_TYPE = "bank_op"


@dataclass
class StatementLine:
    """One line of an account statement."""

    op_id: str
    kind: str  # "deposit" | "withdrawal"
    amount: float
    at: float
    memo: str = ""


class BankApp:
    """Accounts whose balance is the aggregate of their operations.

    Args:
        tx_manager: The transaction manager of the owning unit.

    Example:
        >>> from repro.lsdb import LSDBStore
        >>> bank = BankApp(TransactionManager(LSDBStore()))
        >>> _ = bank.open_account("a1", owner="ada")
        >>> _ = bank.deposit("a1", 100)
        >>> _ = bank.withdraw("a1", 30)
        >>> bank.balance("a1")
        70
        >>> [line.kind for line in bank.statement("a1")]
        ['deposit', 'withdrawal']
    """

    def __init__(self, tx_manager: TransactionManager):
        self.tx = tx_manager
        self._op_ids = itertools.count(1)

    @property
    def store(self):
        """The underlying store (for probes and assertions)."""
        return self.tx.store

    def open_account(self, account_id: str, owner: str) -> CommitReceipt:
        """Create an account with zero balance."""
        tx = self.tx.begin()
        tx.insert(ACCOUNT_TYPE, account_id, {"owner": owner, "balance": 0})
        return tx.commit()

    def deposit(self, account_id: str, amount: float, memo: str = "") -> CommitReceipt:
        """Record a deposit (operation + balance delta, one transaction)."""
        return self._post(account_id, "deposit", amount, memo)

    def withdraw(self, account_id: str, amount: float, memo: str = "") -> CommitReceipt:
        """Record a withdrawal.

        Note the subjective stance: the withdrawal is *entered*, not
        gated on the locally known balance — overdraft policy is a
        constraint (attach a
        :class:`~repro.core.constraints.NonNegativeConstraint` on
        ``account.balance`` in MANAGE or PREVENT mode as the business
        requires).
        """
        return self._post(account_id, "withdrawal", -amount, memo)

    def _post(
        self, account_id: str, kind: str, signed_amount: float, memo: str
    ) -> CommitReceipt:
        if signed_amount == 0:
            raise ValueError("amount must be non-zero")
        op_id = f"{account_id}-op-{next(self._op_ids)}"
        tx = self.tx.begin()
        tx.insert(
            OPERATION_TYPE,
            op_id,
            {
                "account_id": account_id,
                "kind": kind,
                "amount": abs(signed_amount),
                "signed": signed_amount,
                "memo": memo,
            },
            tags=("regulatory",),
        )
        tx.apply_delta(ACCOUNT_TYPE, account_id, Delta.add("balance", signed_amount))
        tx.enqueue("bank.op_posted", {"op_id": op_id, "account_id": account_id})
        return tx.commit()

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def balance(self, account_id: str) -> float:
        """The current balance (the rollup aggregate)."""
        state = self.store.require(ACCOUNT_TYPE, account_id)
        return state.get("balance", 0)

    def statement(self, account_id: str) -> list[StatementLine]:
        """All operations on the account, oldest first — each visible
        and durable even as the balance moves (section 3.2)."""
        lines: list[StatementLine] = []
        for state in self.store.entities_of_type(OPERATION_TYPE):
            if state.get("account_id") != account_id:
                continue
            lines.append(
                StatementLine(
                    op_id=state.entity_key,
                    kind=state.get("kind", ""),
                    amount=state.get("amount", 0),
                    at=state.last_timestamp,
                    memo=state.get("memo", ""),
                )
            )
        lines.sort(key=lambda line: (line.at, line.op_id))
        return lines

    def audit_balance(self, account_id: str) -> float:
        """Recompute the balance from the operations alone.

        Must equal :meth:`balance`; the invariant "consequences are
        derivable from operations" (principle 2.8), asserted in tests.
        """
        return sum(
            state.get("signed", 0)
            for state in self.store.entities_of_type(OPERATION_TYPE)
            if state.get("account_id") == account_id
        )
