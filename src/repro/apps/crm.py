"""CRM lifecycle: out-of-order entry across the data's journey.

Principle 2.2's narrative: "Leads become qualified and turn into
Opportunities, which are won and become Orders [...] Opportunities may
refer to customers not yet entered."  Front-end users enter what they
know *now*; references resolve as collaboration fills the gaps.

The app wires MANAGE-mode referential constraints along the whole
chain — lead→customer, opportunity→lead, opportunity→customer,
sales_order→opportunity — so any arrival order commits, every dangling
reference is ledgered, and :meth:`repair_pass` heals violations as the
referents appear.  Experiment E9 shuffles arrival order and measures
repair rate and time-to-repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.constraints import ReferentialConstraint, Violation
from repro.core.transaction import CommitReceipt, TransactionManager

CUSTOMER_TYPE = "customer"
LEAD_TYPE = "lead"
OPPORTUNITY_TYPE = "opportunity"
ORDER_TYPE = "sales_order"


@dataclass
class LifecycleMetrics:
    """Referential-integrity health of the pipeline."""

    total_violations: int
    open_violations: int
    repaired_violations: int
    mean_time_to_repair: Optional[float]

    @property
    def repair_rate(self) -> float:
        """Fraction of recorded violations repaired so far."""
        if not self.total_violations:
            return 1.0
        return self.repaired_violations / self.total_violations


class CRMApp:
    """Lead-to-order pipeline with managed referential integrity.

    Args:
        tx_manager: Transaction manager whose constraint manager (which
            must be present) receives the pipeline's referential rules.
    """

    def __init__(self, tx_manager: TransactionManager):
        if tx_manager.constraints is None:
            raise ValueError("CRMApp requires a ConstraintManager on the tx manager")
        self.tx = tx_manager
        self.constraints = tx_manager.constraints
        for name, child, ref_field, parent in (
            ("lead-customer", LEAD_TYPE, "customer_id", CUSTOMER_TYPE),
            ("opp-lead", OPPORTUNITY_TYPE, "lead_id", LEAD_TYPE),
            ("opp-customer", OPPORTUNITY_TYPE, "customer_id", CUSTOMER_TYPE),
            ("order-opp", ORDER_TYPE, "opportunity_id", OPPORTUNITY_TYPE),
        ):
            self.constraints.add(ReferentialConstraint(name, child, ref_field, parent))

    @property
    def store(self):
        """The underlying store."""
        return self.tx.store

    # ------------------------------------------------------------------ #
    # Entry — any order, never bureaucratically refused
    # ------------------------------------------------------------------ #

    def enter_customer(self, customer_id: str, name: str) -> CommitReceipt:
        """A business partner gets entered (often *after* things that
        reference it)."""
        tx = self.tx.begin()
        tx.insert(CUSTOMER_TYPE, customer_id, {"name": name})
        receipt = tx.commit()
        # New referents may heal outstanding violations immediately.
        self.constraints.attempt_repairs()
        return receipt

    def enter_lead(
        self, lead_id: str, customer_id: Optional[str], source: str = ""
    ) -> CommitReceipt:
        """Enter a lead, possibly naming a customer nobody entered yet."""
        tx = self.tx.begin()
        tx.insert(
            LEAD_TYPE, lead_id, {"customer_id": customer_id, "source": source}
        )
        return tx.commit()

    def qualify_lead(
        self,
        opportunity_id: str,
        lead_id: str,
        customer_id: Optional[str],
        value: float = 0.0,
    ) -> CommitReceipt:
        """A lead becomes an opportunity (which may still be dangling)."""
        tx = self.tx.begin()
        tx.insert(
            OPPORTUNITY_TYPE,
            opportunity_id,
            {"lead_id": lead_id, "customer_id": customer_id, "value": value},
        )
        return tx.commit()

    def win_opportunity(self, order_id: str, opportunity_id: str) -> CommitReceipt:
        """An opportunity is won and becomes an order."""
        tx = self.tx.begin()
        tx.insert(ORDER_TYPE, order_id, {"opportunity_id": opportunity_id})
        return tx.commit()

    # ------------------------------------------------------------------ #
    # Repair & metrics
    # ------------------------------------------------------------------ #

    def repair_pass(self) -> int:
        """Re-check open violations (the scheduled process step that
        handles violation events, principle 2.2)."""
        return self.constraints.attempt_repairs()

    def open_violations(self) -> list[Violation]:
        """Currently dangling references across the pipeline."""
        return self.constraints.open_violations()

    def metrics(self) -> LifecycleMetrics:
        """Pipeline health snapshot."""
        ledger = self.constraints.ledger
        repaired = [violation for violation in ledger if violation.repaired]
        repair_times = [
            violation.time_to_repair
            for violation in repaired
            if violation.time_to_repair is not None
        ]
        return LifecycleMetrics(
            total_violations=len(ledger),
            open_violations=len(ledger) - len(repaired),
            repaired_violations=len(repaired),
            mean_time_to_repair=(
                sum(repair_times) / len(repair_times) if repair_times else None
            ),
        )
