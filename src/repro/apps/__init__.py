"""Domain applications from the paper's motivating examples.

Each app exercises the public API on one of the business scenarios the
principles were distilled from:

* :mod:`~repro.apps.banking` — balance as aggregate of operations (2.8).
* :mod:`~repro.apps.inventory` — managed negative stock (2.1).
* :mod:`~repro.apps.bookstore` — order entry vs fulfilment, overbooking
  apologies (2.9, 3.2).
* :mod:`~repro.apps.crm` — out-of-order lead→opportunity→order entry
  (2.2).
* :mod:`~repro.apps.scm` — Available-To-Purchase tentative offers (2.9).
* :mod:`~repro.apps.hr` — multi-step employee transfer process (2.4).
"""

from repro.apps.banking import BankApp, StatementLine
from repro.apps.bookstore import (
    Bookstore,
    FulfillmentReport,
    MasterReadSlaveSurface,
    ReplicaSurface,
    StoreSurface,
)
from repro.apps.crm import CRMApp, LifecycleMetrics
from repro.apps.hr import HRApp, TransferStatus, make_transfer_steps
from repro.apps.inventory import DiscrepancyReport, InventoryApp
from repro.apps.scm import PurchaseOutcome, SupplyChainApp

__all__ = [
    "BankApp",
    "StatementLine",
    "Bookstore",
    "FulfillmentReport",
    "MasterReadSlaveSurface",
    "ReplicaSurface",
    "StoreSurface",
    "CRMApp",
    "LifecycleMetrics",
    "HRApp",
    "TransferStatus",
    "make_transfer_steps",
    "DiscrepancyReport",
    "InventoryApp",
    "PurchaseOutcome",
    "SupplyChainApp",
]
