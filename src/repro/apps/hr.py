"""HR employee transfer: a multi-step SOUPS process.

The paper's process example (principle 2.4): "A process, such as
transferring an employee from one department to another, should be
broken down into a series of steps, such as reassigning the employee's
business responsibilities to other employees, that are connected by
events."

The transfer is a linear four-step chain, each step one transaction
updating one entity:

1. ``start`` — mark the employee *transferring* (entity: employee);
2. ``reassign`` — hand the employee's responsibility bundle to a
   delegate (entity: responsibility);
3. ``move`` — change the employee's department (entity: employee);
4. ``payroll`` — write the payroll notice (entity: payroll_notice).

The chain's linearity makes it the canonical workload for the vertical
step-collapsing experiment (E7): the same four handlers can run as four
queued steps or as one fused transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.process import ProcessEngine, ProcessStep, StepContext

EMPLOYEE_TYPE = "employee"
RESPONSIBILITY_TYPE = "responsibility"
PAYROLL_NOTICE_TYPE = "payroll_notice"

#: Topics of the transfer chain, in order.
TOPIC_REQUESTED = "hr.transfer.requested"
TOPIC_REASSIGN = "hr.transfer.reassign"
TOPIC_MOVE = "hr.transfer.move"
TOPIC_PAYROLL = "hr.transfer.payroll"


def make_transfer_steps() -> list[ProcessStep]:
    """The four transfer steps, unregistered (so callers can run them as
    a queued chain or hand them to ``collapse_vertical``)."""

    def start(ctx: StepContext) -> None:
        payload = ctx.message.payload
        ctx.set_fields(
            EMPLOYEE_TYPE, payload["employee_id"], {"status": "transferring"}
        )
        ctx.emit(TOPIC_REASSIGN, dict(payload))

    def reassign(ctx: StepContext) -> None:
        payload = ctx.message.payload
        ctx.set_fields(
            RESPONSIBILITY_TYPE,
            payload["employee_id"],
            {"owner": payload["delegate_id"]},
        )
        ctx.emit(TOPIC_MOVE, dict(payload))

    def move(ctx: StepContext) -> None:
        payload = ctx.message.payload
        ctx.set_fields(
            EMPLOYEE_TYPE,
            payload["employee_id"],
            {"department": payload["new_department"], "status": "transferred"},
        )
        ctx.emit(TOPIC_PAYROLL, dict(payload))

    def payroll(ctx: StepContext) -> None:
        payload = ctx.message.payload
        ctx.insert(
            PAYROLL_NOTICE_TYPE,
            f"notice-{payload['employee_id']}-{payload['transfer_id']}",
            {
                "employee_id": payload["employee_id"],
                "department": payload["new_department"],
            },
        )

    return [
        ProcessStep("transfer-start", TOPIC_REQUESTED, start),
        ProcessStep("transfer-reassign", TOPIC_REASSIGN, reassign),
        ProcessStep("transfer-move", TOPIC_MOVE, move),
        ProcessStep("transfer-payroll", TOPIC_PAYROLL, payroll),
    ]


@dataclass
class TransferStatus:
    """Observable state of one transfer."""

    employee_status: str
    department: Optional[str]
    responsibility_owner: Optional[str]
    payroll_notified: bool

    @property
    def complete(self) -> bool:
        """Whether every step's effect is visible."""
        return self.employee_status == "transferred" and self.payroll_notified


class HRApp:
    """Employee transfers over a process engine.

    Args:
        engine: The process engine of the HR serialization unit.
        collapsed: Register the chain as one vertically collapsed step
            instead of four queued steps (section 3.1's optimization).
    """

    def __init__(self, engine: ProcessEngine, collapsed: bool = False):
        self.engine = engine
        self._transfer_ids = 0
        steps = make_transfer_steps()
        if collapsed:
            engine.collapse_vertical("transfer-collapsed", steps, TOPIC_REQUESTED)
        else:
            for step in steps:
                engine.register_step(step)

    @property
    def store(self):
        """The engine's store."""
        return self.engine.tx_manager.store

    # ------------------------------------------------------------------ #
    # Setup & kick-off
    # ------------------------------------------------------------------ #

    def hire(self, employee_id: str, department: str, responsibilities: str) -> None:
        """Create the employee and their responsibility bundle."""
        tx = self.engine.tx_manager.begin()
        tx.insert(
            EMPLOYEE_TYPE,
            employee_id,
            {"department": department, "status": "active"},
        )
        tx.commit()
        tx = self.engine.tx_manager.begin()
        tx.insert(
            RESPONSIBILITY_TYPE,
            employee_id,
            {"owner": employee_id, "bundle": responsibilities},
        )
        tx.commit()

    def start_transfer(
        self, employee_id: str, new_department: str, delegate_id: str
    ) -> str:
        """Kick off a transfer process; returns the transfer id."""
        self._transfer_ids += 1
        transfer_id = f"tr-{self._transfer_ids}"
        self.engine.start_process(
            TOPIC_REQUESTED,
            {
                "transfer_id": transfer_id,
                "employee_id": employee_id,
                "new_department": new_department,
                "delegate_id": delegate_id,
            },
        )
        return transfer_id

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def status(self, employee_id: str, transfer_id: str) -> TransferStatus:
        """Snapshot of a transfer's visible progress."""
        employee = self.store.get(EMPLOYEE_TYPE, employee_id)
        responsibility = self.store.get(RESPONSIBILITY_TYPE, employee_id)
        notice = self.store.get(
            PAYROLL_NOTICE_TYPE, f"notice-{employee_id}-{transfer_id}"
        )
        return TransferStatus(
            employee_status=employee.get("status", "?") if employee else "?",
            department=employee.get("department") if employee else None,
            responsibility_owner=(
                responsibility.get("owner") if responsibility else None
            ),
            payroll_notified=notice is not None and notice.live,
        )
