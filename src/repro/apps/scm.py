"""Supply chain: Available-To-Purchase offers and their choreography.

Principle 2.9's worked example: "when one business informs another that
a given quantity of an item is Available-To-Purchase at a quoted price
by a deadline date/time [...] the Supplier enters a description of the
offer inside its DMS, handling the given quantity as a tentative update
of quantity, subject to business rules.  A purchase request received by
the deadline date will normally be honored, but there may be business
reasons (e.g., a disaster at a warehouse) why that can't occur."

Offers are :class:`~repro.core.compensation.TentativeOperation` records;
quoting reserves quantity (a delta — visible, durable, revocable),
purchasing confirms, deadlines expire, and a warehouse disaster cancels
open offers with apologies and releases their reservations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.compensation import CompensationManager, TentativeOperation
from repro.core.transaction import TransactionManager
from repro.merge.deltas import Delta

ITEM_TYPE = "scm_item"

#: Tentative-operation kind for ATP offers.
OFFER_KIND = "atp_offer"


@dataclass
class PurchaseOutcome:
    """Result of a purchase request against an offer."""

    offer_id: str
    honored: bool
    reason: str = ""


class SupplyChainApp:
    """Supplier-side ATP processing.

    Args:
        tx_manager: Transaction manager of the supplier's unit.
        compensation: Compensation manager (shares the same store).
    """

    def __init__(
        self,
        tx_manager: TransactionManager,
        compensation: CompensationManager,
    ):
        self.tx = tx_manager
        self.compensation = compensation
        compensation.register_compensator(
            "release_reservation",
            lambda context: (
                f"released reservation of {context.get('quantity', '?')} "
                f"x {context.get('item_key', '?')}"
            ),
        )

    @property
    def store(self):
        """The underlying store."""
        return self.tx.store

    # ------------------------------------------------------------------ #
    # Stock
    # ------------------------------------------------------------------ #

    def add_item(self, item_key: str, on_hand: float) -> None:
        """Register an item with initial stock."""
        tx = self.tx.begin()
        tx.insert(
            ITEM_TYPE,
            item_key,
            {"on_hand": on_hand, "reserved": 0, "shipped": 0, "lost": 0},
        )
        tx.commit()

    def available_to_purchase(self, item_key: str) -> float:
        """Unreserved stock a new offer could quote against."""
        state = self.store.require(ITEM_TYPE, item_key)
        return state.get("on_hand", 0) - state.get("reserved", 0)

    # ------------------------------------------------------------------ #
    # Offer lifecycle
    # ------------------------------------------------------------------ #

    def quote_offer(
        self,
        item_key: str,
        quantity: float,
        price: float,
        deadline: float,
        purchaser: str,
    ) -> TentativeOperation:
        """Quote an ATP offer: reserve the quantity tentatively.

        The reservation is a real, durable state change — the "tentative
        update of quantity" — not a mere annotation, so every other
        offer sees reduced availability immediately.
        """
        tx = self.tx.begin()
        tx.apply_delta(ITEM_TYPE, item_key, Delta.add("reserved", quantity))
        tx.commit()
        return self.compensation.open_tentative(
            kind=OFFER_KIND,
            subject_type=ITEM_TYPE,
            subject_key=item_key,
            payload={
                "quantity": quantity,
                "price": price,
                "purchaser": purchaser,
            },
            expires_at=deadline,
        )

    def purchase(self, offer_id: str) -> PurchaseOutcome:
        """A purchase request arrives for an offer.

        Honored when the offer is still open *and* the stock survived
        (a disaster may have destroyed it); otherwise the purchaser is
        apologised to — "in either case, the Purchaser will be
        notified, and appropriate business actions will be taken".
        """
        operation = self.compensation.get_operation(offer_id)
        if not operation.open:
            return PurchaseOutcome(
                offer_id=offer_id,
                honored=False,
                reason=f"offer is {operation.status.value}",
            )
        item = self.store.require(ITEM_TYPE, operation.subject_key)
        quantity = operation.payload["quantity"]
        if item.get("on_hand", 0) < quantity:
            # Reality intervened between quote and purchase.
            self._renege(operation, reason="stock destroyed before purchase")
            return PurchaseOutcome(
                offer_id=offer_id, honored=False, reason="stock destroyed"
            )
        self.compensation.confirm(offer_id)
        tx = self.tx.begin()
        tx.apply_delta(
            ITEM_TYPE,
            operation.subject_key,
            Delta(
                numeric={
                    "reserved": -quantity,
                    "on_hand": -quantity,
                    "shipped": quantity,
                }
            ),
        )
        tx.commit()
        return PurchaseOutcome(offer_id=offer_id, honored=True)

    def expire_offers(self) -> int:
        """Expire overdue offers and release their reservations.

        Returns the number expired.
        """
        expired = self.compensation.expire_overdue()
        for operation in expired:
            if operation.kind != OFFER_KIND:
                continue
            tx = self.tx.begin()
            tx.apply_delta(
                ITEM_TYPE,
                operation.subject_key,
                Delta.add("reserved", -operation.payload["quantity"]),
            )
            tx.commit()
        return len(expired)

    # ------------------------------------------------------------------ #
    # Reality is real
    # ------------------------------------------------------------------ #

    def warehouse_disaster(self, item_key: str) -> list[TentativeOperation]:
        """The warehouse burns down: stock is lost, open offers on the
        item are reneged with apologies (principle 2.1 — reality is
        realer than the information system)."""
        item = self.store.require(ITEM_TYPE, item_key)
        lost = item.get("on_hand", 0)
        tx = self.tx.begin()
        tx.apply_delta(
            ITEM_TYPE, item_key, Delta(numeric={"on_hand": -lost, "lost": lost})
        )
        tx.commit()
        reneged = []
        for operation in self.compensation.open_operations():
            if operation.kind == OFFER_KIND and operation.subject_key == item_key:
                self._renege(operation, reason="warehouse disaster")
                reneged.append(operation)
        return reneged

    def _renege(self, operation: TentativeOperation, reason: str) -> None:
        self.compensation.cancel(operation.op_id)
        tx = self.tx.begin()
        tx.apply_delta(
            ITEM_TYPE,
            operation.subject_key,
            Delta.add("reserved", -operation.payload["quantity"]),
        )
        tx.commit()
        self.compensation.apologize(
            to_party=operation.payload.get("purchaser", "?"),
            reason=reason,
            kind="release_reservation",
            context={
                "item_key": operation.subject_key,
                "quantity": operation.payload["quantity"],
            },
            related_op=operation.op_id,
        )
