"""Warehouse inventory with managed negative stock.

Principle 2.1's example: "a business may permit inventory levels to go
negative if a packager knows more about current inventory than the
system does. [...] For negative inventories, the system should track
the history that resulted in negative inventory levels, and eventually
account for the discrepancy."

The app issues stock *subjectively* — an issue is never refused for
insufficient on-hand — while a MANAGE-mode
:class:`~repro.core.constraints.NonNegativeConstraint` turns every dip
below zero into a ledger entry.  :meth:`discrepancy_report` reconstructs
the operation history that produced the dip (possible because storage is
insert-only, principle 2.7), and :meth:`reconcile` posts the physical
count that accounts for it, repairing the violation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.core.constraints import ConstraintManager, NonNegativeConstraint, Violation
from repro.core.transaction import CommitReceipt, TransactionManager
from repro.lsdb.events import EventKind, LogEvent
from repro.merge.deltas import Delta

ITEM_TYPE = "inventory_item"
MOVEMENT_TYPE = "stock_movement"

#: Name of the constraint the app registers.
FLOOR_CONSTRAINT = "inventory-non-negative"


@dataclass
class DiscrepancyReport:
    """The history behind a negative-inventory episode."""

    item_key: str
    current_on_hand: float
    open_violations: list[Violation]
    movements: list[LogEvent]

    @property
    def is_negative(self) -> bool:
        """Whether the item is currently below zero."""
        return self.current_on_hand < 0


class InventoryApp:
    """Subjective stock keeping over one serialization unit.

    Args:
        tx_manager: Transaction manager of the owning unit; its
            constraint manager (if any) gets the non-negative rule
            registered automatically.
    """

    def __init__(self, tx_manager: TransactionManager):
        self.tx = tx_manager
        self.constraints: Optional[ConstraintManager] = tx_manager.constraints
        if self.constraints is not None:
            self.constraints.add(
                NonNegativeConstraint(FLOOR_CONSTRAINT, ITEM_TYPE, "on_hand")
            )
        self._movement_ids = itertools.count(1)

    @property
    def store(self):
        """The underlying store."""
        return self.tx.store

    # ------------------------------------------------------------------ #
    # Movements
    # ------------------------------------------------------------------ #

    def add_item(self, item_key: str, name: str, on_hand: float = 0) -> CommitReceipt:
        """Register an item."""
        tx = self.tx.begin()
        tx.insert(ITEM_TYPE, item_key, {"name": name, "on_hand": on_hand})
        return tx.commit()

    def receive(self, item_key: str, quantity: float, source: str = "") -> CommitReceipt:
        """Goods receipt: on-hand increases."""
        return self._move(item_key, quantity, "receipt", source)

    def issue(self, item_key: str, quantity: float, actor: str = "") -> CommitReceipt:
        """Goods issue: on-hand decreases — *even below zero*.

        A packer who ships what the system doesn't know it has is
        recording reality; the constraint machinery records the
        discrepancy instead of blocking the dock (principle 2.1).
        """
        return self._move(item_key, -quantity, "issue", actor)

    def _move(
        self, item_key: str, signed_qty: float, kind: str, actor: str
    ) -> CommitReceipt:
        if signed_qty == 0:
            raise ValueError("quantity must be non-zero")
        movement_id = f"{item_key}-mv-{next(self._movement_ids)}"
        tx = self.tx.begin()
        tx.insert(
            MOVEMENT_TYPE,
            movement_id,
            {
                "item_key": item_key,
                "kind": kind,
                "quantity": abs(signed_qty),
                "signed": signed_qty,
                "actor": actor,
            },
            tags=("regulatory",),
        )
        tx.apply_delta(ITEM_TYPE, item_key, Delta.add("on_hand", signed_qty))
        return tx.commit()

    # ------------------------------------------------------------------ #
    # Discrepancy accounting
    # ------------------------------------------------------------------ #

    def on_hand(self, item_key: str) -> float:
        """Current (system-known) stock level."""
        state = self.store.require(ITEM_TYPE, item_key)
        return state.get("on_hand", 0)

    def discrepancy_report(self, item_key: str) -> DiscrepancyReport:
        """The audit trail for an item: its open negative-stock
        violations plus the delta events that moved its level — the
        trace that can "identify a packer as the source of the
        inconsistency" (principle 2.7)."""
        open_violations = []
        if self.constraints is not None:
            open_violations = [
                violation
                for violation in self.constraints.violations_for(ITEM_TYPE, item_key)
                if violation.open
            ]
        movements = [
            event
            for event in self.store.history(ITEM_TYPE, item_key)
            if event.kind is EventKind.DELTA
        ]
        return DiscrepancyReport(
            item_key=item_key,
            current_on_hand=self.on_hand(item_key),
            open_violations=open_violations,
            movements=movements,
        )

    def reconcile(self, item_key: str, counted_quantity: float) -> CommitReceipt:
        """Post a physical count: an adjustment delta bringing on-hand
        to the counted value, which "eventually accounts for the
        discrepancy" — the violation repairs on the next check pass."""
        adjustment = counted_quantity - self.on_hand(item_key)
        tx = self.tx.begin()
        movement_id = f"{item_key}-mv-{next(self._movement_ids)}"
        tx.insert(
            MOVEMENT_TYPE,
            movement_id,
            {
                "item_key": item_key,
                "kind": "physical_count",
                "quantity": abs(adjustment),
                "signed": adjustment,
                "actor": "stocktaking",
            },
            tags=("regulatory",),
        )
        if adjustment != 0:
            tx.apply_delta(ITEM_TYPE, item_key, Delta.add("on_hand", adjustment))
        receipt = tx.commit()
        if self.constraints is not None:
            self.constraints.attempt_repairs()
        return receipt

    def audit_on_hand(self, item_key: str, initial: float = 0) -> float:
        """Recompute stock from movements alone (must match
        :meth:`on_hand` given the item's initial level)."""
        return initial + sum(
            state.get("signed", 0)
            for state in self.store.entities_of_type(MOVEMENT_TYPE)
            if state.get("item_key") == item_key
        )
