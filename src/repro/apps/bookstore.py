"""Bookstore: Order Entry / Fulfilment separation and overbooking.

The paper's apology scenario (principle 2.9, section 3.2): "there were
only 5 copies of the book available, and more than 5 were sold.  [...]
note the tentativity choreography in book processing introduced by
separating Order Entry from Fulfillment; the user has been told that the
book order has been received, but not that it will be fulfilled."

The app works against any *surface* — a plain store, one replica of an
active/active group, or the master of a master/slave group — so the
same business logic runs in every consistency configuration the
experiments compare:

* **Subjective entry** (:meth:`Bookstore.place_order`): check the
  surface's (possibly stale, possibly divergent) view of availability,
  accept, decrement.  Fast and always available; overbooking possible.
* **Fulfilment** (:meth:`Bookstore.fulfill`): later, against a
  converged or authoritative store, allocate physical copies in entry
  order; orders beyond physical stock get apologies with compensation.
* **Strong entry** (:meth:`Bookstore.place_order_strong`): serialize on
  the authoritative stock and *reject* instead of over-accept — no
  apologies, at the cost of rejecting demand (and, in replicated
  deployments, of entry latency/availability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Protocol

from repro.core.compensation import CompensationManager
from repro.lsdb.rollup import EntityState
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta

STOCK_TYPE = "book_stock"
ORDER_TYPE = "book_order"

#: Order lifecycle states.
ENTERED = "entered"
REJECTED = "rejected"
FULFILLED = "fulfilled"
APOLOGIZED = "apologized"


class Surface(Protocol):
    """Where the bookstore reads and writes — a store or a replica."""

    def read(self, entity_type: str, entity_key: str) -> Optional[EntityState]:
        """Current (subjective) state of an entity."""
        ...

    def insert(self, entity_type: str, entity_key: str, fields: dict[str, Any]) -> None:
        """Insert an entity."""
        ...

    def apply_delta(self, entity_type: str, entity_key: str, delta: Delta) -> None:
        """Apply a commutative adjustment."""
        ...

    def set_fields(self, entity_type: str, entity_key: str, fields: dict[str, Any]) -> None:
        """Overwrite fields."""
        ...


class StoreSurface:
    """Surface over a plain :class:`LSDBStore`."""

    def __init__(self, store: LSDBStore):
        self.store = store

    def read(self, entity_type, entity_key):
        return self.store.get(entity_type, entity_key)

    def insert(self, entity_type, entity_key, fields):
        self.store.insert(entity_type, entity_key, fields)

    def apply_delta(self, entity_type, entity_key, delta):
        self.store.apply_delta(entity_type, entity_key, delta)

    def set_fields(self, entity_type, entity_key, fields):
        self.store.set_fields(entity_type, entity_key, fields)


class ReplicaSurface:
    """Surface over one replica of an
    :class:`~repro.replication.active_active.ActiveActiveGroup`: reads
    are that replica's view, writes propagate through the group."""

    def __init__(self, group, replica_id: str):
        self.group = group
        self.replica_id = replica_id

    def read(self, entity_type, entity_key):
        return self.group.read(self.replica_id, entity_type, entity_key)

    def insert(self, entity_type, entity_key, fields):
        self.group.write_insert(self.replica_id, entity_type, entity_key, fields)

    def apply_delta(self, entity_type, entity_key, delta):
        self.group.write_delta(self.replica_id, entity_type, entity_key, delta)

    def set_fields(self, entity_type, entity_key, fields):
        self.group.write_set_fields(self.replica_id, entity_type, entity_key, fields)


class MasterReadSlaveSurface:
    """Surface for the mixed-consistency deployment of experiment E10:
    *reads* go to a slave (stale by the shipping interval), *writes* go
    to the master.  Stale availability checks are exactly how this
    deployment overbooks."""

    def __init__(self, group, slave_id: str):
        self.group = group
        self.slave_id = slave_id

    def read(self, entity_type, entity_key):
        return self.group.read(self.slave_id, entity_type, entity_key)

    def insert(self, entity_type, entity_key, fields):
        self.group.write_insert(entity_type, entity_key, fields)

    def apply_delta(self, entity_type, entity_key, delta):
        self.group.write_delta(entity_type, entity_key, delta)

    def set_fields(self, entity_type, entity_key, fields):
        # Master/slave group exposes insert/delta; emulate overwrite as
        # insert of a new version (insert-only storage makes these
        # equivalent at the rollup).
        self.group.write_insert(entity_type, entity_key, fields)


@dataclass
class FulfillmentReport:
    """What one fulfilment pass did."""

    book_key: str
    fulfilled: int = 0
    apologized: int = 0
    already_final: int = 0

    @property
    def apology_rate(self) -> float:
        """Apologies per decided order in this pass."""
        decided = self.fulfilled + self.apologized
        return self.apologized / decided if decided else 0.0


class Bookstore:
    """The bookstore application logic.

    Args:
        compensation: Where apologies are recorded and refunds run.  A
            ``refund`` compensator is registered automatically.
    """

    def __init__(self, compensation: CompensationManager):
        self.compensation = compensation
        self.orders_entered = 0
        self.orders_rejected = 0
        compensation.register_compensator(
            "refund",
            lambda context: (
                f"refunded order {context.get('order_id', '?')} "
                f"for {context.get('customer', '?')}"
            ),
        )

    # ------------------------------------------------------------------ #
    # Catalogue
    # ------------------------------------------------------------------ #

    def stock_book(
        self, surface: Surface, book_key: str, copies: int, price: float = 10.0
    ) -> None:
        """List a title with ``copies`` physical copies.

        ``available`` is the subjective sell-from counter (each entry
        decrements it); ``copies_physical`` is reality, consulted only
        by fulfilment.
        """
        surface.insert(
            STOCK_TYPE,
            book_key,
            {"copies_physical": copies, "available": copies, "price": price},
        )

    # ------------------------------------------------------------------ #
    # Order entry
    # ------------------------------------------------------------------ #

    def place_order(
        self,
        surface: Surface,
        order_id: str,
        customer: str,
        book_key: str,
        quantity: int = 1,
        at: float = 0.0,
    ) -> str:
        """Subjective order entry against ``surface``'s local view.

        Returns ``"entered"`` or ``"rejected"``.  An entered order means
        "received", *not* "will be fulfilled" — the choreography that
        keeps later apologies comprehensible.
        """
        stock = surface.read(STOCK_TYPE, book_key)
        if stock is None or stock.get("available", 0) < quantity:
            self.orders_rejected += 1
            return REJECTED
        surface.insert(
            ORDER_TYPE,
            order_id,
            {
                "customer": customer,
                "book_key": book_key,
                "quantity": quantity,
                "status": ENTERED,
                "entered_at": at,
            },
        )
        surface.apply_delta(STOCK_TYPE, book_key, Delta.add("available", -quantity))
        self.orders_entered += 1
        return ENTERED

    def place_order_strong(
        self,
        store: LSDBStore,
        order_id: str,
        customer: str,
        book_key: str,
        quantity: int = 1,
        at: float = 0.0,
    ) -> str:
        """Strongly consistent entry: serialize on the authoritative
        store and never promise what physical stock cannot cover.

        Accepted orders are fulfilled immediately (entry and fulfilment
        collapse); excess demand is *rejected*, not apologised to.
        """
        stock = store.get(STOCK_TYPE, book_key)
        remaining = self._physical_remaining(store, book_key, stock)
        if stock is None or remaining < quantity:
            self.orders_rejected += 1
            return REJECTED
        store.insert(
            ORDER_TYPE,
            order_id,
            {
                "customer": customer,
                "book_key": book_key,
                "quantity": quantity,
                "status": FULFILLED,
                "entered_at": at,
            },
        )
        store.apply_delta(STOCK_TYPE, book_key, Delta.add("available", -quantity))
        self.orders_entered += 1
        return ENTERED

    # ------------------------------------------------------------------ #
    # Fulfilment
    # ------------------------------------------------------------------ #

    def fulfill(self, store: LSDBStore, book_key: str) -> FulfillmentReport:
        """Allocate physical copies to entered orders, in entry order.

        Runs against an authoritative/converged store.  Orders beyond
        the physical count get an apology with a refund — the honest
        price of subjective acceptance.
        """
        report = FulfillmentReport(book_key=book_key)
        stock = store.get(STOCK_TYPE, book_key)
        if stock is None:
            return report
        remaining = self._physical_remaining(store, book_key, stock)
        for order in self._orders_for(store, book_key):
            status = order.get("status")
            if status in (FULFILLED, APOLOGIZED, REJECTED):
                report.already_final += 1
                continue
            quantity = order.get("quantity", 1)
            if remaining >= quantity:
                remaining -= quantity
                store.set_fields(ORDER_TYPE, order.entity_key, {"status": FULFILLED})
                report.fulfilled += 1
            else:
                store.set_fields(ORDER_TYPE, order.entity_key, {"status": APOLOGIZED})
                self.compensation.apologize(
                    to_party=order.get("customer", "?"),
                    reason="oversold",
                    kind="refund",
                    context={
                        "order_id": order.entity_key,
                        "customer": order.get("customer"),
                        "book_key": book_key,
                    },
                    related_op=order.entity_key,
                )
                report.apologized += 1
        return report

    # ------------------------------------------------------------------ #
    # Helpers & metrics
    # ------------------------------------------------------------------ #

    def _orders_for(self, store: LSDBStore, book_key: str) -> list[EntityState]:
        orders = [
            state
            for state in store.entities_of_type(ORDER_TYPE)
            if state.get("book_key") == book_key
        ]
        orders.sort(key=lambda state: (state.get("entered_at", 0.0), state.entity_key))
        return orders

    def _physical_remaining(
        self, store: LSDBStore, book_key: str, stock: Optional[EntityState]
    ) -> int:
        if stock is None:
            return 0
        committed = sum(
            order.get("quantity", 1)
            for order in self._orders_for(store, book_key)
            if order.get("status") == FULFILLED
        )
        return stock.get("copies_physical", 0) - committed

    def apology_count(self) -> int:
        """Total apologies issued through this app's compensation
        manager."""
        return self.compensation.ledger.count()
