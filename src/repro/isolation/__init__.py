"""The anomaly harness: executable isolation-level semantics.

The paper's thesis is that consistency is a spectrum to be chosen per
workload.  :mod:`repro.core.transaction` provides the spectrum
(:class:`~repro.core.transaction.IsolationLevel`); this package proves,
by *running histories*, which anomalies each point on it permits:

* :mod:`repro.isolation.histories` — canned multi-entity histories
  (dirty read, read skew, lost update, write skew, long fork,
  non-monotonic snapshot) expressed as deterministic virtual-time
  schedules, plus the :class:`HistoryRunner` that executes one against
  a transaction manager.
* :mod:`repro.isolation.detector` — the :class:`AnomalyDetector` that
  inspects committed state, observations and
  :class:`~repro.core.transaction.CommitReceipt` metadata to decide
  whether each anomaly actually materialized.
* :mod:`repro.isolation.scorecard` — the mode x anomaly matrix runner
  (every history under every level), the published ``THEORY`` matrix it
  must match, and the open-loop load probe measuring per-mode
  abort-rate/latency/lost-update economics.

``benchmarks/bench_isolation.py`` drives this into
``BENCH_isolation.json``; ``perf_gate.py`` fails the build when the
matrix and the theory disagree.
"""

from repro.isolation.detector import AnomalyDetector, Verdict
from repro.isolation.histories import (
    HISTORIES,
    History,
    HistoryResult,
    HistoryRunner,
    Observation,
    Step,
    history_named,
)
from repro.isolation.scorecard import (
    ANOMALIES,
    MODES,
    THEORY,
    anomaly_matrix,
    matrix_bools,
    matches_theory,
    run_history,
    run_open_loop,
    scorecard,
)

__all__ = [
    "ANOMALIES",
    "AnomalyDetector",
    "HISTORIES",
    "History",
    "HistoryResult",
    "HistoryRunner",
    "MODES",
    "Observation",
    "Step",
    "THEORY",
    "Verdict",
    "anomaly_matrix",
    "history_named",
    "matrix_bools",
    "matches_theory",
    "run_history",
    "run_open_loop",
    "scorecard",
]
