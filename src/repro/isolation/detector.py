"""Decides whether an anomaly actually materialized in an execution.

The :class:`AnomalyDetector` is deliberately dumb about *modes*: it
looks only at what the :class:`~repro.isolation.histories.HistoryRunner`
recorded — observations, :class:`~repro.core.transaction.CommitReceipt`
metadata (including snapshot vectors) and final committed state — and
answers "did the bad thing happen?".  The scorecard compares its
verdicts against the published ``THEORY`` matrix; any disagreement is a
bug in the isolation implementation, not a tunable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isolation.histories import HistoryResult


@dataclass(frozen=True)
class Verdict:
    """One anomaly decision for one execution.

    Attributes:
        anomaly: The anomaly (== the history name).
        isolation: Level the history ran under.
        materialized: Whether the anomaly occurred.
        evidence: Human-readable account of what the detector saw.
    """

    anomaly: str
    isolation: str
    materialized: bool
    evidence: str


def _v(fields, default=0):
    return (fields or {}).get("v", default)


class AnomalyDetector:
    """Maps a :class:`HistoryResult` to a :class:`Verdict`.

    One predicate per canned history; :meth:`judge` dispatches on the
    history's name.
    """

    def judge(self, result: HistoryResult) -> Verdict:
        try:
            predicate = getattr(self, f"_{result.history.name}")
        except AttributeError:
            raise KeyError(
                f"no detector for history {result.history.name!r}"
            ) from None
        materialized, evidence = predicate(result)
        return Verdict(
            anomaly=result.history.name,
            isolation=result.isolation,
            materialized=materialized,
            evidence=evidence,
        )

    # ------------------------------------------------------------------ #
    # Per-anomaly predicates: (materialized, evidence)
    # ------------------------------------------------------------------ #

    def _dirty_read(self, result: HistoryResult):
        seen = _v(result.observed("O", "acct", "x"))
        aborted = not result.committed("W")
        if seen == 1 and aborted:
            return True, "observer returned v=1 buffered by the aborted writer"
        return False, (
            f"observer saw v={seen}; the aborted writer's buffered write "
            "never escaped its transaction"
        )

    def _read_skew(self, result: HistoryResult):
        x = _v(result.observed("O", "pair", "x"))
        y = _v(result.observed("O", "pair", "y"))
        if not result.committed("O"):
            return False, (
                f"observer read x={x},y={y} but was aborted "
                f"({result.receipts['O'].reason})"
            )
        if x == 0 and y == 1:
            return True, "committed observer read x=0 before and y=1 after W"
        return False, f"committed observer read the consistent pair x={x},y={y}"

    def _lost_update(self, result: HistoryResult):
        final = result.final.get("counter/x") or {}
        n = final.get("n", 0)
        commits = sum(
            1 for session in ("A", "B") if result.committed(session)
        )
        if commits == 2 and n < 2:
            return True, (
                f"both increments committed but the counter shows n={n} "
                "(one update clobbered the other)"
            )
        survivors = [s for s in ("A", "B") if result.committed(s)]
        return False, (
            f"{commits} of 2 increments committed "
            f"({', '.join(survivors) or 'none'}), counter n={n}: "
            "every committed update is reflected"
        )

    def _write_skew(self, result: HistoryResult):
        x = _v(result.final.get("oncall/x"), default=1)
        y = _v(result.final.get("oncall/y"), default=1)
        both = result.committed("A") and result.committed("B")
        if both and x + y == 0:
            return True, (
                "both sessions committed their disjoint writes; the "
                "'someone stays on call' invariant x+y>=1 is broken (0+0)"
            )
        return False, (
            f"final on-call rows x={x},y={y} "
            f"(A committed={result.committed('A')}, "
            f"B committed={result.committed('B')}): invariant holds"
        )

    def _long_fork(self, result: HistoryResult):
        o1 = (_v(result.observed("O1", "reg", "x")),
              _v(result.observed("O1", "reg", "y")))
        o2 = (_v(result.observed("O2", "reg", "x")),
              _v(result.observed("O2", "reg", "y")))
        both = result.committed("O1") and result.committed("O2")
        forked = both and {o1, o2} == {(1, 0), (0, 1)}
        if forked:
            vectors_concurrent = False
            r1, r2 = result.receipts["O1"], result.receipts["O2"]
            if r1.snapshot_vector is not None and r2.snapshot_vector is not None:
                vectors_concurrent = r1.snapshot_vector.concurrent_with(
                    r2.snapshot_vector
                )
            return True, (
                f"O1 saw (x,y)={o1}, O2 saw (x,y)={o2}: the two writes "
                "were observed in incomparable orders "
                f"(snapshot vectors concurrent={vectors_concurrent})"
            )
        return False, (
            f"O1 saw (x,y)={o1}, O2 saw (x,y)={o2}: both observations "
            "are ordered states of one timeline"
        )

    def _non_monotonic_snapshot(self, result: HistoryResult):
        x = _v(result.observed("O", "reg", "x"))
        y = _v(result.observed("O", "reg", "y"))
        if result.committed("O") and x == 0 and y == 1:
            return True, (
                "observer's snapshot holds the newer commit (y=1) while "
                "missing the older one (x=0): time ran backwards"
            )
        return False, (
            f"observer saw x={x},y={y}: its snapshot respects commit order"
        )
