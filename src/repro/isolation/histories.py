"""Canned anomaly histories as deterministic virtual-time schedules.

Each :class:`History` is a named multi-session, multi-entity schedule:
setup writes at t=0, then timestamped :class:`Step`\\ s (begin / read /
set / rmw / commit / abort) attributed to sessions pinned to sites.
The :class:`HistoryRunner` executes one against a
:class:`~repro.core.transaction.TransactionManager` by scheduling every
step on the simulator, recording an :class:`Observation` per read and a
:class:`~repro.core.transaction.CommitReceipt` per session, then
probing the final committed state.

The histories are the textbook witnesses, one per anomaly:

* ``dirty_read`` — an observer overlaps a writer that later aborts.
* ``read_skew`` — an observer straddles a committed two-entity write.
* ``lost_update`` — two read-modify-write increments race on one
  counter.
* ``write_skew`` — two sessions each read both on-call rows and zero a
  *different* one (the constraint "at least one on call" breaks only if
  both commit).
* ``long_fork`` — two independent single-entity writers at different
  sites; two observers each see *their* site's write but not the other.
* ``non_monotonic_snapshot`` — an observer's snapshot includes a newer
  site-local commit while missing an older remote one still inside the
  propagation window.

Every schedule is pure data: same history + same manager configuration
⇒ byte-identical observations, receipts and final state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.core.transaction import CommitReceipt, Transaction, TransactionManager
from repro.sim.scheduler import Simulator

#: Sites the canned histories span.  NMSI visibility is what separates
#: them; every other level ignores the site tag.
SITE_A = "dc-a"
SITE_B = "dc-b"


@dataclass(frozen=True)
class Step:
    """One scheduled action of one session.

    Attributes:
        at: Virtual time the step fires.
        session: Session name (one transaction per session).
        action: ``begin`` / ``read`` / ``set`` / ``rmw`` / ``commit`` /
            ``abort``.
        entity: ``(type, key)`` for read/set/rmw steps.
        fields: Field overwrite payload for ``set``.
        delta: For ``rmw``: the increment applied to ``field_name`` of
            the session's *last read* of ``entity`` (missing entity or
            field reads as 0) — the classic fetch-add.
        field_name: The field ``rmw`` increments.
        site: Site for ``begin`` (defaults to :data:`SITE_A`).
    """

    at: float
    session: str
    action: str
    entity: Optional[tuple[str, str]] = None
    fields: Mapping[str, Any] = field(default_factory=dict)
    delta: int = 0
    field_name: str = ""
    site: str = SITE_A


@dataclass(frozen=True)
class History:
    """A named anomaly schedule plus the state it starts from.

    Attributes:
        name: Anomaly name (keys ``repro.isolation.scorecard.THEORY``).
        description: One-line statement of the anomaly.
        setup: Initial committed entities: ``(type, key) -> fields``,
            written directly to the store at t=0 (outside any session).
        steps: The schedule, fired in ``at`` order (ties impossible by
            construction — every step has a distinct time).
        probes: Entity refs whose final committed state the runner
            reads back after the schedule drains.
    """

    name: str
    description: str
    setup: tuple[tuple[tuple[str, str], tuple[tuple[str, Any], ...]], ...]
    steps: tuple[Step, ...]
    probes: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class Observation:
    """What one read step returned.

    Attributes:
        at: Virtual time of the read.
        session: The reading session.
        entity: The ref read.
        fields: Observed fields (``None`` when the entity was absent
            from the session's view).
    """

    at: float
    session: str
    entity: tuple[str, str]
    fields: Optional[dict[str, Any]]


@dataclass
class HistoryResult:
    """Everything a detector needs about one execution.

    Attributes:
        history: The schedule that ran.
        isolation: The level it ran under (its ``value`` string).
        observations: Every read, in schedule order.
        receipts: Session -> commit/abort receipt.
        final: ``"type/key" -> fields`` committed state after the run
            (``None`` for absent probes).
    """

    history: History
    isolation: str
    observations: list[Observation] = field(default_factory=list)
    receipts: dict[str, CommitReceipt] = field(default_factory=dict)
    final: dict[str, Optional[dict[str, Any]]] = field(default_factory=dict)

    def committed(self, session: str) -> bool:
        receipt = self.receipts.get(session)
        return bool(receipt and receipt.committed)

    def observed(
        self, session: str, entity_type: str, entity_key: str
    ) -> Optional[dict[str, Any]]:
        """The session's last observation of one ref (``None`` if the
        read returned nothing; raises if the session never read it)."""
        hits = [
            obs
            for obs in self.observations
            if obs.session == session and obs.entity == (entity_type, entity_key)
        ]
        if not hits:
            raise KeyError(f"{session} never read {entity_type}/{entity_key}")
        return hits[-1].fields


class HistoryRunner:
    """Executes one :class:`History` against one manager/simulator pair.

    The runner owns no policy: the manager's isolation level (and
    ``propagation_lag``) decide what each read sees and which commits
    survive.  Reuse a runner only with a fresh manager — histories
    assume they start from their own setup state.
    """

    def __init__(self, manager: TransactionManager, sim: Simulator):
        self.manager = manager
        self.sim = sim

    def run(self, history: History, isolation=None) -> HistoryResult:
        """Schedule every step, drain the simulator, probe final state.

        Args:
            history: The schedule to execute.
            isolation: Level passed to ``begin`` (defaults to the
                manager's own).
        """
        level = isolation if isolation is not None else self.manager.isolation
        result = HistoryResult(
            history=history,
            isolation=level.value if level is not None else "",
        )
        for ref, fields in history.setup:
            self.manager.store.set_fields(ref[0], ref[1], dict(fields))
        sessions: dict[str, Transaction] = {}
        last_read: dict[tuple[str, tuple[str, str]], Optional[dict[str, Any]]] = {}
        for step in history.steps:
            self.sim.schedule_at(
                step.at,
                self._runner_for(step, level, sessions, last_read, result),
                label=f"{history.name}:{step.session}:{step.action}",
            )
        horizon = max(step.at for step in history.steps)
        self.sim.run(until=horizon + 1000.0)
        for ref in history.probes:
            state = self.manager.store.get(*ref)
            result.final[f"{ref[0]}/{ref[1]}"] = (
                dict(state.fields) if state is not None else None
            )
        return result

    def _runner_for(self, step, level, sessions, last_read, result):
        def fire() -> None:
            if step.action == "begin":
                sessions[step.session] = self.manager.begin(
                    isolation=level, site=step.site
                )
                return
            tx = sessions[step.session]
            if step.action == "read":
                state = tx.read(*step.entity)
                fields = dict(state.fields) if state is not None else None
                last_read[(step.session, step.entity)] = fields
                result.observations.append(
                    Observation(
                        at=step.at,
                        session=step.session,
                        entity=step.entity,
                        fields=fields,
                    )
                )
            elif step.action == "set":
                tx.set_fields(step.entity[0], step.entity[1], dict(step.fields))
            elif step.action == "rmw":
                seen = last_read.get((step.session, step.entity)) or {}
                base = seen.get(step.field_name, 0)
                tx.set_fields(
                    step.entity[0],
                    step.entity[1],
                    {step.field_name: base + step.delta},
                )
            elif step.action == "commit":
                result.receipts[step.session] = tx.commit()
            elif step.action == "abort":
                result.receipts[step.session] = tx.abort()
            else:  # pragma: no cover - schedule construction error
                raise ValueError(f"unknown step action {step.action!r}")

        return fire


def _setup(*entries: tuple[tuple[str, str], dict[str, Any]]):
    return tuple(
        (ref, tuple(sorted(fields.items()))) for ref, fields in entries
    )


DIRTY_READ = History(
    name="dirty_read",
    description="observer returns a write buffered by a transaction "
    "that later aborts",
    setup=_setup((("acct", "x"), {"v": 0})),
    steps=(
        Step(at=1.0, session="W", action="begin", site=SITE_A),
        Step(at=2.0, session="W", action="set", entity=("acct", "x"), fields={"v": 1}),
        Step(at=3.0, session="O", action="begin", site=SITE_A),
        Step(at=4.0, session="O", action="read", entity=("acct", "x")),
        Step(at=5.0, session="W", action="abort"),
        Step(at=6.0, session="O", action="commit"),
    ),
    probes=(("acct", "x"),),
)

READ_SKEW = History(
    name="read_skew",
    description="observer sees x before and y after one committed "
    "two-entity write",
    setup=_setup((("pair", "x"), {"v": 0}), (("pair", "y"), {"v": 0})),
    steps=(
        Step(at=1.0, session="O", action="begin", site=SITE_A),
        Step(at=2.0, session="O", action="read", entity=("pair", "x")),
        Step(at=3.0, session="W", action="begin", site=SITE_A),
        Step(at=4.0, session="W", action="set", entity=("pair", "x"), fields={"v": 1}),
        Step(at=5.0, session="W", action="set", entity=("pair", "y"), fields={"v": 1}),
        Step(at=6.0, session="W", action="commit"),
        Step(at=7.0, session="O", action="read", entity=("pair", "y")),
        Step(at=8.0, session="O", action="commit"),
    ),
    probes=(("pair", "x"), ("pair", "y")),
)

LOST_UPDATE = History(
    name="lost_update",
    description="two read-modify-write increments race; one survives "
    "only if the other's effect is clobbered",
    setup=_setup((("counter", "x"), {"n": 0})),
    steps=(
        Step(at=1.0, session="A", action="begin", site=SITE_A),
        Step(at=2.0, session="B", action="begin", site=SITE_A),
        Step(at=3.0, session="A", action="read", entity=("counter", "x")),
        Step(at=4.0, session="B", action="read", entity=("counter", "x")),
        Step(at=5.0, session="A", action="rmw", entity=("counter", "x"),
             field_name="n", delta=1),
        Step(at=6.0, session="B", action="rmw", entity=("counter", "x"),
             field_name="n", delta=1),
        Step(at=7.0, session="A", action="commit"),
        Step(at=8.0, session="B", action="commit"),
    ),
    probes=(("counter", "x"),),
)

WRITE_SKEW = History(
    name="write_skew",
    description="each session reads both on-call rows and zeroes a "
    "different one; both committing breaks the invariant",
    setup=_setup((("oncall", "x"), {"v": 1}), (("oncall", "y"), {"v": 1})),
    steps=(
        Step(at=1.0, session="A", action="begin", site=SITE_A),
        Step(at=2.0, session="B", action="begin", site=SITE_A),
        Step(at=3.0, session="A", action="read", entity=("oncall", "x")),
        Step(at=4.0, session="A", action="read", entity=("oncall", "y")),
        Step(at=5.0, session="B", action="read", entity=("oncall", "x")),
        Step(at=6.0, session="B", action="read", entity=("oncall", "y")),
        Step(at=7.0, session="A", action="set", entity=("oncall", "x"), fields={"v": 0}),
        Step(at=8.0, session="B", action="set", entity=("oncall", "y"), fields={"v": 0}),
        Step(at=9.0, session="A", action="commit"),
        Step(at=10.0, session="B", action="commit"),
    ),
    probes=(("oncall", "x"), ("oncall", "y")),
)

LONG_FORK = History(
    name="long_fork",
    description="two observers see two independent committed writes in "
    "incomparable orders (their snapshots fork)",
    setup=_setup((("reg", "x"), {"v": 0}), (("reg", "y"), {"v": 0})),
    steps=(
        Step(at=1.0, session="W1", action="begin", site=SITE_A),
        Step(at=2.0, session="W2", action="begin", site=SITE_B),
        Step(at=3.0, session="W1", action="set", entity=("reg", "x"), fields={"v": 1}),
        Step(at=4.0, session="W2", action="set", entity=("reg", "y"), fields={"v": 1}),
        Step(at=5.0, session="W1", action="commit"),
        Step(at=6.0, session="W2", action="commit"),
        Step(at=10.0, session="O1", action="begin", site=SITE_A),
        Step(at=11.0, session="O1", action="read", entity=("reg", "x")),
        Step(at=12.0, session="O1", action="read", entity=("reg", "y")),
        Step(at=13.0, session="O1", action="commit"),
        Step(at=14.0, session="O2", action="begin", site=SITE_B),
        Step(at=15.0, session="O2", action="read", entity=("reg", "x")),
        Step(at=16.0, session="O2", action="read", entity=("reg", "y")),
        Step(at=17.0, session="O2", action="commit"),
    ),
    probes=(("reg", "x"), ("reg", "y")),
)

NON_MONOTONIC_SNAPSHOT = History(
    name="non_monotonic_snapshot",
    description="an observer's snapshot contains a newer site-local "
    "commit while missing an older remote one",
    setup=_setup((("reg", "x"), {"v": 0}), (("reg", "y"), {"v": 0})),
    steps=(
        Step(at=1.0, session="W1", action="begin", site=SITE_B),
        Step(at=2.0, session="W1", action="set", entity=("reg", "x"), fields={"v": 1}),
        Step(at=3.0, session="W1", action="commit"),
        Step(at=20.0, session="W2", action="begin", site=SITE_A),
        Step(at=21.0, session="W2", action="set", entity=("reg", "y"), fields={"v": 1}),
        Step(at=22.0, session="W2", action="commit"),
        Step(at=25.0, session="O", action="begin", site=SITE_A),
        Step(at=26.0, session="O", action="read", entity=("reg", "x")),
        Step(at=27.0, session="O", action="read", entity=("reg", "y")),
        Step(at=28.0, session="O", action="commit"),
    ),
    probes=(("reg", "x"), ("reg", "y")),
)

#: All canned histories, detection order = anomaly order of the THEORY
#: matrix (weak anomalies first).
HISTORIES: tuple[History, ...] = (
    DIRTY_READ,
    READ_SKEW,
    LOST_UPDATE,
    WRITE_SKEW,
    LONG_FORK,
    NON_MONOTONIC_SNAPSHOT,
)


def history_named(name: str) -> History:
    """Look a canned history up by anomaly name."""
    for history in HISTORIES:
        if history.name == name:
            return history
    raise KeyError(f"no canned history named {name!r}")
